//! Workload characterisation.

use crate::pattern::AccessPattern;
use mitosis_numa::GIB;

/// Whether a workload appears in the paper's multi-socket (MS) or
/// workload-migration (WM) scenario, or both (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Multi-socket scenario only.
    MultiSocket,
    /// Workload-migration scenario only.
    Migration,
    /// Used in both scenarios (with different footprints).
    Both,
}

/// How the workload initialises its data structures, which determines
/// first-touch placement of both data and page-table pages (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitPattern {
    /// A single thread allocates and initialises all memory (e.g. Graph500
    /// graph generation), skewing first-touch placement to one socket.
    SingleThread,
    /// All threads initialise their chunk of memory in parallel, spreading
    /// first-touch placement across the sockets the workload runs on.
    Parallel,
}

/// The parameters that characterise one of the paper's workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    name: &'static str,
    description: &'static str,
    footprint: u64,
    pattern: AccessPattern,
    write_fraction: f64,
    compute_cycles_per_access: u64,
    bandwidth_intensity: f64,
    init: InitPattern,
    scenario: Scenario,
}

impl WorkloadSpec {
    /// Creates a fully specified workload.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        description: &'static str,
        footprint: u64,
        pattern: AccessPattern,
        write_fraction: f64,
        compute_cycles_per_access: u64,
        bandwidth_intensity: f64,
        init: InitPattern,
        scenario: Scenario,
    ) -> Self {
        assert!(footprint > 0, "a workload needs a footprint");
        assert!((0.0..=1.0).contains(&write_fraction));
        assert!((0.0..=1.0).contains(&bandwidth_intensity));
        WorkloadSpec {
            name,
            description,
            footprint,
            pattern,
            write_fraction,
            compute_cycles_per_access,
            bandwidth_intensity,
            init,
            scenario,
        }
    }

    /// Short name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description (Table 1).
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Memory footprint in bytes (the paper-scale value).
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// The virtual-address access pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Fraction of accesses that are writes.
    pub fn write_fraction(&self) -> f64 {
        self.write_fraction
    }

    /// Computation cycles charged between two memory accesses.
    pub fn compute_cycles_per_access(&self) -> u64 {
        self.compute_cycles_per_access
    }

    /// How bandwidth-bound the workload is, in `[0, 1]`; used to derive the
    /// extra queueing penalty of remote data accesses.
    pub fn bandwidth_intensity(&self) -> f64 {
        self.bandwidth_intensity
    }

    /// How the workload initialises its memory.
    pub fn init(&self) -> InitPattern {
        self.init
    }

    /// Which evaluation scenario(s) the workload belongs to.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Returns a copy with the footprint divided by `scale` (used to run the
    /// paper's hundreds-of-gigabytes workloads on a scaled-down simulated
    /// machine), clamped to at least 64 MiB.
    pub fn scaled(&self, scale: u64) -> WorkloadSpec {
        assert!(scale > 0);
        let mut out = self.clone();
        out.footprint = (self.footprint / scale).max(64 * 1024 * 1024);
        out
    }

    /// Returns a copy with an explicit footprint (tests and quick runs).
    pub fn with_footprint(&self, footprint: u64) -> WorkloadSpec {
        assert!(footprint > 0);
        let mut out = self.clone();
        out.footprint = footprint;
        out
    }

    /// Footprint expressed in whole GiB (as Table 1 reports it).
    pub fn footprint_gib(&self) -> u64 {
        self.footprint / GIB
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec::new(
            "Test",
            "a test workload",
            64 * GIB,
            AccessPattern::UniformRandom,
            0.5,
            10,
            0.8,
            InitPattern::Parallel,
            Scenario::Both,
        )
    }

    #[test]
    fn accessors_round_trip() {
        let w = spec();
        assert_eq!(w.name(), "Test");
        assert_eq!(w.footprint_gib(), 64);
        assert_eq!(w.write_fraction(), 0.5);
        assert_eq!(w.compute_cycles_per_access(), 10);
        assert_eq!(w.init(), InitPattern::Parallel);
        assert_eq!(w.scenario(), Scenario::Both);
    }

    #[test]
    fn scaling_divides_the_footprint_with_a_floor() {
        let w = spec();
        assert_eq!(w.scaled(64).footprint(), GIB);
        // Extreme scaling clamps to the 64 MiB floor.
        assert_eq!(w.scaled(1 << 20).footprint(), 64 * 1024 * 1024);
        assert_eq!(w.with_footprint(123 * 4096).footprint(), 123 * 4096);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_panics() {
        let _ = spec().with_footprint(0);
    }
}
