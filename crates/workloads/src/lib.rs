//! Synthetic big-memory workloads matching the Mitosis evaluation suite.
//!
//! The paper evaluates Mitosis with eleven memory-intensive programs
//! (Table 1): Memcached, Graph500, HashJoin, Canneal, XSBench, BTree, GUPS,
//! Redis, PageRank, LibLinear and STREAM.  We cannot run the originals inside
//! a simulator, but their effect on the memory system is characterised by a
//! handful of parameters: memory footprint, virtual-address access pattern,
//! read/write mix, how much computation happens between memory accesses, how
//! bandwidth-hungry they are, and whether initialisation is single-threaded
//! (which skews first-touch placement) or parallel.
//!
//! [`WorkloadSpec`] captures those parameters, [`suite`] provides one spec
//! per paper workload (with the paper's footprints), and [`AccessStream`]
//! turns a spec into the deterministic stream of virtual-address offsets the
//! execution engine replays.
//!
//! # Example
//!
//! ```
//! use mitosis_workloads::{suite, AccessStream};
//!
//! let gups = suite::gups();
//! assert_eq!(gups.name(), "GUPS");
//! let mut stream = AccessStream::new(&gups, 42);
//! let access = stream.next_access();
//! assert!(access.offset < gups.footprint());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pattern;
mod spec;
mod stream;
pub mod suite;

pub use pattern::AccessPattern;
pub use spec::{InitPattern, Scenario, WorkloadSpec};
pub use stream::{Access, AccessSource, AccessStream};
