//! Virtual-address access patterns.

use rand::rngs::StdRng;
use rand::Rng;

/// How a workload walks its memory footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniformly random accesses over the whole footprint (GUPS, hash
    /// probes): the worst case for TLBs, every access is a miss.
    UniformRandom,
    /// Zipf-like skew: a small hot set absorbs most accesses (key-value
    /// stores).  `hot_fraction` of the footprint receives
    /// `hot_access_probability` of the accesses.
    HotCold {
        /// Fraction of the footprint that is hot (0, 1].
        hot_fraction: f64,
        /// Probability that an access goes to the hot region [0, 1].
        hot_access_probability: f64,
    },
    /// Sequential streaming with a fixed stride in bytes (STREAM, scans).
    Sequential {
        /// Stride between consecutive accesses in bytes.
        stride: u64,
    },
    /// Pointer chasing through a working set: random within a window that
    /// slowly slides over the footprint (graph traversals, annealing moves).
    PointerChase {
        /// Size of the active window as a fraction of the footprint (0, 1].
        window_fraction: f64,
    },
}

impl AccessPattern {
    /// Produces the next byte offset into a footprint of `footprint` bytes.
    ///
    /// `step` is the index of the access (used by sequential/windowed
    /// patterns) and `rng` the per-stream random source.
    pub fn next_offset(&self, step: u64, footprint: u64, rng: &mut StdRng) -> u64 {
        debug_assert!(footprint > 0);
        match *self {
            AccessPattern::UniformRandom => rng.random_range(0..footprint),
            AccessPattern::HotCold {
                hot_fraction,
                hot_access_probability,
            } => {
                let hot_bytes = ((footprint as f64 * hot_fraction) as u64).max(1);
                if rng.random_bool(hot_access_probability) {
                    rng.random_range(0..hot_bytes)
                } else if hot_bytes < footprint {
                    hot_bytes + rng.random_range(0..footprint - hot_bytes)
                } else {
                    rng.random_range(0..footprint)
                }
            }
            AccessPattern::Sequential { stride } => (step * stride) % footprint,
            AccessPattern::PointerChase { window_fraction } => {
                let window = ((footprint as f64 * window_fraction) as u64).max(4096);
                let windows = footprint.div_ceil(window).max(1);
                // The window slides slowly: one window per 4096 accesses.
                let base = ((step / 4096) % windows) * window;
                let span = window.min(footprint - base);
                base + rng.random_range(0..span)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    const FOOTPRINT: u64 = 1 << 30;

    #[test]
    fn offsets_stay_within_the_footprint() {
        let mut r = rng();
        let patterns = [
            AccessPattern::UniformRandom,
            AccessPattern::HotCold {
                hot_fraction: 0.1,
                hot_access_probability: 0.9,
            },
            AccessPattern::Sequential { stride: 64 },
            AccessPattern::PointerChase {
                window_fraction: 0.05,
            },
        ];
        for pattern in patterns {
            for step in 0..10_000 {
                let offset = pattern.next_offset(step, FOOTPRINT, &mut r);
                assert!(offset < FOOTPRINT, "{pattern:?} escaped the footprint");
            }
        }
    }

    #[test]
    fn uniform_random_covers_the_whole_range() {
        let mut r = rng();
        let pattern = AccessPattern::UniformRandom;
        let mut top_half = 0;
        for step in 0..10_000 {
            if pattern.next_offset(step, FOOTPRINT, &mut r) >= FOOTPRINT / 2 {
                top_half += 1;
            }
        }
        assert!((4_000..6_000).contains(&top_half));
    }

    #[test]
    fn hot_cold_concentrates_accesses() {
        let mut r = rng();
        let pattern = AccessPattern::HotCold {
            hot_fraction: 0.05,
            hot_access_probability: 0.9,
        };
        let hot_bytes = (FOOTPRINT as f64 * 0.05) as u64;
        let mut hot = 0;
        for step in 0..10_000 {
            if pattern.next_offset(step, FOOTPRINT, &mut r) < hot_bytes {
                hot += 1;
            }
        }
        assert!(hot > 8_500, "hot accesses = {hot}");
    }

    #[test]
    fn sequential_is_strided_and_wraps() {
        let mut r = rng();
        let pattern = AccessPattern::Sequential { stride: 4096 };
        assert_eq!(pattern.next_offset(0, FOOTPRINT, &mut r), 0);
        assert_eq!(pattern.next_offset(3, FOOTPRINT, &mut r), 3 * 4096);
        let wrap_step = FOOTPRINT / 4096 + 2;
        assert_eq!(pattern.next_offset(wrap_step, FOOTPRINT, &mut r), 2 * 4096);
    }

    #[test]
    fn pointer_chase_stays_in_its_window_then_moves_on() {
        let mut r = rng();
        let pattern = AccessPattern::PointerChase {
            window_fraction: 0.01,
        };
        let window = (FOOTPRINT as f64 * 0.01) as u64;
        for step in 0..1_000 {
            assert!(pattern.next_offset(step, FOOTPRINT, &mut r) < window);
        }
        let later = pattern.next_offset(5_000, FOOTPRINT, &mut r);
        assert!(later >= window);
    }
}
