//! The paper's workload suite (Table 1).
//!
//! Footprints are the paper-scale values; callers running on a scaled
//! machine use [`WorkloadSpec::scaled`] to shrink them proportionally.
//! Access-pattern parameters are chosen to reproduce each program's
//! qualitative memory behaviour (TLB pressure, read/write mix,
//! bandwidth-boundedness), which is what determines where it lands in the
//! paper's figures.

use crate::pattern::AccessPattern;
use crate::spec::{InitPattern, Scenario, WorkloadSpec};
use mitosis_numa::GIB;

/// Memcached: a distributed in-memory object cache (350 GB, multi-socket).
pub fn memcached() -> WorkloadSpec {
    WorkloadSpec::new(
        "Memcached",
        "a commercial distributed in-memory object caching system",
        350 * GIB,
        AccessPattern::HotCold {
            hot_fraction: 0.10,
            hot_access_probability: 0.60,
        },
        0.10,
        30,
        0.5,
        InitPattern::Parallel,
        Scenario::MultiSocket,
    )
}

/// Graph500: generation, compression and BFS of large graphs (420 GB).
pub fn graph500() -> WorkloadSpec {
    WorkloadSpec::new(
        "Graph500",
        "a benchmark for generation, compression and search of large graphs",
        420 * GIB,
        AccessPattern::PointerChase {
            window_fraction: 0.30,
        },
        0.05,
        20,
        0.7,
        InitPattern::SingleThread,
        Scenario::MultiSocket,
    )
}

/// HashJoin: hash-table probing as in database join operators
/// (480 GB multi-socket, 17 GB migration).
pub fn hashjoin() -> WorkloadSpec {
    WorkloadSpec::new(
        "HashJoin",
        "a benchmark for hash-table probing used in database applications",
        480 * GIB,
        AccessPattern::UniformRandom,
        0.25,
        15,
        0.7,
        InitPattern::Parallel,
        Scenario::Both,
    )
}

/// Canneal: cache-aware simulated annealing for chip routing
/// (382 GB multi-socket, 32 GB migration).
pub fn canneal() -> WorkloadSpec {
    WorkloadSpec::new(
        "Canneal",
        "simulated cache-aware annealing to optimize routing cost of a chip design",
        382 * GIB,
        AccessPattern::PointerChase {
            window_fraction: 0.90,
        },
        0.30,
        5,
        0.6,
        InitPattern::Parallel,
        Scenario::Both,
    )
}

/// XSBench: Monte Carlo neutronics macroscopic cross-section lookups
/// (440 GB multi-socket, 85 GB migration).
pub fn xsbench() -> WorkloadSpec {
    WorkloadSpec::new(
        "XSBench",
        "a key computational kernel of the Monte Carlo neutronics application",
        440 * GIB,
        AccessPattern::UniformRandom,
        0.02,
        40,
        0.5,
        InitPattern::Parallel,
        Scenario::Both,
    )
}

/// BTree: index lookups as in database indices
/// (145 GB multi-socket, 35 GB migration).
pub fn btree() -> WorkloadSpec {
    WorkloadSpec::new(
        "BTree",
        "a benchmark for index lookups used in database and other large applications",
        145 * GIB,
        AccessPattern::HotCold {
            hot_fraction: 0.02,
            hot_access_probability: 0.50,
        },
        0.05,
        25,
        0.3,
        InitPattern::Parallel,
        Scenario::Both,
    )
}

/// GUPS: random read-modify-write updates over a huge table (64 GB).
pub fn gups() -> WorkloadSpec {
    WorkloadSpec::new(
        "GUPS",
        "HPC Challenge benchmark measuring the rate of random integer updates of memory",
        64 * GIB,
        AccessPattern::UniformRandom,
        0.50,
        5,
        0.9,
        InitPattern::SingleThread,
        Scenario::Migration,
    )
}

/// Redis: single-threaded in-memory key-value store (75 GB).
pub fn redis() -> WorkloadSpec {
    WorkloadSpec::new(
        "Redis",
        "a commercial in-memory key-value store",
        75 * GIB,
        AccessPattern::HotCold {
            hot_fraction: 0.15,
            hot_access_probability: 0.70,
        },
        0.30,
        35,
        0.4,
        InitPattern::SingleThread,
        Scenario::Migration,
    )
}

/// PageRank: iterative rank propagation over a web graph (69 GB).
pub fn pagerank() -> WorkloadSpec {
    WorkloadSpec::new(
        "PageRank",
        "a benchmark for page rank used to rank pages in search engines",
        69 * GIB,
        AccessPattern::PointerChase {
            window_fraction: 0.20,
        },
        0.10,
        12,
        0.8,
        InitPattern::Parallel,
        Scenario::Migration,
    )
}

/// LibLinear: linear classification over millions of sparse features (67 GB).
pub fn liblinear() -> WorkloadSpec {
    WorkloadSpec::new(
        "LibLinear",
        "a linear classifier for data with millions of instances and features",
        67 * GIB,
        AccessPattern::Sequential { stride: 64 },
        0.10,
        20,
        0.9,
        InitPattern::Parallel,
        Scenario::Migration,
    )
}

/// STREAM: pure sequential bandwidth (used as the interfering co-runner).
pub fn stream() -> WorkloadSpec {
    WorkloadSpec::new(
        "STREAM",
        "sustainable memory bandwidth kernel, used as the interfering process",
        16 * GIB,
        AccessPattern::Sequential { stride: 64 },
        0.33,
        2,
        1.0,
        InitPattern::Parallel,
        Scenario::Migration,
    )
}

/// The six multi-socket workloads in the order of Figures 4 and 9, with
/// their multi-socket footprints from Table 1.
pub fn multi_socket_suite() -> Vec<WorkloadSpec> {
    vec![
        canneal().with_footprint(382 * GIB),
        memcached(),
        xsbench().with_footprint(440 * GIB),
        graph500(),
        hashjoin().with_footprint(480 * GIB),
        btree().with_footprint(145 * GIB),
    ]
}

/// The eight workload-migration workloads in the order of Figures 6 and 10,
/// with their migration-scenario footprints from Table 1.
pub fn migration_suite() -> Vec<WorkloadSpec> {
    vec![
        gups(),
        btree().with_footprint(35 * GIB),
        hashjoin().with_footprint(17 * GIB),
        redis(),
        xsbench().with_footprint(85 * GIB),
        pagerank(),
        liblinear(),
        canneal().with_footprint(32 * GIB),
    ]
}

/// Looks a workload up by its paper name (case-insensitive).
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    let all = [
        memcached(),
        graph500(),
        hashjoin(),
        canneal(),
        xsbench(),
        btree(),
        gups(),
        redis(),
        pagerank(),
        liblinear(),
        stream(),
    ];
    all.into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_footprints_match_the_paper() {
        assert_eq!(memcached().footprint_gib(), 350);
        assert_eq!(graph500().footprint_gib(), 420);
        assert_eq!(hashjoin().footprint_gib(), 480);
        assert_eq!(canneal().footprint_gib(), 382);
        assert_eq!(xsbench().footprint_gib(), 440);
        assert_eq!(btree().footprint_gib(), 145);
        assert_eq!(gups().footprint_gib(), 64);
        assert_eq!(redis().footprint_gib(), 75);
        assert_eq!(pagerank().footprint_gib(), 69);
        assert_eq!(liblinear().footprint_gib(), 67);
    }

    #[test]
    fn suites_have_the_figure_workloads_in_order() {
        let ms: Vec<&str> = multi_socket_suite().iter().map(|w| w.name()).collect();
        assert_eq!(
            ms,
            [
                "Canneal",
                "Memcached",
                "XSBench",
                "Graph500",
                "HashJoin",
                "BTree"
            ]
        );
        let wm: Vec<&str> = migration_suite().iter().map(|w| w.name()).collect();
        assert_eq!(
            wm,
            [
                "GUPS",
                "BTree",
                "HashJoin",
                "Redis",
                "XSBench",
                "PageRank",
                "LibLinear",
                "Canneal"
            ]
        );
        // Migration-scenario footprints from Table 1.
        let wm_fp: Vec<u64> = migration_suite()
            .iter()
            .map(|w| w.footprint_gib())
            .collect();
        assert_eq!(wm_fp, [64, 35, 17, 75, 85, 69, 67, 32]);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(by_name("gups").unwrap().name(), "GUPS");
        assert_eq!(by_name("Canneal").unwrap().name(), "Canneal");
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn single_threaded_initialisers_are_marked() {
        assert_eq!(graph500().init(), InitPattern::SingleThread);
        assert_eq!(redis().init(), InitPattern::SingleThread);
        assert_eq!(xsbench().init(), InitPattern::Parallel);
    }
}
