//! Deterministic access streams.

use crate::spec::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory access issued by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte offset into the workload's footprint.
    pub offset: u64,
    /// Whether the access is a store.
    pub is_write: bool,
}

/// Anything that can feed a sequence of [`Access`]es to the execution
/// engine.
///
/// Live generation ([`AccessStream`]) and trace replay (the `mitosis-trace`
/// crate) both implement this, which is what lets a captured trace
/// reproduce a live run bit-for-bit: the engine is oblivious to where its
/// accesses come from.
pub trait AccessSource {
    /// Produces the next access.
    fn next_access(&mut self) -> Access;
}

impl AccessSource for AccessStream {
    fn next_access(&mut self) -> Access {
        AccessStream::next_access(self)
    }
}

/// A deterministic, seedable stream of accesses generated from a
/// [`WorkloadSpec`].
///
/// Two streams created from the same spec and seed produce identical
/// sequences, which keeps experiment comparisons (e.g. Mitosis on vs. off)
/// free of generator noise.
#[derive(Debug, Clone)]
pub struct AccessStream {
    footprint: u64,
    pattern: crate::AccessPattern,
    write_fraction: f64,
    rng: StdRng,
    step: u64,
}

impl AccessStream {
    /// Creates a stream for `spec` with the given seed.
    pub fn new(spec: &WorkloadSpec, seed: u64) -> Self {
        AccessStream {
            footprint: spec.footprint(),
            pattern: spec.pattern(),
            write_fraction: spec.write_fraction(),
            rng: StdRng::seed_from_u64(seed),
            step: 0,
        }
    }

    /// Produces the next access.
    pub fn next_access(&mut self) -> Access {
        let offset = self
            .pattern
            .next_offset(self.step, self.footprint, &mut self.rng);
        let is_write = self.write_fraction > 0.0 && self.rng.random_bool(self.write_fraction);
        self.step += 1;
        Access { offset, is_write }
    }

    /// Number of accesses generated so far.
    pub fn steps(&self) -> u64 {
        self.step
    }
}

impl Iterator for AccessStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        Some(self.next_access())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let spec = suite::gups();
        let a: Vec<Access> = AccessStream::new(&spec, 1).take(256).collect();
        let b: Vec<Access> = AccessStream::new(&spec, 1).take(256).collect();
        let c: Vec<Access> = AccessStream::new(&spec, 2).take(256).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn write_fraction_is_respected() {
        let spec = suite::gups(); // read-modify-write: 50 % writes
        let writes = AccessStream::new(&spec, 3)
            .take(10_000)
            .filter(|a| a.is_write)
            .count();
        assert!((4_000..6_000).contains(&writes), "writes = {writes}");

        let reads_only = suite::pagerank(); // mostly reads
        let writes = AccessStream::new(&reads_only, 3)
            .take(10_000)
            .filter(|a| a.is_write)
            .count();
        assert!(writes < 2_000);
    }

    #[test]
    fn offsets_respect_scaled_footprints() {
        let spec = suite::xsbench().scaled(128);
        let mut stream = AccessStream::new(&spec, 9);
        for _ in 0..10_000 {
            assert!(stream.next_access().offset < spec.footprint());
        }
        assert_eq!(stream.steps(), 10_000);
    }
}
