//! Hardware address-translation model: TLBs, paging-structure caches and the
//! page walker.
//!
//! On a TLB miss the x86-64 page walker issues up to four memory reads, one
//! per page-table level.  Which of those reads go to local DRAM, remote DRAM
//! or a cache is exactly what Mitosis changes, so this crate models:
//!
//! * [`Tlb`] / [`TlbHierarchy`] — a two-level data TLB (64-entry L1 plus
//!   1024-entry unified L2, matching the paper's Xeon E7-4850v3), with
//!   separate L1 entries for 2 MiB pages;
//! * [`PagingStructureCache`] — the MMU-internal caches of upper-level
//!   entries that let the walker skip levels (Barr et al., ISCA'10);
//! * [`PteCacheSet`] — a per-socket model of page-table cache lines resident
//!   in the last-level cache (8 PTEs per 64-byte line).  This is what makes
//!   2 MiB-page GUPS insensitive to remote page-tables in the paper (§8.2);
//! * [`HardwareWalker`] — the walker itself: consults the paging-structure
//!   caches, charges local/remote DRAM latency per level, sets
//!   accessed/dirty bits in the replica it walks, and reports statistics;
//! * [`Mmu`] — the per-core front end combining the TLBs and the walker.
//!
//! See [`Mmu::access`] for the per-access flow and the `mitosis-sim` crate
//! for full end-to-end examples of driving the MMU against a real page table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lru;
mod mmu;
mod pte_cache;
mod pwc;
mod stats;
mod tlb;
mod walker;

pub use mmu::{AccessOutcome, Mmu};
pub use pte_cache::{PteCache, PteCacheSet};
pub use pwc::PagingStructureCache;
pub use stats::{MmuStats, WalkStats};
pub use tlb::{Tlb, TlbHierarchy, TlbLevel};
pub use walker::{HardwareWalker, WalkOutcome, WalkerConfig};
