//! The per-core MMU front end: TLB hierarchy plus page walker.

use crate::pte_cache::PteCache;
use crate::pwc::PagingStructureCache;
use crate::stats::MmuStats;
use crate::tlb::{TlbHierarchy, TlbLevel};
use crate::walker::{HardwareWalker, WalkerConfig};
use mitosis_mem::{FrameId, FrameTable};
use mitosis_numa::{CoreId, CostModel, Cycles, SocketId};
use mitosis_pt::{PageSize, PtStore, ShootdownPlan, VirtAddr};

/// Result of one memory access' address translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The 4 KiB frame backing the accessed address, if mapped.
    pub frame: Option<FrameId>,
    /// Cycles spent translating (TLB penalties plus any walk).
    pub translation_cycles: Cycles,
    /// The TLB level that served the access, or `None` if a walk was needed.
    pub tlb_hit: Option<TlbLevel>,
    /// Page size of the mapping used (known only if translated).
    pub page_size: Option<PageSize>,
    /// `true` if the access faulted (no valid mapping).
    pub fault: bool,
}

/// A core's memory management unit.
///
/// The MMU owns the core-private structures (TLBs, paging-structure caches,
/// statistics); machine-level state (the page tables themselves, per-socket
/// page-table-line caches, the NUMA cost model) is passed in per access.
#[derive(Debug, Clone)]
pub struct Mmu {
    core: CoreId,
    socket: SocketId,
    /// Address-space identifier of the process currently loaded on this
    /// core; tags every TLB entry (PCID).  ASID 0 — the default — keeps
    /// single-process runs identical to the untagged model.
    asid: u16,
    tlb: TlbHierarchy,
    pwc: PagingStructureCache,
    walker: HardwareWalker,
    stats: MmuStats,
}

impl Mmu {
    /// Creates the MMU of `core` (which belongs to `socket`), using the
    /// paper-testbed TLB and MMU-cache sizes.
    pub fn new(core: CoreId, socket: SocketId) -> Self {
        Mmu {
            core,
            socket,
            asid: 0,
            tlb: TlbHierarchy::paper_testbed(),
            pwc: PagingStructureCache::paper_testbed(),
            walker: HardwareWalker::new(),
            stats: MmuStats::default(),
        }
    }

    /// Overrides the walker configuration.
    pub fn with_walker_config(mut self, config: WalkerConfig) -> Self {
        self.walker = HardwareWalker::with_config(config);
        self
    }

    /// The core this MMU belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The socket this MMU's core belongs to.
    pub fn socket(&self) -> SocketId {
        self.socket
    }

    /// The address-space identifier currently loaded on this core.
    pub fn asid(&self) -> u16 {
        self.asid
    }

    /// Loads `asid` without flushing (a PCID-tagged CR3 write): TLB entries
    /// of other address spaces stay resident but cannot hit.
    pub fn set_asid(&mut self, asid: u16) {
        self.asid = asid;
    }

    /// Translates one access to `addr` using the page table rooted at `root`
    /// (the CR3 value currently loaded on this core).
    ///
    /// `pte_cache` must be the cache of **this core's socket**.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        addr: VirtAddr,
        is_write: bool,
        root: FrameId,
        store: &mut PtStore,
        frames: &FrameTable,
        cost: &CostModel,
        pte_cache: &mut PteCache,
    ) -> AccessOutcome {
        self.stats.accesses += 1;

        // Probe the TLBs for each translation granularity.
        for size in [PageSize::Base4K, PageSize::Huge2M, PageSize::Giant1G] {
            if let Some((level, frame, penalty)) = self.tlb.lookup(self.asid, addr, size, is_write)
            {
                match level {
                    TlbLevel::L1 => self.stats.tlb_l1_hits += 1,
                    TlbLevel::L2 => self.stats.tlb_l2_hits += 1,
                }
                self.stats.translation_cycles += penalty;
                let offset_frames = addr.page_offset(size) / PageSize::Base4K.bytes();
                return AccessOutcome {
                    frame: Some(frame.offset(offset_frames)),
                    translation_cycles: penalty,
                    tlb_hit: Some(level),
                    page_size: Some(size),
                    fault: false,
                };
            }
        }

        // TLB miss: walk the page table.
        self.stats.tlb_misses += 1;
        let outcome = self.walker.walk(
            self.socket,
            root,
            addr,
            is_write,
            store,
            frames,
            cost,
            &mut self.pwc,
            pte_cache,
            &mut self.stats.walk,
        );
        self.stats.translation_cycles += outcome.cycles;
        match outcome.translation {
            Some(t) => {
                self.tlb.insert(
                    self.asid,
                    addr.align_down(t.size),
                    t.size,
                    t.frame,
                    t.pte.flags().writable,
                );
                AccessOutcome {
                    frame: Some(t.frame_for(addr)),
                    translation_cycles: outcome.cycles,
                    tlb_hit: None,
                    page_size: Some(t.size),
                    fault: false,
                }
            }
            None => AccessOutcome {
                frame: None,
                translation_cycles: outcome.cycles,
                tlb_hit: None,
                page_size: None,
                fault: true,
            },
        }
    }

    /// Models a context switch (CR3 write): flushes the TLBs and
    /// paging-structure caches.
    pub fn context_switch(&mut self) {
        self.tlb.flush();
        self.pwc.flush();
    }

    /// Prepares a pooled MMU for a fresh run: flushes every cached
    /// translation and zeroes the statistics.
    ///
    /// A reset MMU is behaviourally indistinguishable from a newly
    /// constructed one (flushed TLBs probe and evict identically to empty
    /// ones), so the execution engine can reuse MMUs across runs instead of
    /// reallocating the TLB arrays each time — the win is per-run setup
    /// cost for short traces.
    pub fn reset_for_run(&mut self) {
        self.tlb.flush();
        self.pwc.flush();
        self.stats = MmuStats::default();
    }

    /// Models a TLB shootdown of a single page in address space `asid`.
    pub fn shootdown_page(&mut self, asid: u16, addr: VirtAddr, size: PageSize) {
        self.tlb.flush_page(asid, addr.align_down(size), size);
    }

    /// Models a broadcast full-flush shootdown.
    pub fn shootdown_all(&mut self) {
        self.context_switch();
    }

    /// Applies a ranged shootdown plan to this core: invalidates the named
    /// page ranges from the TLBs and evicts the covered paging-structure
    /// cache entries.  A plan escalated to `full_flush` flushes everything.
    ///
    /// Returns the number of TLB entries actually invalidated (for a full
    /// flush, the resident count before flushing) — the per-core modelled
    /// shootdown work.
    pub fn apply_shootdown(&mut self, plan: &ShootdownPlan) -> u64 {
        if plan.full_flush {
            let resident = self.tlb.occupancy() as u64;
            self.shootdown_all();
            return resident;
        }
        let mut removed = 0u64;
        for range in &plan.ranges {
            removed +=
                self.tlb
                    .invalidate_range(range.asid, range.vpn_start, range.pages, range.size)
                    as u64;
            self.pwc.invalidate_range(range.start(), range.end());
        }
        removed
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MmuStats {
        &self.stats
    }

    /// Resets the statistics.
    pub fn reset_stats(&mut self) {
        self.stats = MmuStats::default();
    }

    /// The TLB hierarchy (for tests and reach calculations).
    pub fn tlb(&self) -> &TlbHierarchy {
        &self.tlb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_mem::{FrameKind, FrameSpace};
    use mitosis_pt::{Level, Pte, PteFlags};

    fn build() -> (PtStore, FrameTable, FrameId, VirtAddr) {
        let space = FrameSpace::with_frames_per_socket(2, 10_000);
        let mut frames = FrameTable::new(space);
        let mut store = PtStore::new();
        let (root, l3, l2, l1) = (
            FrameId::new(0),
            FrameId::new(1),
            FrameId::new(2),
            FrameId::new(3),
        );
        for (frame, level) in [(root, 4u8), (l3, 3), (l2, 2), (l1, 1)] {
            frames.insert(frame, FrameKind::PageTable { level });
            store.insert_table(frame);
        }
        let data = FrameId::new(600);
        frames.insert(data, FrameKind::Data);
        let addr = VirtAddr::new(0x7f00_0000_0000 & ((1 << 48) - 1));
        let addr = VirtAddr::new(addr.as_u64() % (1 << 47));
        store.write(
            root,
            addr.index_at(Level::L4),
            Pte::new(l3, PteFlags::table_pointer()),
        );
        store.write(
            l3,
            addr.index_at(Level::L3),
            Pte::new(l2, PteFlags::table_pointer()),
        );
        store.write(
            l2,
            addr.index_at(Level::L2),
            Pte::new(l1, PteFlags::table_pointer()),
        );
        store.write(
            l1,
            addr.index_at(Level::L1),
            Pte::new(data, PteFlags::user_data()),
        );
        (store, frames, root, addr)
    }

    fn cost() -> CostModel {
        CostModel::new(2, 280, 580, 42, 28.0, 11.0)
    }

    #[test]
    fn first_access_walks_second_hits_tlb() {
        let (mut store, frames, root, addr) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        let first = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(first.tlb_hit.is_none());
        assert!(!first.fault);
        assert_eq!(first.frame, Some(FrameId::new(600)));
        assert!(first.translation_cycles > 0);

        let second = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert_eq!(second.tlb_hit, Some(TlbLevel::L1));
        assert_eq!(second.translation_cycles, 0);
        assert_eq!(mmu.stats().tlb_misses, 1);
        assert_eq!(mmu.stats().tlb_l1_hits, 1);
        assert_eq!(mmu.stats().accesses, 2);
    }

    #[test]
    fn context_switch_flushes_translations() {
        let (mut store, frames, root, addr) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        mmu.context_switch();
        let after = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(after.tlb_hit.is_none());
        assert_eq!(mmu.stats().tlb_misses, 2);
    }

    #[test]
    fn shootdown_single_page_only_affects_that_page() {
        let (mut store, frames, root, addr) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        mmu.shootdown_page(0, addr, PageSize::Base4K);
        let after = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(after.tlb_hit.is_none());
    }

    #[test]
    fn ranged_shootdown_plan_invalidates_cached_translations() {
        let (mut store, frames, root, addr) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        let mut tx = mitosis_pt::MappingTx::new();
        tx.invalidate_page(0, addr, PageSize::Base4K);
        // Resident in L1 and L2 → two entries of modelled work.
        assert_eq!(mmu.apply_shootdown(&tx.take_plan()), 2);
        let after = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(after.tlb_hit.is_none());
        // A full-flush plan reports the resident count it wiped.
        tx.escalate_full();
        assert_eq!(mmu.apply_shootdown(&tx.take_plan()), 2);
        assert_eq!(mmu.tlb().occupancy(), 0);
    }

    #[test]
    fn asids_partition_the_tlb_between_address_spaces() {
        let (mut store, frames, root, addr) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        // Switching ASID without flushing: the other space cannot hit.
        mmu.set_asid(7);
        assert_eq!(mmu.asid(), 7);
        let other = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(other.tlb_hit.is_none());
        // Switching back: the original entry is still resident.
        mmu.set_asid(0);
        let back = mmu.access(
            addr,
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(back.tlb_hit.is_some());
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut store, frames, root, _) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        let outcome = mmu.access(
            VirtAddr::new(0x1000),
            false,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(outcome.fault);
        assert_eq!(outcome.frame, None);
        assert_eq!(mmu.stats().walk.faults, 1);
    }

    #[test]
    fn stats_reset_clears_counters() {
        let (mut store, frames, root, addr) = build();
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut pte_cache = PteCache::new(1024);
        mmu.access(
            addr,
            true,
            root,
            &mut store,
            &frames,
            &cost(),
            &mut pte_cache,
        );
        assert!(mmu.stats().accesses > 0);
        mmu.reset_stats();
        assert_eq!(mmu.stats().accesses, 0);
        assert_eq!(mmu.stats().walk.walks, 0);
    }
}
