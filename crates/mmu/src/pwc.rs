//! Paging-structure caches (MMU caches).
//!
//! Modern x86 MMUs cache upper-level page-table entries (PML4E/PDPTE/PDE
//! caches) so that a TLB miss rarely needs all four memory accesses: if the
//! PDE covering the faulting address is cached, only the leaf PTE has to be
//! fetched.  The paper leans on this ("at least leaf-level PTEs have to be
//! accessed", §3.1), so the walker model includes it.

use crate::lru::LruMap;
use mitosis_mem::FrameId;
use mitosis_pt::{Level, VirtAddr};

/// One exact-LRU cache of upper-level entries, keyed by the virtual-address
/// bits that select the entry.  Lookup, insert and eviction are all O(1)
/// ([`LruMap`]); these caches sit on every page walk, and the old
/// `min_by_key` eviction scanned the whole cache on each conflict miss.
#[derive(Debug, Clone)]
struct LevelCache {
    entries: LruMap<FrameId>,
}

impl LevelCache {
    fn new(capacity: usize) -> Self {
        LevelCache {
            entries: LruMap::new(capacity),
        }
    }

    fn lookup(&mut self, key: u64) -> Option<FrameId> {
        self.entries.get(key).copied()
    }

    fn insert(&mut self, key: u64, frame: FrameId) {
        self.entries.insert(key, frame);
    }

    fn flush(&mut self) {
        self.entries.clear();
    }

    /// Drops every entry whose key falls in `[key_start, key_end]`.
    /// Returns the number of entries removed.
    fn invalidate_keys(&mut self, key_start: u64, key_end: u64) -> usize {
        let mut removed = 0;
        self.entries.retain(|key, _| {
            let dead = key >= key_start && key <= key_end;
            removed += usize::from(dead);
            !dead
        });
        removed
    }
}

/// The MMU's caches of upper-level page-table entries.
///
/// * the PDE cache maps bits 47..21 of an address to the L1 page-table page,
/// * the PDPTE cache maps bits 47..30 to the L2 page,
/// * the PML4E cache maps bits 47..39 to the L3 page.
///
/// A hit in a lower cache lets the walker skip more levels.
#[derive(Debug, Clone)]
pub struct PagingStructureCache {
    pde: LevelCache,
    pdpte: LevelCache,
    pml4e: LevelCache,
}

impl PagingStructureCache {
    /// Creates the caches with sizes representative of an Intel MMU
    /// (32 PDE, 16 PDPTE, 16 PML4E entries).
    pub fn paper_testbed() -> Self {
        PagingStructureCache::new(32, 16, 16)
    }

    /// Creates the caches with explicit entry counts.
    pub fn new(pde_entries: usize, pdpte_entries: usize, pml4e_entries: usize) -> Self {
        PagingStructureCache {
            pde: LevelCache::new(pde_entries),
            pdpte: LevelCache::new(pdpte_entries),
            pml4e: LevelCache::new(pml4e_entries),
        }
    }

    fn key(addr: VirtAddr, level: Level) -> u64 {
        addr.as_u64() >> level.index_shift()
    }

    /// Returns the deepest cached starting point for a walk of `addr`:
    /// the level whose *table* the walker must read next, and that table's
    /// frame.  `None` means the walk must start at the root (L4 table).
    ///
    /// The returned level is the level of the table to read: a PDE-cache hit
    /// returns `(Level::L1, l1_table)`, a PDPTE hit `(Level::L2, l2_table)`,
    /// a PML4E hit `(Level::L3, l3_table)`.
    pub fn walk_start(&mut self, addr: VirtAddr) -> Option<(Level, FrameId)> {
        if let Some(frame) = self.pde.lookup(Self::key(addr, Level::L2)) {
            return Some((Level::L1, frame));
        }
        if let Some(frame) = self.pdpte.lookup(Self::key(addr, Level::L3)) {
            return Some((Level::L2, frame));
        }
        if let Some(frame) = self.pml4e.lookup(Self::key(addr, Level::L4)) {
            return Some((Level::L3, frame));
        }
        None
    }

    /// Records that the table read at `level` for `addr` yielded a pointer to
    /// `next_table` (the table of the next lower level), so future walks can
    /// skip to it.
    ///
    /// `level` is the level of the *entry* that was read (L4, L3 or L2);
    /// leaf entries are cached by the TLB, not here.
    pub fn record(&mut self, addr: VirtAddr, level: Level, next_table: FrameId) {
        match level {
            Level::L4 => self.pml4e.insert(Self::key(addr, Level::L4), next_table),
            Level::L3 => self.pdpte.insert(Self::key(addr, Level::L3), next_table),
            Level::L2 => self.pde.insert(Self::key(addr, Level::L2), next_table),
            Level::L1 => {}
        }
    }

    /// Flushes all cached entries (CR3 write / full shootdown).
    pub fn flush(&mut self) {
        self.pde.flush();
        self.pdpte.flush();
        self.pml4e.flush();
    }

    /// Evicts every entry serving addresses in `[va_start, va_end)` — the
    /// targeted paging-structure-cache eviction of a ranged shootdown.  Any
    /// entry whose coverage intersects the range dies; coarser levels drop
    /// at most one entry per 1 GiB / 512 GiB of range.  Returns the number
    /// of entries removed across all three caches.
    pub fn invalidate_range(&mut self, va_start: VirtAddr, va_end: VirtAddr) -> usize {
        if va_end.as_u64() <= va_start.as_u64() {
            return 0;
        }
        let last = VirtAddr::new(va_end.as_u64() - 1);
        let mut removed = 0;
        for level in [Level::L2, Level::L3, Level::L4] {
            let cache = match level {
                Level::L2 => &mut self.pde,
                Level::L3 => &mut self.pdpte,
                _ => &mut self.pml4e,
            };
            removed += cache.invalidate_keys(Self::key(va_start, level), Self::key(last, level));
        }
        removed
    }
}

impl Default for PagingStructureCache {
    fn default() -> Self {
        PagingStructureCache::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_starts_walks_at_the_root() {
        let mut pwc = PagingStructureCache::paper_testbed();
        assert_eq!(pwc.walk_start(VirtAddr::new(0x1234_5000)), None);
    }

    #[test]
    fn pde_hit_skips_to_the_leaf_table() {
        let mut pwc = PagingStructureCache::paper_testbed();
        let addr = VirtAddr::new(0x4000_3000);
        pwc.record(addr, Level::L2, FrameId::new(77));
        // A different address under the same 2 MiB region hits too.
        let sibling = VirtAddr::new(0x4000_7000);
        assert_eq!(pwc.walk_start(sibling), Some((Level::L1, FrameId::new(77))));
        // An address in a different 2 MiB region falls back to coarser caches.
        let other = VirtAddr::new(0x4020_0000);
        assert_eq!(pwc.walk_start(other), None);
    }

    #[test]
    fn deeper_caches_take_precedence() {
        let mut pwc = PagingStructureCache::paper_testbed();
        let addr = VirtAddr::new(0x4000_3000);
        pwc.record(addr, Level::L4, FrameId::new(3));
        pwc.record(addr, Level::L3, FrameId::new(2));
        pwc.record(addr, Level::L2, FrameId::new(1));
        assert_eq!(pwc.walk_start(addr), Some((Level::L1, FrameId::new(1))));
        // Same 1 GiB region, different 2 MiB region: PDPTE cache serves it.
        let cousin = VirtAddr::new(0x4060_0000);
        assert_eq!(pwc.walk_start(cousin), Some((Level::L2, FrameId::new(2))));
    }

    #[test]
    fn flush_clears_everything() {
        let mut pwc = PagingStructureCache::paper_testbed();
        let addr = VirtAddr::new(0x8000_0000);
        pwc.record(addr, Level::L2, FrameId::new(9));
        pwc.flush();
        assert_eq!(pwc.walk_start(addr), None);
    }

    #[test]
    fn lru_eviction_bounds_capacity() {
        let mut pwc = PagingStructureCache::new(2, 2, 2);
        for i in 0..4u64 {
            let addr = VirtAddr::new(i << 21);
            pwc.record(addr, Level::L2, FrameId::new(i));
        }
        // The two oldest entries were evicted.
        assert_eq!(pwc.walk_start(VirtAddr::new(0)), None);
        assert!(pwc.walk_start(VirtAddr::new(3 << 21)).is_some());
    }

    #[test]
    fn ranged_eviction_is_targeted() {
        let mut pwc = PagingStructureCache::paper_testbed();
        let inside = VirtAddr::new(0x4000_0000);
        let outside = VirtAddr::new(0x8000_0000);
        pwc.record(inside, Level::L2, FrameId::new(1));
        pwc.record(outside, Level::L2, FrameId::new(2));
        pwc.record(inside, Level::L3, FrameId::new(3));
        // Evict one 2 MiB region: the PDE entry covering it dies, as does
        // the PDPTE entry for its 1 GiB region; the other region survives.
        let removed = pwc.invalidate_range(inside, inside.add(2 * 1024 * 1024));
        assert_eq!(removed, 2);
        assert_eq!(pwc.walk_start(inside), None);
        assert!(pwc.walk_start(outside).is_some());
        // An empty range removes nothing.
        assert_eq!(pwc.invalidate_range(outside, outside), 0);
    }

    #[test]
    fn leaf_level_record_is_ignored() {
        let mut pwc = PagingStructureCache::paper_testbed();
        pwc.record(VirtAddr::new(0x1000), Level::L1, FrameId::new(5));
        assert_eq!(pwc.walk_start(VirtAddr::new(0x1000)), None);
    }
}
