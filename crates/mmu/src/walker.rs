//! The hardware page-table walker.
//!
//! On a TLB miss the walker reads one entry per level, starting from CR3 (or
//! from a paging-structure-cache hit), until it reaches a leaf entry.  Each
//! read is a real memory access whose cost depends on where the page-table
//! page lives relative to the walking core — the quantity Mitosis optimises.
//! The walker also sets the accessed (and, for stores, dirty) bit in the leaf
//! entry *of the tree it walked*, which is why replicated page tables need
//! OR-consolidation when the OS reads those bits back (paper §5.4).

use crate::pte_cache::PteCache;
use crate::pwc::PagingStructureCache;
use crate::stats::WalkStats;
use mitosis_mem::{FrameId, FrameTable};
use mitosis_numa::{AccessKind, CostModel, Cycles, SocketId};
use mitosis_pt::{Level, PageSize, PtStore, Translation, VirtAddr};

/// Tuning knobs for the walker model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkerConfig {
    /// Whether the walker sets accessed/dirty bits (x86 does; some RISC
    /// implementations fault to software instead).
    pub set_access_dirty: bool,
    /// Fixed pipeline overhead charged per walk, on top of memory accesses.
    pub walk_setup_cycles: Cycles,
}

impl Default for WalkerConfig {
    fn default() -> Self {
        WalkerConfig {
            set_access_dirty: true,
            walk_setup_cycles: 20,
        }
    }
}

/// Result of one hardware page walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// The translation found, or `None` if the walk hit a non-present entry
    /// (which the OS sees as a page fault).
    pub translation: Option<Translation>,
    /// Cycles consumed by the walk.
    pub cycles: Cycles,
    /// Number of page-table levels read.
    pub levels_read: u8,
}

/// The hardware page walker of one core.
#[derive(Debug, Clone, Copy, Default)]
pub struct HardwareWalker {
    config: WalkerConfig,
}

impl HardwareWalker {
    /// Creates a walker with the default configuration.
    pub fn new() -> Self {
        HardwareWalker::default()
    }

    /// Creates a walker with an explicit configuration.
    pub fn with_config(config: WalkerConfig) -> Self {
        HardwareWalker { config }
    }

    /// The walker's configuration.
    pub fn config(&self) -> WalkerConfig {
        self.config
    }

    /// Performs a page walk for `addr` starting at the page table rooted at
    /// `root`, on behalf of a core on `socket`.
    ///
    /// `store` is written to when accessed/dirty bits are set; every other
    /// argument is a model the walk consults (paging-structure caches, the
    /// socket's L3 page-table lines, the NUMA cost model) or a statistics
    /// sink.
    #[allow(clippy::too_many_arguments)]
    pub fn walk(
        &self,
        socket: SocketId,
        root: FrameId,
        addr: VirtAddr,
        is_write: bool,
        store: &mut PtStore,
        frames: &FrameTable,
        cost: &CostModel,
        pwc: &mut PagingStructureCache,
        pte_cache: &mut PteCache,
        stats: &mut WalkStats,
    ) -> WalkOutcome {
        let mut cycles: Cycles = self.config.walk_setup_cycles;
        let mut levels_read: u8 = 0;
        stats.walks += 1;

        let (mut level, mut table) = match pwc.walk_start(addr) {
            Some((level, table)) => (level, table),
            None => (Level::L4, root),
        };

        loop {
            let index = addr.index_at(level);
            // One directory resolution per level; the slot handle serves
            // both the entry read and the accessed/dirty write below.
            let slot = store.slot(table);
            // Charge the memory access for reading this entry.
            let cached = pte_cache.access(table, index);
            if cached {
                cycles += cost.llc_hit().cycles;
                stats.pte_cache_hits += 1;
            } else {
                let access =
                    cost.dram_access(socket, frames.socket_of(table), AccessKind::PageWalk);
                cycles += access.cycles;
                if access.local {
                    stats.local_dram_accesses += 1;
                } else {
                    stats.remote_dram_accesses += 1;
                }
                if access.interfered {
                    stats.interfered_accesses += 1;
                }
            }
            levels_read += 1;
            stats.levels_accessed += 1;

            let pte = store.read_at(slot, index);
            if !pte.is_present() {
                stats.faults += 1;
                stats.walk_cycles += cycles;
                return WalkOutcome {
                    translation: None,
                    cycles,
                    levels_read,
                };
            }

            let is_leaf = level == Level::L1 || pte.is_huge();
            if is_leaf {
                let size = match level {
                    Level::L1 => PageSize::Base4K,
                    Level::L2 => PageSize::Huge2M,
                    Level::L3 => PageSize::Giant1G,
                    Level::L4 => {
                        // A huge bit at L4 is architecturally invalid; treat
                        // as a fault.
                        stats.faults += 1;
                        stats.walk_cycles += cycles;
                        return WalkOutcome {
                            translation: None,
                            cycles,
                            levels_read,
                        };
                    }
                };
                // A store through a non-writable leaf is a permission
                // fault (the path copy-on-write resolution takes).
                if is_write && !pte.flags().writable {
                    stats.faults += 1;
                    stats.walk_cycles += cycles;
                    return WalkOutcome {
                        translation: None,
                        cycles,
                        levels_read,
                    };
                }
                if self.config.set_access_dirty {
                    let mut updated = pte.with_accessed();
                    if is_write {
                        updated = updated.with_dirty();
                    }
                    if updated != pte {
                        store.write_at(slot, index, updated);
                    }
                }
                stats.walk_cycles += cycles;
                return WalkOutcome {
                    translation: Some(Translation {
                        frame: pte.frame().expect("present leaf entry has a frame"),
                        size,
                        pte,
                        level,
                    }),
                    cycles,
                    levels_read,
                };
            }

            let child = pte.frame().expect("present table entry has a frame");
            pwc.record(addr, level, child);
            table = child;
            level = level
                .next_lower()
                .expect("non-leaf entries exist above L1 only");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_mem::{FrameKind, FrameSpace};
    use mitosis_numa::Interference;
    use mitosis_pt::{Pte, PteFlags};

    /// Builds a page table with the leaf table either on socket 0 (local) or
    /// socket 1 (remote): root@0 -> l3@1 -> l2@2 -> l1@(3 | 10_000) -> data.
    fn build(remote_leaf: bool) -> (PtStore, FrameTable, FrameId, VirtAddr) {
        let space = FrameSpace::with_frames_per_socket(2, 10_000);
        let mut frames = FrameTable::new(space);
        let mut store = PtStore::new();
        let root = FrameId::new(0);
        let l3 = FrameId::new(1);
        let l2 = FrameId::new(2);
        let l1 = if remote_leaf {
            FrameId::new(10_000)
        } else {
            FrameId::new(3)
        };
        for (frame, level) in [(root, 4u8), (l3, 3), (l2, 2), (l1, 1)] {
            frames.insert(frame, FrameKind::PageTable { level });
            store.insert_table(frame);
        }
        let data = FrameId::new(500);
        frames.insert(data, FrameKind::Data);
        let addr = VirtAddr::new(0x4000_0000);
        store.write(
            root,
            addr.index_at(Level::L4),
            Pte::new(l3, PteFlags::table_pointer()),
        );
        store.write(
            l3,
            addr.index_at(Level::L3),
            Pte::new(l2, PteFlags::table_pointer()),
        );
        store.write(
            l2,
            addr.index_at(Level::L2),
            Pte::new(l1, PteFlags::table_pointer()),
        );
        store.write(
            l1,
            addr.index_at(Level::L1),
            Pte::new(data, PteFlags::user_data()),
        );
        (store, frames, root, addr)
    }

    fn cost() -> CostModel {
        CostModel::new(2, 280, 580, 42, 28.0, 11.0)
    }

    #[test]
    fn full_walk_reads_four_levels_and_sets_accessed() {
        let (mut store, frames, root, addr) = build(false);
        let walker = HardwareWalker::new();
        let mut pwc = PagingStructureCache::paper_testbed();
        let mut pte_cache = PteCache::new(1024);
        let mut stats = WalkStats::default();
        let outcome = walker.walk(
            SocketId::new(0),
            root,
            addr,
            false,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        assert_eq!(outcome.levels_read, 4);
        let t = outcome.translation.unwrap();
        assert_eq!(t.frame, FrameId::new(500));
        // Accessed bit set in the walked tree, dirty not (read access).
        let leaf = store.read(FrameId::new(3), addr.index_at(Level::L1));
        assert!(leaf.flags().accessed);
        assert!(!leaf.flags().dirty);
        assert_eq!(stats.local_dram_accesses, 4);
        assert_eq!(stats.remote_dram_accesses, 0);
    }

    #[test]
    fn write_walk_sets_dirty() {
        let (mut store, frames, root, addr) = build(false);
        let walker = HardwareWalker::new();
        let mut pwc = PagingStructureCache::paper_testbed();
        let mut pte_cache = PteCache::new(1024);
        let mut stats = WalkStats::default();
        walker.walk(
            SocketId::new(0),
            root,
            addr,
            true,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        let leaf = store.read(FrameId::new(3), addr.index_at(Level::L1));
        assert!(leaf.flags().dirty);
    }

    #[test]
    fn write_through_a_read_only_leaf_faults() {
        let (mut store, frames, root, addr) = build(false);
        // Downgrade the leaf to read-only (a CoW mapping).
        let l1 = FrameId::new(3);
        let index = addr.index_at(Level::L1);
        let leaf = store.read(l1, index);
        store.write(
            l1,
            index,
            leaf.with_flags(PteFlags {
                writable: false,
                ..leaf.flags()
            }),
        );
        let walker = HardwareWalker::new();
        let mut pwc = PagingStructureCache::paper_testbed();
        let mut pte_cache = PteCache::new(1024);
        let mut stats = WalkStats::default();
        let read = walker.walk(
            SocketId::new(0),
            root,
            addr,
            false,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        assert!(read.translation.is_some(), "reads still translate");
        let write = walker.walk(
            SocketId::new(0),
            root,
            addr,
            true,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        assert!(write.translation.is_none(), "writes fault");
        assert_eq!(stats.faults, 1);
        // The dirty bit was not set by the faulting write.
        assert!(!store.read(l1, index).flags().dirty);
    }

    #[test]
    fn remote_leaf_table_costs_more() {
        let run = |remote: bool| {
            let (mut store, frames, root, addr) = build(remote);
            let walker = HardwareWalker::new();
            let mut pwc = PagingStructureCache::paper_testbed();
            let mut pte_cache = PteCache::new(1024);
            let mut stats = WalkStats::default();
            let outcome = walker.walk(
                SocketId::new(0),
                root,
                addr,
                false,
                &mut store,
                &frames,
                &cost(),
                &mut pwc,
                &mut pte_cache,
                &mut stats,
            );
            (outcome.cycles, stats)
        };
        let (local_cycles, local_stats) = run(false);
        let (remote_cycles, remote_stats) = run(true);
        assert!(remote_cycles > local_cycles);
        assert_eq!(local_stats.remote_dram_accesses, 0);
        assert_eq!(remote_stats.remote_dram_accesses, 1);
        assert_eq!(remote_cycles - local_cycles, 580 - 280);
    }

    #[test]
    fn interference_on_the_leaf_socket_inflates_walks() {
        let (mut store, frames, root, addr) = build(true);
        let mut cost = cost();
        cost.set_interference(Interference::on([SocketId::new(1)]).with_latency_factor(2.0));
        let walker = HardwareWalker::new();
        let mut pwc = PagingStructureCache::paper_testbed();
        let mut pte_cache = PteCache::new(1024);
        let mut stats = WalkStats::default();
        walker.walk(
            SocketId::new(0),
            root,
            addr,
            false,
            &mut store,
            &frames,
            &cost,
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        assert_eq!(stats.interfered_accesses, 1);
    }

    #[test]
    fn pwc_hit_shortens_subsequent_walks() {
        let (mut store, frames, root, addr) = build(false);
        let walker = HardwareWalker::new();
        let mut pwc = PagingStructureCache::paper_testbed();
        let mut pte_cache = PteCache::new(1); // effectively no PTE cache reuse
        let mut stats = WalkStats::default();
        let first = walker.walk(
            SocketId::new(0),
            root,
            addr,
            false,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        // A neighbouring page in the same 2 MiB region only needs the leaf.
        let neighbour = VirtAddr::new(addr.as_u64() + 4096);
        let second = walker.walk(
            SocketId::new(0),
            root,
            neighbour,
            false,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        assert_eq!(first.levels_read, 4);
        assert_eq!(second.levels_read, 1);
        // The neighbour is unmapped, so it faults.
        assert!(second.translation.is_none());
        assert_eq!(stats.faults, 1);
    }

    #[test]
    fn pte_cache_hit_avoids_dram_cost() {
        let (mut store, frames, root, addr) = build(true);
        let walker = HardwareWalker::new();
        let mut pwc = PagingStructureCache::paper_testbed();
        let mut pte_cache = PteCache::new(1024);
        let mut stats = WalkStats::default();
        let first = walker.walk(
            SocketId::new(0),
            root,
            addr,
            false,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        let second = walker.walk(
            SocketId::new(0),
            root,
            addr,
            false,
            &mut store,
            &frames,
            &cost(),
            &mut pwc,
            &mut pte_cache,
            &mut stats,
        );
        assert!(second.cycles < first.cycles);
        assert!(stats.pte_cache_hits >= 1);
    }
}
