//! Translation statistics, the simulator's equivalent of the performance
//! counters (`dtlb_load_misses.walk_*`) the paper reads with `perf`.

use mitosis_numa::Cycles;

/// Counters describing page-walk activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkStats {
    /// Number of page walks performed.
    pub walks: u64,
    /// Walks that ended at a non-present entry (page faults).
    pub faults: u64,
    /// Total cycles spent walking (the "walk cycles" hashed bars).
    pub walk_cycles: Cycles,
    /// Page-table levels read in total.
    pub levels_accessed: u64,
    /// Walker reads served by the local socket's DRAM.
    pub local_dram_accesses: u64,
    /// Walker reads served by a remote socket's DRAM.
    pub remote_dram_accesses: u64,
    /// Walker reads served from a cached page-table line.
    pub pte_cache_hits: u64,
    /// Walker reads that hit DRAM on a socket loaded by an interfering
    /// process.
    pub interfered_accesses: u64,
}

impl WalkStats {
    /// Total memory reads issued by the walker (DRAM plus cache hits).
    pub fn total_reads(&self) -> u64 {
        self.local_dram_accesses + self.remote_dram_accesses + self.pte_cache_hits
    }

    /// Fraction of DRAM walker reads that were remote.
    pub fn remote_dram_fraction(&self) -> f64 {
        let dram = self.local_dram_accesses + self.remote_dram_accesses;
        if dram == 0 {
            0.0
        } else {
            self.remote_dram_accesses as f64 / dram as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &WalkStats) {
        self.walks += other.walks;
        self.faults += other.faults;
        self.walk_cycles += other.walk_cycles;
        self.levels_accessed += other.levels_accessed;
        self.local_dram_accesses += other.local_dram_accesses;
        self.remote_dram_accesses += other.remote_dram_accesses;
        self.pte_cache_hits += other.pte_cache_hits;
        self.interfered_accesses += other.interfered_accesses;
    }
}

/// Counters describing overall MMU activity of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MmuStats {
    /// Translations requested.
    pub accesses: u64,
    /// Lookups served by the first-level TLB.
    pub tlb_l1_hits: u64,
    /// Lookups served by the second-level TLB.
    pub tlb_l2_hits: u64,
    /// Lookups that missed both TLB levels and required a walk.
    pub tlb_misses: u64,
    /// Cycles spent on translation (TLB penalties plus walk cycles).
    pub translation_cycles: Cycles,
    /// Page-walk detail.
    pub walk: WalkStats,
}

impl MmuStats {
    /// TLB miss ratio over all accesses.
    pub fn tlb_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / self.accesses as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MmuStats) {
        self.accesses += other.accesses;
        self.tlb_l1_hits += other.tlb_l1_hits;
        self.tlb_l2_hits += other.tlb_l2_hits;
        self.tlb_misses += other.tlb_misses;
        self.translation_cycles += other.translation_cycles;
        self.walk.merge(&other.walk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        assert_eq!(MmuStats::default().tlb_miss_ratio(), 0.0);
        assert_eq!(WalkStats::default().remote_dram_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = MmuStats {
            accesses: 10,
            tlb_l1_hits: 5,
            tlb_l2_hits: 2,
            tlb_misses: 3,
            translation_cycles: 100,
            walk: WalkStats {
                walks: 3,
                faults: 1,
                walk_cycles: 90,
                levels_accessed: 6,
                local_dram_accesses: 2,
                remote_dram_accesses: 4,
                pte_cache_hits: 1,
                interfered_accesses: 2,
            },
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert_eq!(a.walk.walks, 6);
        assert_eq!(a.walk.total_reads(), 14);
        assert!((a.walk.remote_dram_fraction() - 8.0 / 12.0).abs() < 1e-9);
        assert!((a.tlb_miss_ratio() - 0.3).abs() < 1e-9);
    }
}
