//! Translation statistics, the simulator's equivalent of the performance
//! counters (`dtlb_load_misses.walk_*`) the paper reads with `perf`.

use mitosis_numa::Cycles;

/// Counters describing page-walk activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkStats {
    /// Number of page walks performed.
    pub walks: u64,
    /// Walks that ended at a non-present entry (page faults).
    pub faults: u64,
    /// Total cycles spent walking (the "walk cycles" hashed bars).
    pub walk_cycles: Cycles,
    /// Page-table levels read in total.
    pub levels_accessed: u64,
    /// Walker reads served by the local socket's DRAM.
    pub local_dram_accesses: u64,
    /// Walker reads served by a remote socket's DRAM.
    pub remote_dram_accesses: u64,
    /// Walker reads served from a cached page-table line.
    pub pte_cache_hits: u64,
    /// Walker reads that hit DRAM on a socket loaded by an interfering
    /// process.
    pub interfered_accesses: u64,
}

impl WalkStats {
    /// Total memory reads issued by the walker (DRAM plus cache hits).
    pub fn total_reads(&self) -> u64 {
        self.local_dram_accesses + self.remote_dram_accesses + self.pte_cache_hits
    }

    /// Fraction of DRAM walker reads that were remote.
    pub fn remote_dram_fraction(&self) -> f64 {
        let dram = self.local_dram_accesses + self.remote_dram_accesses;
        if dram == 0 {
            0.0
        } else {
            self.remote_dram_accesses as f64 / dram as f64
        }
    }

    /// The counter deltas accumulated since `earlier` was captured.
    ///
    /// `earlier` must be a previous snapshot of the same monotonic counter
    /// set; every field of the result is `self - earlier`.
    pub fn delta_since(&self, earlier: &WalkStats) -> WalkStats {
        WalkStats {
            walks: self.walks - earlier.walks,
            faults: self.faults - earlier.faults,
            walk_cycles: self.walk_cycles - earlier.walk_cycles,
            levels_accessed: self.levels_accessed - earlier.levels_accessed,
            local_dram_accesses: self.local_dram_accesses - earlier.local_dram_accesses,
            remote_dram_accesses: self.remote_dram_accesses - earlier.remote_dram_accesses,
            pte_cache_hits: self.pte_cache_hits - earlier.pte_cache_hits,
            interfered_accesses: self.interfered_accesses - earlier.interfered_accesses,
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &WalkStats) {
        self.walks += other.walks;
        self.faults += other.faults;
        self.walk_cycles += other.walk_cycles;
        self.levels_accessed += other.levels_accessed;
        self.local_dram_accesses += other.local_dram_accesses;
        self.remote_dram_accesses += other.remote_dram_accesses;
        self.pte_cache_hits += other.pte_cache_hits;
        self.interfered_accesses += other.interfered_accesses;
    }
}

/// Counters describing overall MMU activity of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MmuStats {
    /// Translations requested.
    pub accesses: u64,
    /// Lookups served by the first-level TLB.
    pub tlb_l1_hits: u64,
    /// Lookups served by the second-level TLB.
    pub tlb_l2_hits: u64,
    /// Lookups that missed both TLB levels and required a walk.
    pub tlb_misses: u64,
    /// Cycles spent on translation (TLB penalties plus walk cycles).
    pub translation_cycles: Cycles,
    /// Page-walk detail.
    pub walk: WalkStats,
}

impl MmuStats {
    /// TLB miss ratio over all accesses.
    pub fn tlb_miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.tlb_misses as f64 / self.accesses as f64
        }
    }

    /// The counter deltas accumulated since `earlier` was captured.
    ///
    /// `earlier` must be a previous snapshot of the same monotonic counter
    /// set; every field of the result is `self - earlier`.
    pub fn delta_since(&self, earlier: &MmuStats) -> MmuStats {
        MmuStats {
            accesses: self.accesses - earlier.accesses,
            tlb_l1_hits: self.tlb_l1_hits - earlier.tlb_l1_hits,
            tlb_l2_hits: self.tlb_l2_hits - earlier.tlb_l2_hits,
            tlb_misses: self.tlb_misses - earlier.tlb_misses,
            translation_cycles: self.translation_cycles - earlier.translation_cycles,
            walk: self.walk.delta_since(&earlier.walk),
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MmuStats) {
        self.accesses += other.accesses;
        self.tlb_l1_hits += other.tlb_l1_hits;
        self.tlb_l2_hits += other.tlb_l2_hits;
        self.tlb_misses += other.tlb_misses;
        self.translation_cycles += other.translation_cycles;
        self.walk.merge(&other.walk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        assert_eq!(MmuStats::default().tlb_miss_ratio(), 0.0);
        assert_eq!(WalkStats::default().remote_dram_fraction(), 0.0);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = MmuStats {
            accesses: 10,
            tlb_l1_hits: 5,
            tlb_l2_hits: 2,
            tlb_misses: 3,
            translation_cycles: 100,
            walk: WalkStats {
                walks: 3,
                faults: 1,
                walk_cycles: 90,
                levels_accessed: 6,
                local_dram_accesses: 2,
                remote_dram_accesses: 4,
                pte_cache_hits: 1,
                interfered_accesses: 2,
            },
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert_eq!(a.walk.walks, 6);
        assert_eq!(a.walk.total_reads(), 14);
        assert!((a.walk.remote_dram_fraction() - 8.0 / 12.0).abs() < 1e-9);
        assert!((a.tlb_miss_ratio() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn delta_since_inverts_merge() {
        let earlier = MmuStats {
            accesses: 10,
            tlb_l1_hits: 5,
            tlb_l2_hits: 2,
            tlb_misses: 3,
            translation_cycles: 100,
            walk: WalkStats {
                walks: 3,
                faults: 1,
                walk_cycles: 90,
                levels_accessed: 6,
                local_dram_accesses: 2,
                remote_dram_accesses: 4,
                pte_cache_hits: 1,
                interfered_accesses: 2,
            },
        };
        let delta = MmuStats {
            accesses: 7,
            tlb_l1_hits: 4,
            tlb_l2_hits: 1,
            tlb_misses: 2,
            translation_cycles: 55,
            walk: WalkStats {
                walks: 2,
                faults: 0,
                walk_cycles: 40,
                levels_accessed: 4,
                local_dram_accesses: 1,
                remote_dram_accesses: 2,
                pte_cache_hits: 1,
                interfered_accesses: 0,
            },
        };
        let mut later = earlier;
        later.merge(&delta);
        assert_eq!(later.delta_since(&earlier), delta);
        assert_eq!(later.delta_since(&later), MmuStats::default());
    }
}
