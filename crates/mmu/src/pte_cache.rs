//! Last-level-cache model for page-table cache lines.
//!
//! Page-table entries are ordinary cacheable memory: eight 8-byte PTEs share
//! one 64-byte line, and hot lines live in the socket's L3.  The paper relies
//! on this to explain why some 2 MiB-page workloads see no slowdown from
//! remote page tables (GUPS' entire leaf level fits in the L3, §8.2).  This
//! module models the page-table-line footprint in each socket's L3 as an LRU
//! set of lines with a capacity derived from the machine's L3 size.

use crate::lru::LruMap;
use mitosis_mem::FrameId;
use mitosis_numa::{Machine, SocketId};

/// Number of page-table entries per 64-byte cache line.
const PTES_PER_LINE: u64 = 8;

/// Number of cache lines covering one 4 KiB page-table page.
const LINES_PER_TABLE: u64 = 512 / PTES_PER_LINE;

/// Fraction of the L3 a socket realistically devotes to page-table lines in
/// a big-memory workload (the rest is data).  Configurable per cache.
const DEFAULT_L3_PT_FRACTION: f64 = 0.5;

/// One socket's LRU cache of page-table lines.
///
/// Backed by the crate-private `LruMap`, so the hot call —
/// [`PteCache::access`], once per
/// page-table level per TLB miss — is O(1) for hits *and* misses.  The old
/// implementation scanned the whole map for the LRU victim on every miss,
/// which made miss-heavy workloads (GUPS thrashing an L3-sized cache)
/// quadratic-ish in the line capacity.
#[derive(Debug, Clone)]
pub struct PteCache {
    lines: LruMap<()>,
    hits: u64,
    misses: u64,
}

impl PteCache {
    /// Creates a cache holding `capacity_lines` page-table lines.
    pub fn new(capacity_lines: usize) -> Self {
        PteCache {
            lines: LruMap::new(capacity_lines.max(1)),
            hits: 0,
            misses: 0,
        }
    }

    /// Global line number of entry `index` of page-table page `table`.
    fn line_of(table: FrameId, index: usize) -> u64 {
        table.pfn() * LINES_PER_TABLE + index as u64 / PTES_PER_LINE
    }

    /// Records an access to entry `index` of page-table page `table`;
    /// returns `true` if the line was already cached.
    #[inline]
    pub fn access(&mut self, table: FrameId, index: usize) -> bool {
        let hit = self.lines.touch_or_insert(Self::line_of(table, index), ());
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Invalidates every line belonging to `table` (table freed or migrated).
    pub fn invalidate_table(&mut self, table: FrameId) {
        let pfn = table.pfn();
        self.lines.retain(|line, _| line / LINES_PER_TABLE != pfn);
    }

    /// Drops every resident line (hit/miss counters are preserved).
    ///
    /// Used when a phase-change event rewrites page tables wholesale
    /// (migration, replica add/drop): the freed table pages may be
    /// recycled, so keeping their lines would alias new tables.
    pub fn flush(&mut self) {
        self.lines.clear();
    }

    /// Number of line hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of line misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// Configured capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.lines.capacity()
    }
}

/// One [`PteCache`] per socket, shared by all cores of that socket.
#[derive(Debug, Clone)]
pub struct PteCacheSet {
    caches: Vec<PteCache>,
}

impl PteCacheSet {
    /// Creates per-socket caches sized from the machine's L3 capacity, using
    /// the default fraction reserved for page-table lines.
    pub fn for_machine(machine: &Machine) -> Self {
        PteCacheSet::with_fraction(machine, DEFAULT_L3_PT_FRACTION)
    }

    /// Creates per-socket caches devoting `fraction` of the L3 to page-table
    /// lines.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `(0, 1]`.
    pub fn with_fraction(machine: &Machine, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "L3 page-table fraction must be within (0, 1]"
        );
        let lines = ((machine.l3_bytes_per_socket() as f64 * fraction) / 64.0) as usize;
        PteCacheSet {
            caches: (0..machine.sockets())
                .map(|_| PteCache::new(lines))
                .collect(),
        }
    }

    /// Creates per-socket caches with an explicit line capacity (tests).
    pub fn with_capacity(sockets: usize, capacity_lines: usize) -> Self {
        PteCacheSet {
            caches: (0..sockets)
                .map(|_| PteCache::new(capacity_lines))
                .collect(),
        }
    }

    /// The cache of one socket.
    pub fn socket(&mut self, socket: SocketId) -> &mut PteCache {
        &mut self.caches[socket.index()]
    }

    /// Read-only access to one socket's cache.
    pub fn socket_ref(&self, socket: SocketId) -> &PteCache {
        &self.caches[socket.index()]
    }

    /// Number of sockets covered.
    pub fn sockets(&self) -> usize {
        self.caches.len()
    }

    /// Invalidates lines of `table` on every socket (e.g. after migration).
    pub fn invalidate_table_everywhere(&mut self, table: FrameId) {
        for cache in &mut self.caches {
            cache.invalidate_table(table);
        }
    }

    /// Flushes every socket's cache (page tables rewritten wholesale).
    pub fn flush_all(&mut self) {
        for cache in &mut self.caches {
            cache.flush();
        }
    }

    /// Resets every socket's cache between runs (engine reset).
    pub fn reset_for_run(&mut self) {
        self.flush_all();
    }

    /// Applies the PTE-cache side of a shootdown plan: evicts the lines of
    /// every freed page-table frame on every socket, or flushes everything
    /// when the plan escalated to a full flush.
    pub fn apply_shootdown(&mut self, plan: &mitosis_pt::ShootdownPlan) {
        if plan.full_flush {
            self.flush_all();
            return;
        }
        for &table in &plan.tables {
            self.invalidate_table_everywhere(table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_numa::MachineConfig;

    #[test]
    fn first_access_misses_then_hits() {
        let mut cache = PteCache::new(16);
        assert!(!cache.access(FrameId::new(1), 0));
        assert!(cache.access(FrameId::new(1), 0));
        // Entries sharing the 64-byte line hit too.
        assert!(cache.access(FrameId::new(1), 7));
        assert!(!cache.access(FrameId::new(1), 8));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn lru_eviction_when_capacity_exceeded() {
        let mut cache = PteCache::new(2);
        cache.access(FrameId::new(1), 0);
        cache.access(FrameId::new(2), 0);
        cache.access(FrameId::new(1), 0); // refresh 1, making 2 the LRU
        cache.access(FrameId::new(3), 0); // evicts 2
        assert!(cache.access(FrameId::new(1), 0));
        assert!(!cache.access(FrameId::new(2), 0));
        assert_eq!(cache.occupancy(), 2);
    }

    #[test]
    fn invalidate_table_removes_all_its_lines() {
        let mut cache = PteCache::new(16);
        cache.access(FrameId::new(5), 0);
        cache.access(FrameId::new(5), 64);
        cache.access(FrameId::new(6), 0);
        cache.invalidate_table(FrameId::new(5));
        assert!(!cache.access(FrameId::new(5), 0));
        assert!(cache.access(FrameId::new(6), 0));
    }

    #[test]
    fn cache_set_is_sized_from_the_machine_l3() {
        let machine = MachineConfig::paper_testbed().build();
        let set = PteCacheSet::for_machine(&machine);
        assert_eq!(set.sockets(), 4);
        let expected_lines = (35 * 1024 * 1024 / 2) / 64;
        assert_eq!(
            set.socket_ref(SocketId::new(0)).capacity_lines(),
            expected_lines as usize
        );
    }

    #[test]
    fn per_socket_caches_are_independent() {
        let mut set = PteCacheSet::with_capacity(2, 8);
        set.socket(SocketId::new(0)).access(FrameId::new(1), 0);
        assert!(!set.socket(SocketId::new(1)).access(FrameId::new(1), 0));
        assert!(set.socket(SocketId::new(0)).access(FrameId::new(1), 0));
        set.invalidate_table_everywhere(FrameId::new(1));
        assert!(!set.socket(SocketId::new(0)).access(FrameId::new(1), 0));
    }

    #[test]
    #[should_panic(expected = "within (0, 1]")]
    fn invalid_fraction_panics() {
        let machine = MachineConfig::two_socket_small().build();
        let _ = PteCacheSet::with_fraction(&machine, 0.0);
    }
}
