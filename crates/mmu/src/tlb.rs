//! Translation lookaside buffers.

use mitosis_mem::FrameId;
use mitosis_pt::{PageSize, VirtAddr};

/// Which level of the TLB hierarchy served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// First-level (per page-size) TLB.
    L1,
    /// Second-level (unified) TLB.
    L2,
}

/// A set-associative TLB with LRU replacement.
///
/// Entries are tagged by virtual page number and store the translation's
/// first frame; the page size is a property of the TLB instance (the split
/// L1 design) or recorded per entry (unified L2).
///
/// Storage is struct-of-arrays with the ways of each set inline
/// (set-major): a probe scans a contiguous run of `u64` tags — one or two
/// cache lines — and touches the frame/recency payload only on a hit.  The
/// tag folds the virtual page number and page size together
/// (`vpn << 2 | size code`, codes 1-3) with tag 0 meaning "invalid", so a
/// probe is a single word comparison per way.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// `sets * ways` tags; set `s` occupies `[s * ways, (s + 1) * ways)`.
    tags: Box<[u64]>,
    /// Frame payload, same layout as `tags`.
    frames: Box<[FrameId]>,
    /// LRU recency payload, same layout as `tags`.
    last_used: Box<[u64]>,
    sets: usize,
    ways: usize,
    /// `sets - 1` when the set count is a power of two (every real TLB
    /// geometry), letting the set index be a mask instead of a division.
    set_mask: Option<u64>,
    /// Monotonic counter used for LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    /// Resident entries per size code (index = code - 1).  A probe for a
    /// size with zero resident entries cannot hit, so the hierarchy skips
    /// it — the common pure-4K access then pays two probes, not six.
    per_size: [usize; 3],
}

/// Tag 0 marks an invalid way (real tags carry a non-zero size code).
const INVALID_TAG: u64 = 0;

#[inline]
fn tag_of(vpn: u64, size: PageSize) -> u64 {
    let code = match size {
        PageSize::Base4K => 1,
        PageSize::Huge2M => 2,
        PageSize::Giant1G => 3,
    };
    (vpn << 2) | code
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` ways per set.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways` or either is zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "TLB dimensions must be positive");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        let sets = entries / ways;
        Tlb {
            tags: vec![INVALID_TAG; entries].into_boxed_slice(),
            frames: vec![FrameId::new(0); entries].into_boxed_slice(),
            last_used: vec![0; entries].into_boxed_slice(),
            sets,
            ways,
            set_mask: sets.is_power_of_two().then_some(sets as u64 - 1),
            tick: 0,
            hits: 0,
            misses: 0,
            per_size: [0; 3],
        }
    }

    /// Returns `true` if any entry of `size` is resident.
    #[inline]
    pub fn holds(&self, size: PageSize) -> bool {
        self.per_size[tag_of(0, size) as usize - 1] > 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    #[inline]
    fn set_start(&self, vpn: u64) -> usize {
        let set = match self.set_mask {
            Some(mask) => (vpn & mask) as usize,
            None => (vpn % self.sets as u64) as usize,
        };
        set * self.ways
    }

    /// Looks up the translation of `addr` at page size `size`.
    #[inline]
    pub fn lookup(&mut self, addr: VirtAddr, size: PageSize) -> Option<FrameId> {
        self.tick += 1;
        let vpn = addr.page_number(size);
        let tag = tag_of(vpn, size);
        let start = self.set_start(vpn);
        let set_tags = &self.tags[start..start + self.ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            self.last_used[start + way] = self.tick;
            self.hits += 1;
            return Some(self.frames[start + way]);
        }
        self.misses += 1;
        None
    }

    /// Inserts a translation, evicting the LRU entry of the set if full.
    pub fn insert(&mut self, addr: VirtAddr, size: PageSize, frame: FrameId) {
        self.tick += 1;
        let vpn = addr.page_number(size);
        let tag = tag_of(vpn, size);
        let start = self.set_start(vpn);
        // Refresh an existing entry, else fill the first invalid way, else
        // evict the least recently used way — one pass over the set (ticks
        // are unique, so the victim is the same one a full tick-scan picks;
        // an existing tag is unique in its set, so breaking early is safe).
        let mut matched = None;
        let mut first_invalid = None;
        let mut lru = 0;
        let mut lru_tick = u64::MAX;
        for (i, &t) in self.tags[start..start + self.ways].iter().enumerate() {
            if t == tag {
                matched = Some(i);
                break;
            }
            if t == INVALID_TAG {
                if first_invalid.is_none() {
                    first_invalid = Some(i);
                }
            } else if self.last_used[start + i] < lru_tick {
                lru_tick = self.last_used[start + i];
                lru = i;
            }
        }
        let way = start + matched.or(first_invalid).unwrap_or(lru);
        let old = self.tags[way];
        if old != INVALID_TAG {
            self.per_size[(old & 3) as usize - 1] -= 1;
        }
        self.per_size[(tag & 3) as usize - 1] += 1;
        self.tags[way] = tag;
        self.frames[way] = frame;
        self.last_used[way] = self.tick;
    }

    /// Invalidates every entry (a full TLB flush, e.g. on CR3 write).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.last_used.fill(0);
        self.per_size = [0; 3];
    }

    /// Invalidates the entry covering `addr` at `size`, if present
    /// (`invlpg`).
    pub fn flush_page(&mut self, addr: VirtAddr, size: PageSize) {
        let vpn = addr.page_number(size);
        let tag = tag_of(vpn, size);
        let start = self.set_start(vpn);
        for way in start..start + self.ways {
            if self.tags[way] == tag {
                self.tags[way] = INVALID_TAG;
                self.last_used[way] = 0;
                self.per_size[(tag & 3) as usize - 1] -= 1;
            }
        }
    }

    /// Number of lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

/// The per-core two-level TLB hierarchy of the paper's testbed: split 64-entry
/// L1 TLBs (4 KiB and 2 MiB) backed by a 1024-entry unified L2 (STLB).
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1_4k: Tlb,
    l1_2m: Tlb,
    l2: Tlb,
    /// Cycles charged when a lookup is served by the L2 TLB.
    l2_hit_penalty: u64,
}

impl TlbHierarchy {
    /// Creates the hierarchy with the paper's sizes (64 + 32 + 1024 entries).
    pub fn paper_testbed() -> Self {
        TlbHierarchy::new(64, 32, 1024)
    }

    /// Creates a hierarchy with explicit entry counts.
    pub fn new(l1_4k_entries: usize, l1_2m_entries: usize, l2_entries: usize) -> Self {
        TlbHierarchy {
            l1_4k: Tlb::new(l1_4k_entries, 4),
            l1_2m: Tlb::new(l1_2m_entries, 4),
            l2: Tlb::new(l2_entries, 8),
            l2_hit_penalty: 7,
        }
    }

    /// Looks up `addr`; returns the serving level, frame and extra cycles.
    ///
    /// Levels holding no entry of `size` are skipped without probing (a
    /// probe of an empty size class can never hit, so residency and
    /// promotion behaviour are unchanged).
    pub fn lookup(&mut self, addr: VirtAddr, size: PageSize) -> Option<(TlbLevel, FrameId, u64)> {
        let l1 = match size {
            PageSize::Base4K => &mut self.l1_4k,
            PageSize::Huge2M | PageSize::Giant1G => &mut self.l1_2m,
        };
        if l1.holds(size) {
            if let Some(frame) = l1.lookup(addr, size) {
                return Some((TlbLevel::L1, frame, 0));
            }
        }
        if self.l2.holds(size) {
            if let Some(frame) = self.l2.lookup(addr, size) {
                // Promote into L1.
                let l1 = match size {
                    PageSize::Base4K => &mut self.l1_4k,
                    PageSize::Huge2M | PageSize::Giant1G => &mut self.l1_2m,
                };
                l1.insert(addr, size, frame);
                return Some((TlbLevel::L2, frame, self.l2_hit_penalty));
            }
        }
        None
    }

    /// Installs a translation into both levels (as a walk completion does).
    pub fn insert(&mut self, addr: VirtAddr, size: PageSize, frame: FrameId) {
        match size {
            PageSize::Base4K => self.l1_4k.insert(addr, size, frame),
            PageSize::Huge2M | PageSize::Giant1G => self.l1_2m.insert(addr, size, frame),
        }
        self.l2.insert(addr, size, frame);
    }

    /// Flushes every entry (CR3 write without PCID, or shootdown broadcast).
    pub fn flush(&mut self) {
        self.l1_4k.flush();
        self.l1_2m.flush();
        self.l2.flush();
    }

    /// Flushes one page from every level.
    pub fn flush_page(&mut self, addr: VirtAddr, size: PageSize) {
        self.l1_4k.flush_page(addr, size);
        self.l1_2m.flush_page(addr, size);
        self.l2.flush_page(addr, size);
    }

    /// Combined hit count across levels.
    pub fn hits(&self) -> u64 {
        self.l1_4k.hits() + self.l1_2m.hits() + self.l2.hits()
    }

    /// Misses of the last level (i.e. accesses that required a page walk).
    pub fn walk_triggering_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// Approximate total reach of the hierarchy in bytes for a page size.
    pub fn reach(&self, size: PageSize) -> u64 {
        let entries = match size {
            PageSize::Base4K => self.l1_4k.capacity() + self.l2.capacity(),
            PageSize::Huge2M | PageSize::Giant1G => self.l1_2m.capacity() + self.l2.capacity(),
        };
        entries as u64 * size.bytes()
    }
}

impl Default for TlbHierarchy {
    fn default() -> Self {
        TlbHierarchy::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(page: u64) -> VirtAddr {
        VirtAddr::new(page * 4096)
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::new(64, 4);
        tlb.insert(va(5), PageSize::Base4K, FrameId::new(50));
        assert_eq!(tlb.lookup(va(5), PageSize::Base4K), Some(FrameId::new(50)));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 0);
    }

    #[test]
    fn miss_on_empty_and_after_flush() {
        let mut tlb = Tlb::new(64, 4);
        assert_eq!(tlb.lookup(va(1), PageSize::Base4K), None);
        tlb.insert(va(1), PageSize::Base4K, FrameId::new(10));
        tlb.flush();
        assert_eq!(tlb.lookup(va(1), PageSize::Base4K), None);
        assert_eq!(tlb.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // Fully associative (1 set, 4 ways): inserting 5 pages evicts the LRU.
        let mut tlb = Tlb::new(4, 4);
        for page in 0..4 {
            tlb.insert(va(page), PageSize::Base4K, FrameId::new(page));
        }
        // Touch pages 1..4 so page 0 becomes LRU.
        for page in 1..4 {
            assert!(tlb.lookup(va(page), PageSize::Base4K).is_some());
        }
        tlb.insert(va(100), PageSize::Base4K, FrameId::new(100));
        assert_eq!(tlb.lookup(va(0), PageSize::Base4K), None);
        assert!(tlb.lookup(va(100), PageSize::Base4K).is_some());
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn flush_page_removes_only_that_page() {
        let mut tlb = Tlb::new(64, 4);
        tlb.insert(va(1), PageSize::Base4K, FrameId::new(1));
        tlb.insert(va(2), PageSize::Base4K, FrameId::new(2));
        tlb.flush_page(va(1), PageSize::Base4K);
        assert_eq!(tlb.lookup(va(1), PageSize::Base4K), None);
        assert!(tlb.lookup(va(2), PageSize::Base4K).is_some());
    }

    #[test]
    fn hierarchy_promotes_from_l2_to_l1() {
        let mut h = TlbHierarchy::new(8, 8, 64);
        h.insert(va(3), PageSize::Base4K, FrameId::new(30));
        // Evict from tiny L1 by filling it with other pages mapping to all sets.
        for page in 100..116 {
            h.l1_4k
                .insert(va(page), PageSize::Base4K, FrameId::new(page));
        }
        let (level, frame, penalty) = h.lookup(va(3), PageSize::Base4K).unwrap();
        assert_eq!(level, TlbLevel::L2);
        assert_eq!(frame, FrameId::new(30));
        assert!(penalty > 0);
        // Second lookup now hits L1.
        let (level, _, penalty) = h.lookup(va(3), PageSize::Base4K).unwrap();
        assert_eq!(level, TlbLevel::L1);
        assert_eq!(penalty, 0);
    }

    #[test]
    fn huge_pages_use_the_2m_l1() {
        let mut h = TlbHierarchy::paper_testbed();
        let addr = VirtAddr::new(0x4000_0000);
        h.insert(addr, PageSize::Huge2M, FrameId::new(512));
        assert!(h.lookup(addr, PageSize::Huge2M).is_some());
        assert_eq!(h.lookup(addr, PageSize::Base4K), None);
    }

    #[test]
    fn reach_scales_with_page_size() {
        let h = TlbHierarchy::paper_testbed();
        assert!(h.reach(PageSize::Huge2M) > 100 * h.reach(PageSize::Base4K));
        assert_eq!(h.reach(PageSize::Base4K), (64 + 1024) * 4096);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn invalid_geometry_panics() {
        let _ = Tlb::new(10, 4);
    }

    #[test]
    fn per_size_residency_tracks_inserts_evictions_and_flushes() {
        let mut tlb = Tlb::new(4, 4);
        assert!(!tlb.holds(PageSize::Base4K));
        tlb.insert(va(1), PageSize::Base4K, FrameId::new(1));
        tlb.insert(
            VirtAddr::new(0x4000_0000),
            PageSize::Huge2M,
            FrameId::new(2),
        );
        assert!(tlb.holds(PageSize::Base4K));
        assert!(tlb.holds(PageSize::Huge2M));
        assert!(!tlb.holds(PageSize::Giant1G));
        // Evicting the 4 KiB entry by filling the set with huge entries.
        for i in 1..4u64 {
            tlb.insert(
                VirtAddr::new(0x4000_0000 + (i << 21)),
                PageSize::Huge2M,
                FrameId::new(2 + i),
            );
        }
        tlb.insert(
            VirtAddr::new(0x4000_0000 + (4u64 << 21)),
            PageSize::Huge2M,
            FrameId::new(9),
        );
        assert!(!tlb.holds(PageSize::Base4K), "4 KiB entry was evicted");
        tlb.flush_page(VirtAddr::new(0x4000_0000 + (4u64 << 21)), PageSize::Huge2M);
        assert_eq!(tlb.occupancy(), 3);
        tlb.flush();
        assert!(!tlb.holds(PageSize::Huge2M));
    }

    #[test]
    fn empty_size_classes_are_skipped_without_changing_outcomes() {
        let mut h = TlbHierarchy::paper_testbed();
        // Pure 4 KiB content: 2 MiB/1 GiB lookups return None without
        // probing (observable only through the result, which must match).
        h.insert(va(3), PageSize::Base4K, FrameId::new(30));
        assert!(h.lookup(va(3), PageSize::Huge2M).is_none());
        assert!(h.lookup(va(3), PageSize::Giant1G).is_none());
        assert!(h.lookup(va(3), PageSize::Base4K).is_some());
    }
}
