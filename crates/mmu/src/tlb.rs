//! Translation lookaside buffers.

use mitosis_mem::FrameId;
use mitosis_pt::{PageSize, VirtAddr};

/// Which level of the TLB hierarchy served a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbLevel {
    /// First-level (per page-size) TLB.
    L1,
    /// Second-level (unified) TLB.
    L2,
}

/// A set-associative TLB with LRU replacement.
///
/// Entries are tagged by address-space identifier and virtual page number
/// and store the translation's first frame plus its writability; the page
/// size is a property of the TLB instance (the split L1 design) or recorded
/// per entry (unified L2).
///
/// Storage is struct-of-arrays with the ways of each set inline
/// (set-major): a probe scans a contiguous run of `u64` tags — one or two
/// cache lines — and touches the frame/recency payload only on a hit.  The
/// tag folds the ASID, virtual page number and page size together
/// (`asid << 48 | vpn << 2 | size code`, codes 1-3) with tag 0 meaning
/// "invalid", so a probe is a single word comparison per way.  ASID 0 —
/// the only ASID in single-process runs — leaves the tag identical to the
/// untagged layout.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// `sets * ways` tags; set `s` occupies `[s * ways, (s + 1) * ways)`.
    tags: Box<[u64]>,
    /// Frame payload, same layout as `tags`.
    frames: Box<[FrameId]>,
    /// Writability payload, same layout as `tags`.  A write probe hitting a
    /// read-only entry is a miss: the walker re-walks and faults, which is
    /// how copy-on-write resolution is reached.
    writable: Box<[bool]>,
    /// LRU recency payload, same layout as `tags`.
    last_used: Box<[u64]>,
    sets: usize,
    ways: usize,
    /// `sets - 1` when the set count is a power of two (every real TLB
    /// geometry), letting the set index be a mask instead of a division.
    set_mask: Option<u64>,
    /// Monotonic counter used for LRU ordering.
    tick: u64,
    hits: u64,
    misses: u64,
    /// Resident entries per size code (index = code - 1).  A probe for a
    /// size with zero resident entries cannot hit, so the hierarchy skips
    /// it — the common pure-4K access then pays two probes, not six.
    per_size: [usize; 3],
}

/// Tag 0 marks an invalid way (real tags carry a non-zero size code).
const INVALID_TAG: u64 = 0;

/// Bit position of the ASID in a tag.  A 48-bit virtual address has at most
/// a 36-bit 4 KiB VPN, which shifted by the size code occupies bits 2-38,
/// leaving the top 16 bits free for the ASID.
const ASID_SHIFT: u32 = 48;

#[inline]
fn size_code(size: PageSize) -> u64 {
    match size {
        PageSize::Base4K => 1,
        PageSize::Huge2M => 2,
        PageSize::Giant1G => 3,
    }
}

#[inline]
fn tag_of(asid: u16, vpn: u64, size: PageSize) -> u64 {
    (vpn << 2) | size_code(size) | ((asid as u64) << ASID_SHIFT)
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and `ways` ways per set.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways` or either is zero.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "TLB dimensions must be positive");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        let sets = entries / ways;
        Tlb {
            tags: vec![INVALID_TAG; entries].into_boxed_slice(),
            frames: vec![FrameId::new(0); entries].into_boxed_slice(),
            writable: vec![false; entries].into_boxed_slice(),
            last_used: vec![0; entries].into_boxed_slice(),
            sets,
            ways,
            set_mask: sets.is_power_of_two().then_some(sets as u64 - 1),
            tick: 0,
            hits: 0,
            misses: 0,
            per_size: [0; 3],
        }
    }

    /// Returns `true` if any entry of `size` is resident.
    #[inline]
    pub fn holds(&self, size: PageSize) -> bool {
        self.per_size[size_code(size) as usize - 1] > 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.tags.len()
    }

    #[inline]
    fn set_start(&self, vpn: u64) -> usize {
        let set = match self.set_mask {
            Some(mask) => (vpn & mask) as usize,
            None => (vpn % self.sets as u64) as usize,
        };
        set * self.ways
    }

    /// Looks up the translation of `addr` at page size `size` in address
    /// space `asid`.  A write probe (`is_write`) hitting a read-only entry
    /// misses, forcing a re-walk (and, for copy-on-write pages, a fault).
    ///
    /// On a hit, returns the frame and whether the entry is writable.
    #[inline]
    pub fn lookup(
        &mut self,
        asid: u16,
        addr: VirtAddr,
        size: PageSize,
        is_write: bool,
    ) -> Option<(FrameId, bool)> {
        self.tick += 1;
        let vpn = addr.page_number(size);
        let tag = tag_of(asid, vpn, size);
        let start = self.set_start(vpn);
        let set_tags = &self.tags[start..start + self.ways];
        if let Some(way) = set_tags.iter().position(|&t| t == tag) {
            let writable = self.writable[start + way];
            if !is_write || writable {
                self.last_used[start + way] = self.tick;
                self.hits += 1;
                return Some((self.frames[start + way], writable));
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a translation, evicting the LRU entry of the set if full.
    pub fn insert(
        &mut self,
        asid: u16,
        addr: VirtAddr,
        size: PageSize,
        frame: FrameId,
        writable: bool,
    ) {
        self.tick += 1;
        let vpn = addr.page_number(size);
        let tag = tag_of(asid, vpn, size);
        let start = self.set_start(vpn);
        // Refresh an existing entry, else fill the first invalid way, else
        // evict the least recently used way — one pass over the set (ticks
        // are unique, so the victim is the same one a full tick-scan picks;
        // an existing tag is unique in its set, so breaking early is safe).
        let mut matched = None;
        let mut first_invalid = None;
        let mut lru = 0;
        let mut lru_tick = u64::MAX;
        for (i, &t) in self.tags[start..start + self.ways].iter().enumerate() {
            if t == tag {
                matched = Some(i);
                break;
            }
            if t == INVALID_TAG {
                if first_invalid.is_none() {
                    first_invalid = Some(i);
                }
            } else if self.last_used[start + i] < lru_tick {
                lru_tick = self.last_used[start + i];
                lru = i;
            }
        }
        let way = start + matched.or(first_invalid).unwrap_or(lru);
        let old = self.tags[way];
        if old != INVALID_TAG {
            self.per_size[(old & 3) as usize - 1] -= 1;
        }
        self.per_size[(tag & 3) as usize - 1] += 1;
        self.tags[way] = tag;
        self.frames[way] = frame;
        self.writable[way] = writable;
        self.last_used[way] = self.tick;
    }

    /// Invalidates every entry (a full TLB flush, e.g. on CR3 write).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.last_used.fill(0);
        self.per_size = [0; 3];
    }

    /// Invalidates the entry covering `addr` at `size` in address space
    /// `asid`, if present (`invlpg`).
    pub fn flush_page(&mut self, asid: u16, addr: VirtAddr, size: PageSize) {
        let vpn = addr.page_number(size);
        let tag = tag_of(asid, vpn, size);
        let start = self.set_start(vpn);
        for way in start..start + self.ways {
            if self.tags[way] == tag {
                self.tags[way] = INVALID_TAG;
                self.last_used[way] = 0;
                self.per_size[(tag & 3) as usize - 1] -= 1;
            }
        }
    }

    /// Invalidates every entry of `size` in address space `asid` whose
    /// virtual page number falls in `[vpn_start, vpn_start + pages)`
    /// (a ranged shootdown).  Returns the number of entries invalidated.
    pub fn invalidate_range(
        &mut self,
        asid: u16,
        vpn_start: u64,
        pages: u64,
        size: PageSize,
    ) -> usize {
        let code = size_code(size);
        if self.per_size[code as usize - 1] == 0 {
            return 0;
        }
        let asid_bits = (asid as u64) << ASID_SHIFT;
        let vpn_end = vpn_start.saturating_add(pages);
        let mut removed = 0;
        for way in 0..self.tags.len() {
            let tag = self.tags[way];
            if tag == INVALID_TAG
                || (tag & 3) != code
                || (tag >> ASID_SHIFT) << ASID_SHIFT != asid_bits
            {
                continue;
            }
            let vpn = (tag >> 2) & ((1u64 << (ASID_SHIFT - 2)) - 1);
            if vpn >= vpn_start && vpn < vpn_end {
                self.tags[way] = INVALID_TAG;
                self.last_used[way] = 0;
                self.per_size[code as usize - 1] -= 1;
                removed += 1;
            }
        }
        removed
    }

    /// Number of lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

/// The per-core two-level TLB hierarchy of the paper's testbed: split 64-entry
/// L1 TLBs (4 KiB and 2 MiB) backed by a 1024-entry unified L2 (STLB).
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1_4k: Tlb,
    l1_2m: Tlb,
    l2: Tlb,
    /// Cycles charged when a lookup is served by the L2 TLB.
    l2_hit_penalty: u64,
}

impl TlbHierarchy {
    /// Creates the hierarchy with the paper's sizes (64 + 32 + 1024 entries).
    pub fn paper_testbed() -> Self {
        TlbHierarchy::new(64, 32, 1024)
    }

    /// Creates a hierarchy with explicit entry counts.
    pub fn new(l1_4k_entries: usize, l1_2m_entries: usize, l2_entries: usize) -> Self {
        TlbHierarchy {
            l1_4k: Tlb::new(l1_4k_entries, 4),
            l1_2m: Tlb::new(l1_2m_entries, 4),
            l2: Tlb::new(l2_entries, 8),
            l2_hit_penalty: 7,
        }
    }

    /// Looks up `addr`; returns the serving level, frame and extra cycles.
    ///
    /// Levels holding no entry of `size` are skipped without probing (a
    /// probe of an empty size class can never hit, so residency and
    /// promotion behaviour are unchanged).
    pub fn lookup(
        &mut self,
        asid: u16,
        addr: VirtAddr,
        size: PageSize,
        is_write: bool,
    ) -> Option<(TlbLevel, FrameId, u64)> {
        let l1 = match size {
            PageSize::Base4K => &mut self.l1_4k,
            PageSize::Huge2M | PageSize::Giant1G => &mut self.l1_2m,
        };
        if l1.holds(size) {
            if let Some((frame, _)) = l1.lookup(asid, addr, size, is_write) {
                return Some((TlbLevel::L1, frame, 0));
            }
        }
        if self.l2.holds(size) {
            if let Some((frame, writable)) = self.l2.lookup(asid, addr, size, is_write) {
                // Promote into L1.
                let l1 = match size {
                    PageSize::Base4K => &mut self.l1_4k,
                    PageSize::Huge2M | PageSize::Giant1G => &mut self.l1_2m,
                };
                l1.insert(asid, addr, size, frame, writable);
                return Some((TlbLevel::L2, frame, self.l2_hit_penalty));
            }
        }
        None
    }

    /// Installs a translation into both levels (as a walk completion does).
    pub fn insert(
        &mut self,
        asid: u16,
        addr: VirtAddr,
        size: PageSize,
        frame: FrameId,
        writable: bool,
    ) {
        match size {
            PageSize::Base4K => self.l1_4k.insert(asid, addr, size, frame, writable),
            PageSize::Huge2M | PageSize::Giant1G => {
                self.l1_2m.insert(asid, addr, size, frame, writable)
            }
        }
        self.l2.insert(asid, addr, size, frame, writable);
    }

    /// Flushes every entry (CR3 write without PCID, or shootdown broadcast).
    pub fn flush(&mut self) {
        self.l1_4k.flush();
        self.l1_2m.flush();
        self.l2.flush();
    }

    /// Flushes one page from every level.
    pub fn flush_page(&mut self, asid: u16, addr: VirtAddr, size: PageSize) {
        self.l1_4k.flush_page(asid, addr, size);
        self.l1_2m.flush_page(asid, addr, size);
        self.l2.flush_page(asid, addr, size);
    }

    /// Invalidates `[vpn_start, vpn_start + pages)` of `size` for `asid`
    /// from every level; returns the number of entries removed.
    pub fn invalidate_range(
        &mut self,
        asid: u16,
        vpn_start: u64,
        pages: u64,
        size: PageSize,
    ) -> usize {
        self.l1_4k.invalidate_range(asid, vpn_start, pages, size)
            + self.l1_2m.invalidate_range(asid, vpn_start, pages, size)
            + self.l2.invalidate_range(asid, vpn_start, pages, size)
    }

    /// Number of currently valid entries across all levels.
    pub fn occupancy(&self) -> usize {
        self.l1_4k.occupancy() + self.l1_2m.occupancy() + self.l2.occupancy()
    }

    /// Combined hit count across levels.
    pub fn hits(&self) -> u64 {
        self.l1_4k.hits() + self.l1_2m.hits() + self.l2.hits()
    }

    /// Misses of the last level (i.e. accesses that required a page walk).
    pub fn walk_triggering_misses(&self) -> u64 {
        self.l2.misses()
    }

    /// Approximate total reach of the hierarchy in bytes for a page size.
    pub fn reach(&self, size: PageSize) -> u64 {
        let entries = match size {
            PageSize::Base4K => self.l1_4k.capacity() + self.l2.capacity(),
            PageSize::Huge2M | PageSize::Giant1G => self.l1_2m.capacity() + self.l2.capacity(),
        };
        entries as u64 * size.bytes()
    }
}

impl Default for TlbHierarchy {
    fn default() -> Self {
        TlbHierarchy::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn va(page: u64) -> VirtAddr {
        VirtAddr::new(page * 4096)
    }

    /// Read lookup in ASID 0 — the pre-tagging behaviour.
    fn get(tlb: &mut Tlb, addr: VirtAddr, size: PageSize) -> Option<FrameId> {
        tlb.lookup(0, addr, size, false).map(|(frame, _)| frame)
    }

    fn put(tlb: &mut Tlb, addr: VirtAddr, size: PageSize, frame: FrameId) {
        tlb.insert(0, addr, size, frame, true);
    }

    #[test]
    fn hit_after_insert() {
        let mut tlb = Tlb::new(64, 4);
        put(&mut tlb, va(5), PageSize::Base4K, FrameId::new(50));
        assert_eq!(
            get(&mut tlb, va(5), PageSize::Base4K),
            Some(FrameId::new(50))
        );
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 0);
    }

    #[test]
    fn miss_on_empty_and_after_flush() {
        let mut tlb = Tlb::new(64, 4);
        assert_eq!(get(&mut tlb, va(1), PageSize::Base4K), None);
        put(&mut tlb, va(1), PageSize::Base4K, FrameId::new(10));
        tlb.flush();
        assert_eq!(get(&mut tlb, va(1), PageSize::Base4K), None);
        assert_eq!(tlb.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_a_set() {
        // Fully associative (1 set, 4 ways): inserting 5 pages evicts the LRU.
        let mut tlb = Tlb::new(4, 4);
        for page in 0..4 {
            put(&mut tlb, va(page), PageSize::Base4K, FrameId::new(page));
        }
        // Touch pages 1..4 so page 0 becomes LRU.
        for page in 1..4 {
            assert!(get(&mut tlb, va(page), PageSize::Base4K).is_some());
        }
        put(&mut tlb, va(100), PageSize::Base4K, FrameId::new(100));
        assert_eq!(get(&mut tlb, va(0), PageSize::Base4K), None);
        assert!(get(&mut tlb, va(100), PageSize::Base4K).is_some());
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn flush_page_removes_only_that_page() {
        let mut tlb = Tlb::new(64, 4);
        put(&mut tlb, va(1), PageSize::Base4K, FrameId::new(1));
        put(&mut tlb, va(2), PageSize::Base4K, FrameId::new(2));
        tlb.flush_page(0, va(1), PageSize::Base4K);
        assert_eq!(get(&mut tlb, va(1), PageSize::Base4K), None);
        assert!(get(&mut tlb, va(2), PageSize::Base4K).is_some());
    }

    #[test]
    fn hierarchy_promotes_from_l2_to_l1() {
        let mut h = TlbHierarchy::new(8, 8, 64);
        h.insert(0, va(3), PageSize::Base4K, FrameId::new(30), true);
        // Evict from tiny L1 by filling it with other pages mapping to all sets.
        for page in 100..116 {
            h.l1_4k
                .insert(0, va(page), PageSize::Base4K, FrameId::new(page), true);
        }
        let (level, frame, penalty) = h.lookup(0, va(3), PageSize::Base4K, false).unwrap();
        assert_eq!(level, TlbLevel::L2);
        assert_eq!(frame, FrameId::new(30));
        assert!(penalty > 0);
        // Second lookup now hits L1.
        let (level, _, penalty) = h.lookup(0, va(3), PageSize::Base4K, false).unwrap();
        assert_eq!(level, TlbLevel::L1);
        assert_eq!(penalty, 0);
    }

    #[test]
    fn huge_pages_use_the_2m_l1() {
        let mut h = TlbHierarchy::paper_testbed();
        let addr = VirtAddr::new(0x4000_0000);
        h.insert(0, addr, PageSize::Huge2M, FrameId::new(512), true);
        assert!(h.lookup(0, addr, PageSize::Huge2M, false).is_some());
        assert_eq!(h.lookup(0, addr, PageSize::Base4K, false), None);
    }

    #[test]
    fn reach_scales_with_page_size() {
        let h = TlbHierarchy::paper_testbed();
        assert!(h.reach(PageSize::Huge2M) > 100 * h.reach(PageSize::Base4K));
        assert_eq!(h.reach(PageSize::Base4K), (64 + 1024) * 4096);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn invalid_geometry_panics() {
        let _ = Tlb::new(10, 4);
    }

    #[test]
    fn per_size_residency_tracks_inserts_evictions_and_flushes() {
        let mut tlb = Tlb::new(4, 4);
        assert!(!tlb.holds(PageSize::Base4K));
        put(&mut tlb, va(1), PageSize::Base4K, FrameId::new(1));
        put(
            &mut tlb,
            VirtAddr::new(0x4000_0000),
            PageSize::Huge2M,
            FrameId::new(2),
        );
        assert!(tlb.holds(PageSize::Base4K));
        assert!(tlb.holds(PageSize::Huge2M));
        assert!(!tlb.holds(PageSize::Giant1G));
        // Evicting the 4 KiB entry by filling the set with huge entries.
        for i in 1..4u64 {
            put(
                &mut tlb,
                VirtAddr::new(0x4000_0000 + (i << 21)),
                PageSize::Huge2M,
                FrameId::new(2 + i),
            );
        }
        put(
            &mut tlb,
            VirtAddr::new(0x4000_0000 + (4u64 << 21)),
            PageSize::Huge2M,
            FrameId::new(9),
        );
        assert!(!tlb.holds(PageSize::Base4K), "4 KiB entry was evicted");
        tlb.flush_page(
            0,
            VirtAddr::new(0x4000_0000 + (4u64 << 21)),
            PageSize::Huge2M,
        );
        assert_eq!(tlb.occupancy(), 3);
        tlb.flush();
        assert!(!tlb.holds(PageSize::Huge2M));
    }

    #[test]
    fn empty_size_classes_are_skipped_without_changing_outcomes() {
        let mut h = TlbHierarchy::paper_testbed();
        // Pure 4 KiB content: 2 MiB/1 GiB lookups return None without
        // probing (observable only through the result, which must match).
        h.insert(0, va(3), PageSize::Base4K, FrameId::new(30), true);
        assert!(h.lookup(0, va(3), PageSize::Huge2M, false).is_none());
        assert!(h.lookup(0, va(3), PageSize::Giant1G, false).is_none());
        assert!(h.lookup(0, va(3), PageSize::Base4K, false).is_some());
    }

    #[test]
    fn asids_isolate_identical_virtual_pages() {
        let mut tlb = Tlb::new(64, 4);
        tlb.insert(1, va(5), PageSize::Base4K, FrameId::new(10), true);
        tlb.insert(2, va(5), PageSize::Base4K, FrameId::new(20), true);
        assert_eq!(
            tlb.lookup(1, va(5), PageSize::Base4K, false),
            Some((FrameId::new(10), true))
        );
        assert_eq!(
            tlb.lookup(2, va(5), PageSize::Base4K, false),
            Some((FrameId::new(20), true))
        );
        assert_eq!(tlb.lookup(3, va(5), PageSize::Base4K, false), None);
        // Flushing one ASID's page leaves the other's intact.
        tlb.flush_page(1, va(5), PageSize::Base4K);
        assert_eq!(tlb.lookup(1, va(5), PageSize::Base4K, false), None);
        assert!(tlb.lookup(2, va(5), PageSize::Base4K, false).is_some());
    }

    #[test]
    fn write_probe_misses_on_a_read_only_entry() {
        let mut tlb = Tlb::new(64, 4);
        tlb.insert(0, va(7), PageSize::Base4K, FrameId::new(70), false);
        // Reads still hit and report the entry as read-only.
        assert_eq!(
            tlb.lookup(0, va(7), PageSize::Base4K, false),
            Some((FrameId::new(70), false))
        );
        // A write probe misses (forcing a walk, and a fault for CoW pages).
        assert_eq!(tlb.lookup(0, va(7), PageSize::Base4K, true), None);
        assert_eq!(tlb.misses(), 1);
        // Re-inserting after CoW resolution upgrades the entry in place.
        tlb.insert(0, va(7), PageSize::Base4K, FrameId::new(71), true);
        assert_eq!(
            tlb.lookup(0, va(7), PageSize::Base4K, true),
            Some((FrameId::new(71), true))
        );
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn ranged_invalidation_removes_only_matching_entries() {
        let mut tlb = Tlb::new(64, 4);
        for page in 0..10 {
            tlb.insert(1, va(page), PageSize::Base4K, FrameId::new(page), true);
        }
        tlb.insert(2, va(4), PageSize::Base4K, FrameId::new(99), true);
        tlb.insert(
            1,
            VirtAddr::new(0x4000_0000),
            PageSize::Huge2M,
            FrameId::new(512),
            true,
        );
        // Invalidate pages 3..7 of ASID 1 at 4 KiB.
        assert_eq!(tlb.invalidate_range(1, 3, 4, PageSize::Base4K), 4);
        for page in 0..10 {
            let resident = tlb.lookup(1, va(page), PageSize::Base4K, false).is_some();
            assert_eq!(resident, !(3..7).contains(&page), "page {page}");
        }
        // The other ASID and the huge entry survive.
        assert!(tlb.lookup(2, va(4), PageSize::Base4K, false).is_some());
        assert!(tlb
            .lookup(1, VirtAddr::new(0x4000_0000), PageSize::Huge2M, false)
            .is_some());
        // Empty size classes short-circuit.
        assert_eq!(tlb.invalidate_range(1, 0, 1000, PageSize::Giant1G), 0);
    }

    #[test]
    fn hierarchy_ranged_invalidation_counts_all_levels() {
        let mut h = TlbHierarchy::paper_testbed();
        h.insert(0, va(3), PageSize::Base4K, FrameId::new(30), true);
        // Resident in L1 and L2 → two entries removed.
        assert_eq!(h.invalidate_range(0, 3, 1, PageSize::Base4K), 2);
        assert_eq!(h.occupancy(), 0);
        assert!(h.lookup(0, va(3), PageSize::Base4K, false).is_none());
    }
}
