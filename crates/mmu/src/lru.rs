//! A bounded, exact-LRU map with O(1) access and O(1) eviction.
//!
//! The MMU models (PTE-line cache, paging-structure caches) are all
//! "bounded map with exact LRU replacement".  The original implementations
//! used a `HashMap` plus a per-entry tick and found the victim with a full
//! `min_by_key` scan on every miss — O(capacity) on exactly the miss path
//! that dominates cache-thrashing workloads.  [`LruMap`] replaces both: an
//! open-addressed index (linear probing, backward-shift deletion, ≤50% load
//! factor, Fibonacci hashing — no `SipHash`, no `std::collections::HashMap`)
//! resolves keys to slots, and an index-linked doubly-linked list over the
//! slots keeps exact recency order, so hit, miss and eviction are all O(1).
//!
//! Replacement decisions are identical to the tick-based implementation:
//! ticks were unique, so "smallest tick" and "list tail" name the same
//! entry.

/// Sentinel for "no slot" in both the index table and the LRU links.
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<V> {
    key: u64,
    value: V,
    prev: u32,
    next: u32,
}

/// A fixed-capacity map from `u64` keys to values with exact LRU eviction.
#[derive(Debug, Clone)]
pub struct LruMap<V> {
    slots: Vec<Slot<V>>,
    free: Vec<u32>,
    /// Open-addressed key index: positions hold slot indices or [`NIL`].
    index: Vec<u32>,
    /// Most recently used slot.
    head: u32,
    /// Least recently used slot (the eviction victim).
    tail: u32,
    capacity: usize,
    len: usize,
}

#[inline]
fn hash(key: u64) -> u64 {
    // Fibonacci hashing: one multiply, excellent dispersion of the high
    // bits, fully deterministic.
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl<V> LruMap<V> {
    /// Creates a map holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let index_len = (capacity * 2).next_power_of_two().max(4);
        LruMap {
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            index: vec![NIL; index_len],
            head: NIL,
            tail: NIL,
            capacity,
            len: 0,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are resident.
    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of resident entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    #[inline]
    fn mask(&self) -> usize {
        self.index.len() - 1
    }

    #[inline]
    fn ideal_pos(&self, key: u64) -> usize {
        (hash(key) >> (64 - self.index.len().trailing_zeros())) as usize
    }

    /// Finds the index-table position holding `key`, if resident.
    #[inline]
    fn probe(&self, key: u64) -> Option<usize> {
        let mask = self.mask();
        let mut pos = self.ideal_pos(key);
        loop {
            let slot = self.index[pos];
            if slot == NIL {
                return None;
            }
            if self.slots[slot as usize].key == key {
                return Some(pos);
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Inserts `slot` (whose key is already set) into the index table.
    fn index_insert(&mut self, slot: u32) {
        let mask = self.mask();
        let mut pos = self.ideal_pos(self.slots[slot as usize].key);
        while self.index[pos] != NIL {
            pos = (pos + 1) & mask;
        }
        self.index[pos] = slot;
    }

    /// Vacates index position `hole`, back-shifting displaced entries so
    /// linear probing stays correct without tombstones.
    fn index_remove(&mut self, mut hole: usize) {
        let mask = self.mask();
        let mut probe = hole;
        loop {
            probe = (probe + 1) & mask;
            let slot = self.index[probe];
            if slot == NIL {
                self.index[hole] = NIL;
                return;
            }
            let ideal = self.ideal_pos(self.slots[slot as usize].key);
            // The entry at `probe` may move into the hole only if its probe
            // sequence passes through the hole (cyclic distance check).
            let dist_from_ideal = probe.wrapping_sub(ideal) & mask;
            let dist_from_hole = probe.wrapping_sub(hole) & mask;
            if dist_from_ideal >= dist_from_hole {
                self.index[hole] = slot;
                hole = probe;
            }
        }
    }

    #[inline]
    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    #[inline]
    fn push_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Looks `key` up and, on a hit, marks it most recently used.
    #[inline]
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let pos = self.probe(key)?;
        let slot = self.index[pos];
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        Some(&self.slots[slot as usize].value)
    }

    /// Returns `true` if `key` is resident, without touching recency.
    #[cfg(test)]
    pub fn contains(&self, key: u64) -> bool {
        self.probe(key).is_some()
    }

    /// Combined lookup-and-fill for "access a cache line" semantics: if
    /// `key` is resident it is touched and `true` returned; otherwise it is
    /// inserted (evicting the LRU entry if full) and `false` returned.
    ///
    /// Equivalent to `get` + `insert` on miss, but with a single index
    /// probe — this is the hot call of the PTE-line cache.
    #[inline]
    pub fn touch_or_insert(&mut self, key: u64, value: V) -> bool {
        let mask = self.mask();
        let mut pos = self.ideal_pos(key);
        loop {
            let slot = self.index[pos];
            if slot == NIL {
                break;
            }
            if self.slots[slot as usize].key == key {
                if self.head != slot {
                    self.unlink(slot);
                    self.push_front(slot);
                }
                self.slots[slot as usize].value = value;
                return true;
            }
            pos = (pos + 1) & mask;
        }
        if self.len == self.capacity {
            self.evict_and_replace(key, value);
        } else {
            // `pos` still names the empty index position the probe found.
            let slot = self.alloc_slot(key, value);
            self.index[pos] = slot;
            self.push_front(slot);
            self.len += 1;
        }
        false
    }

    /// Recycles the LRU victim's slot for `key`.
    fn evict_and_replace(&mut self, key: u64, value: V) {
        let victim = self.tail;
        let victim_pos = self
            .probe(self.slots[victim as usize].key)
            .expect("resident victim is indexed");
        self.index_remove(victim_pos);
        self.unlink(victim);
        let s = &mut self.slots[victim as usize];
        s.key = key;
        s.value = value;
        self.index_insert(victim);
        self.push_front(victim);
    }

    /// Takes a slot from the free list or grows the slab.
    fn alloc_slot(&mut self, key: u64, value: V) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.key = key;
                s.value = value;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot count fits in u32");
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                slot
            }
        }
    }

    /// Inserts or refreshes `key`, evicting the least recently used entry
    /// if the map is full.  The inserted entry becomes most recently used.
    pub fn insert(&mut self, key: u64, value: V) {
        if let Some(pos) = self.probe(key) {
            let slot = self.index[pos];
            self.slots[slot as usize].value = value;
            if self.head != slot {
                self.unlink(slot);
                self.push_front(slot);
            }
            return;
        }
        if self.len == self.capacity {
            self.evict_and_replace(key, value);
            return;
        }
        let slot = self.alloc_slot(key, value);
        self.index_insert(slot);
        self.push_front(slot);
        self.len += 1;
    }

    /// Removes every entry whose key fails `keep`, preserving the recency
    /// order of the survivors.  O(len) — meant for rare invalidations
    /// (table freed or migrated), not the access path.
    pub fn retain<F: FnMut(u64, &V) -> bool>(&mut self, mut keep: F) {
        let mut cursor = self.head;
        while cursor != NIL {
            let next = self.slots[cursor as usize].next;
            let s = &self.slots[cursor as usize];
            if !keep(s.key, &s.value) {
                let pos = self.probe(s.key).expect("resident entry is indexed");
                self.index_remove(pos);
                self.unlink(cursor);
                self.free.push(cursor);
                self.len -= 1;
            }
            cursor = next;
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.index.fill(NIL);
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_touches_and_insert_evicts_exact_lru() {
        let mut map = LruMap::new(2);
        map.insert(1, "a");
        map.insert(2, "b");
        assert_eq!(map.get(1), Some(&"a")); // 2 becomes LRU
        map.insert(3, "c"); // evicts 2
        assert!(map.contains(1));
        assert!(!map.contains(2));
        assert!(map.contains(3));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn reinserting_updates_value_and_recency() {
        let mut map = LruMap::new(2);
        map.insert(1, 10);
        map.insert(2, 20);
        map.insert(1, 11); // refresh: 2 becomes LRU
        map.insert(3, 30); // evicts 2
        assert_eq!(map.get(1), Some(&11));
        assert!(!map.contains(2));
    }

    #[test]
    fn retain_removes_matching_entries_and_keeps_order() {
        let mut map = LruMap::new(8);
        for key in 0..6u64 {
            map.insert(key, key * 10);
        }
        map.retain(|key, _| key % 2 == 0);
        assert_eq!(map.len(), 3);
        assert!(map.contains(0) && map.contains(2) && map.contains(4));
        // LRU order preserved: filling past capacity evicts the oldest
        // survivor (key 0) first.
        for key in 10..16u64 {
            map.insert(key, 0);
        }
        assert!(!map.contains(0));
        assert!(map.contains(2) && map.contains(4));
    }

    #[test]
    fn clear_resets_everything() {
        let mut map = LruMap::new(4);
        map.insert(1, ());
        map.insert(2, ());
        map.clear();
        assert!(map.is_empty());
        assert!(!map.contains(1));
        map.insert(3, ());
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn capacity_one_works() {
        let mut map = LruMap::new(1);
        map.insert(1, ());
        map.insert(2, ());
        assert!(!map.contains(1));
        assert!(map.contains(2));
        assert_eq!(map.capacity(), 1);
    }

    /// Cross-check against a naive tick-based reference model (the old
    /// implementation) over a long pseudo-random workload with heavy
    /// collisions and evictions.
    #[test]
    fn matches_tick_based_reference_model() {
        use std::collections::BTreeMap;

        struct Reference {
            map: BTreeMap<u64, (u64, u64)>, // key -> (value, tick)
            capacity: usize,
            tick: u64,
        }
        impl Reference {
            fn get(&mut self, key: u64) -> Option<u64> {
                self.tick += 1;
                let tick = self.tick;
                self.map.get_mut(&key).map(|(v, t)| {
                    *t = tick;
                    *v
                })
            }
            fn insert(&mut self, key: u64, value: u64) {
                self.tick += 1;
                if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
                    let victim = *self
                        .map
                        .iter()
                        .min_by_key(|(_, (_, t))| *t)
                        .map(|(k, _)| k)
                        .unwrap();
                    self.map.remove(&victim);
                }
                self.map.insert(key, (value, self.tick));
            }
        }

        let mut lru = LruMap::new(17);
        let mut reference = Reference {
            map: BTreeMap::new(),
            capacity: 17,
            tick: 0,
        };
        let mut state = 0x12345678u64;
        for step in 0..20_000u64 {
            // xorshift
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 37; // heavy key reuse
            match state % 3 {
                0 => assert_eq!(lru.get(key).copied(), reference.get(key), "step {step}"),
                1 => {
                    lru.insert(key, step);
                    reference.insert(key, step);
                }
                _ => {
                    let was_resident = reference.map.contains_key(&key);
                    reference.insert(key, step);
                    assert_eq!(lru.touch_or_insert(key, step), was_resident, "step {step}");
                }
            }
            assert_eq!(lru.len(), reference.map.len());
        }
    }
}
