//! Fixture self-tests: every rule is proven to fire on a minimal
//! violating workspace and to stay silent on the matching compliant one,
//! plus suppression semantics and lexer edge cases end-to-end.
//!
//! Fixtures are tiny synthetic workspace trees written to unique
//! directories under the system temp dir (process id + a counter — no
//! wall-clock involved), mirroring the real layout (`crates/<name>/src/…`,
//! `tests/…`) so path-scoped rules resolve exactly as they do in CI.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use mitosis_lint::rules::casts::TruncatingCast;
use mitosis_lint::rules::deprecated::DeprecatedReplayApi;
use mitosis_lint::rules::exhaustiveness::TraceEventExhaustiveness;
use mitosis_lint::rules::iteration::NondeterministicIteration;
use mitosis_lint::rules::panic_hygiene::PanicHygiene;
use mitosis_lint::rules::shootdown::{LayeringPair, ShootdownLayering};
use mitosis_lint::rules::wall_clock::WallClock;
use mitosis_lint::rules::Rule;
use mitosis_lint::{LintEngine, LintReport};

static FIXTURE_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique, empty fixture workspace root, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new() -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "mitosis-lint-fixture-{}-{}",
            std::process::id(),
            FIXTURE_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::create_dir_all(&root).expect("create fixture root");
        Fixture { root }
    }

    fn write(&self, relative: &str, source: &str) -> &Self {
        let path = self.root.join(relative);
        std::fs::create_dir_all(path.parent().expect("fixture file has a parent"))
            .expect("create fixture dirs");
        std::fs::write(path, source).expect("write fixture file");
        self
    }

    fn run(&self, rule: Box<dyn Rule>) -> LintReport {
        LintEngine::new(&self.root, vec![rule]).run()
    }

    fn root(&self) -> &Path {
        &self.root
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn lines_flagged(report: &LintReport, rule: &str, file: &str) -> Vec<u32> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule && d.file == file)
        .map(|d| d.line)
        .collect()
}

// --- nondeterministic-iteration ---------------------------------------

#[test]
fn iteration_rule_fires_in_listed_crates_only() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
    )
    .write(
        "crates/workloads/src/lib.rs",
        "use std::collections::HashMap;\npub fn g() -> HashMap<u32, u32> { HashMap::new() }\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap", "HashSet"],
    )));
    assert_eq!(
        lines_flagged(
            &report,
            "nondeterministic-iteration",
            "crates/sim/src/lib.rs"
        ),
        vec![1, 2, 2],
        "one diagnostic per HashMap token in the listed crate:\n{}",
        report.render_text()
    );
    assert!(
        lines_flagged(
            &report,
            "nondeterministic-iteration",
            "crates/workloads/src/lib.rs"
        )
        .is_empty(),
        "crates outside the list are not scanned"
    );
}

#[test]
fn iteration_rule_ignores_comments_and_strings() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "//! Docs may say HashMap freely.\n\
         /* block comments too: HashSet */\n\
         pub fn f() -> &'static str { \"HashMap in a string is data\" }\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap", "HashSet"],
    )));
    assert!(report.is_clean(), "{}", report.render_text());
}

// --- wall-clock-in-measured-path --------------------------------------

#[test]
fn wall_clock_rule_fires_outside_whitelist() {
    let fx = Fixture::new();
    fx.write(
        "crates/pt/src/walk.rs",
        "pub fn t() { let _ = std::time::Instant::now(); }\n\
         pub fn s() { let _ = std::time::SystemTime::now(); }\n",
    )
    .write(
        "crates/obs/src/sink.rs",
        "pub fn stamp() { let _ = std::time::Instant::now(); }\n",
    )
    .write(
        // Passing an Instant *value* is fine anywhere; only `::now` reads.
        "crates/pt/src/carry.rs",
        "pub fn hold(at: std::time::Instant) -> std::time::Instant { at }\n",
    );
    let report = fx.run(Box::new(WallClock::new(&["crates/obs/src/"])));
    assert_eq!(
        lines_flagged(
            &report,
            "wall-clock-in-measured-path",
            "crates/pt/src/walk.rs"
        ),
        vec![1, 2],
        "{}",
        report.render_text()
    );
    assert!(
        lines_flagged(
            &report,
            "wall-clock-in-measured-path",
            "crates/obs/src/sink.rs"
        )
        .is_empty(),
        "whitelisted module may read the wall clock"
    );
    assert!(
        lines_flagged(
            &report,
            "wall-clock-in-measured-path",
            "crates/pt/src/carry.rs"
        )
        .is_empty(),
        "carrying an Instant value is not a wall-clock read"
    );
}

// --- shootdown-layering -----------------------------------------------

#[test]
fn shootdown_rule_fires_outside_allowed_files() {
    let fx = Fixture::new();
    fx.write(
        "crates/vmm/src/hot.rs",
        "pub fn oops(mmu: &mut Mmu) { mmu.shootdown_all(None); }\n",
    )
    .write(
        "crates/mmu/src/mmu.rs",
        "pub fn shootdown_all(&mut self, socket: Option<u16>) { self.flush(socket); }\n",
    )
    .write(
        // Naming the function without calling it (docs aside, e.g. an
        // error message) is not a layering violation.
        "crates/vmm/src/msg.rs",
        "pub fn hint() -> &'static str { \"use shootdown_all( sparingly\" }\n",
    );
    let report = fx.run(Box::new(ShootdownLayering::new(vec![LayeringPair {
        banned_call: "shootdown_all".to_string(),
        allowed_files: vec!["crates/mmu/src/mmu.rs".to_string()],
    }])));
    assert_eq!(
        lines_flagged(&report, "shootdown-layering", "crates/vmm/src/hot.rs"),
        vec![1],
        "{}",
        report.render_text()
    );
    assert!(
        lines_flagged(&report, "shootdown-layering", "crates/mmu/src/mmu.rs").is_empty(),
        "the defining primitive is allowed"
    );
    assert!(
        lines_flagged(&report, "shootdown-layering", "crates/vmm/src/msg.rs").is_empty(),
        "a string literal naming the call is not a call site"
    );
}

// --- truncating-cast-in-encoding --------------------------------------

#[test]
fn cast_rule_fires_on_narrowing_casts_in_scoped_paths() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/enc.rs",
        "pub fn bad(x: usize) -> u16 { x as u16 }\n\
         pub fn fine(x: u16) -> u64 { x as u64 }\n\
         // A comment saying `as u16` is not a cast.\n",
    )
    .write(
        "crates/sim/src/other.rs",
        "pub fn elsewhere(x: usize) -> u16 { x as u16 }\n",
    );
    let report = fx.run(Box::new(TruncatingCast::new(
        &["crates/trace/"],
        &["u16", "u32"],
    )));
    assert_eq!(
        lines_flagged(
            &report,
            "truncating-cast-in-encoding",
            "crates/trace/src/enc.rs"
        ),
        vec![1],
        "only the narrowing cast fires, widening and comments do not:\n{}",
        report.render_text()
    );
    assert!(
        lines_flagged(
            &report,
            "truncating-cast-in-encoding",
            "crates/sim/src/other.rs"
        )
        .is_empty(),
        "paths outside the encoding scope are not checked"
    );
}

// --- panic-hygiene -----------------------------------------------------

#[test]
fn panic_rule_fires_on_unisolated_worker_panics() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/worker.rs",
        "pub fn run(job: Job) {\n\
         \x20   std::thread::spawn(move || {\n\
         \x20       let out = std::panic::catch_unwind(|| job.input.unwrap() + 1);\n\
         \x20       report(out);\n\
         \x20   });\n\
         \x20   state.lock().unwrap().push(1);\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() { Some(1).unwrap(); }\n\
         }\n",
    );
    let report = fx.run(Box::new(PanicHygiene::new(&["trace"], &[])));
    assert_eq!(
        lines_flagged(&report, "panic-hygiene", "crates/trace/src/worker.rs"),
        vec![6],
        "the unwrap inside catch_unwind and the one in tests are exempt; \
         the dispatch-side unwrap is not:\n{}",
        report.render_text()
    );
}

#[test]
fn panic_rule_flags_spawn_without_any_isolation() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/pool.rs",
        "pub fn start() {\n\
         \x20   std::thread::spawn(|| work());\n\
         }\n",
    );
    let report = fx.run(Box::new(PanicHygiene::new(&["trace"], &[])));
    assert_eq!(
        lines_flagged(&report, "panic-hygiene", "crates/trace/src/pool.rs"),
        vec![2],
        "{}",
        report.render_text()
    );
}

#[test]
fn panic_rule_ignores_non_worker_files() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/pure.rs",
        "pub fn f() -> u32 { Some(1).unwrap() }\n",
    );
    let report = fx.run(Box::new(PanicHygiene::new(&["trace"], &[])));
    assert!(
        report.is_clean(),
        "a file with no thread::spawn and not configured as worker code \
         is out of scope:\n{}",
        report.render_text()
    );
}

// --- deprecated-replay-api ---------------------------------------------

#[test]
fn deprecated_rule_extracts_names_and_flags_outside_callers() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/old.rs",
        "#[deprecated(note = \"use ReplaySession\")]\n\
         pub fn replay_one_shot(t: &Trace) -> Metrics { session().one(t) }\n\
         // `shared_name` is defined both deprecated and current: ambiguous\n\
         // at a lexical call site, so it must not be flagged.\n\
         #[deprecated]\n\
         pub fn shared_name() {}\n\
         pub fn shared_name_current() {}\n",
    )
    .write("crates/trace/src/new.rs", "pub fn shared_name() {}\n")
    .write(
        "examples/demo.rs",
        "fn main() { replay_one_shot(&t); shared_name(); }\n",
    )
    .write(
        "tests/replay_api.rs",
        "fn equivalence() { replay_one_shot(&t); }\n",
    );
    let report = fx.run(Box::new(DeprecatedReplayApi::new(
        "crates/trace/src/",
        &["tests/replay_api.rs"],
    )));
    assert_eq!(
        lines_flagged(&report, "deprecated-replay-api", "examples/demo.rs"),
        vec![1],
        "only the unambiguous deprecated name fires, once:\n{}",
        report.render_text()
    );
    assert!(
        lines_flagged(&report, "deprecated-replay-api", "tests/replay_api.rs").is_empty(),
        "the equivalence suite is allowed to call the deprecated API"
    );
}

// --- trace-event-exhaustiveness ----------------------------------------

#[test]
fn exhaustiveness_rule_finds_unapplied_variants_and_orphan_codes() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/format.rs",
        "pub(crate) mod event_code {\n\
         \x20   pub const ALPHA: u64 = 1;\n\
         \x20   pub const ORPHAN: u64 = 2;\n\
         }\n\
         pub enum TraceEvent {\n\
         \x20   Alpha(u64),\n\
         \x20   Beta { sockets: u64 },\n\
         }\n\
         fn encode(e: TraceEvent) -> u64 { event_code::ALPHA }\n",
    )
    .write(
        "crates/trace/src/capture.rs",
        "fn emit() { push(TraceEvent::Alpha(1)); push(TraceEvent::Beta { sockets: 3 }); }\n",
    )
    .write(
        "crates/trace/src/replay.rs",
        "fn apply() { handle(TraceEvent::Alpha(1)); }\n",
    );
    let rule = TraceEventExhaustiveness::new(
        "crates/trace/src/format.rs",
        "crates/trace/src/capture.rs",
        "crates/trace/src/replay.rs",
        "TraceEvent",
        "event_code",
    );
    let report = fx.run(Box::new(rule));
    let flagged = lines_flagged(
        &report,
        "trace-event-exhaustiveness",
        "crates/trace/src/format.rs",
    );
    assert_eq!(
        flagged,
        vec![3, 7],
        "ORPHAN (line 3) is never used by encode/decode and Beta (line 7) \
         is never applied by replay:\n{}",
        report.render_text()
    );
}

#[test]
fn exhaustiveness_rule_is_silent_when_tables_agree() {
    let fx = Fixture::new();
    fx.write(
        "crates/trace/src/format.rs",
        "pub(crate) mod event_code {\n\
         \x20   pub const ALPHA: u64 = 1;\n\
         }\n\
         pub enum TraceEvent { Alpha(u64) }\n\
         fn encode() -> u64 { event_code::ALPHA }\n",
    )
    .write(
        "crates/trace/src/capture.rs",
        "fn emit() { push(TraceEvent::Alpha(1)); }\n",
    )
    .write(
        "crates/trace/src/replay.rs",
        "fn apply() { handle(TraceEvent::Alpha(1)); }\n",
    );
    let rule = TraceEventExhaustiveness::new(
        "crates/trace/src/format.rs",
        "crates/trace/src/capture.rs",
        "crates/trace/src/replay.rs",
        "TraceEvent",
        "event_code",
    );
    let report = fx.run(Box::new(rule));
    assert!(report.is_clean(), "{}", report.render_text());
}

// --- suppressions -------------------------------------------------------

#[test]
fn reasoned_allow_suppresses_the_next_code_line() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "// mitosis-lint: allow(nondeterministic-iteration, reason = \"never iterated; point lookups only\")\n\
         use std::collections::HashMap;\n\
         pub fn f() {}\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap"],
    )));
    assert!(report.is_clean(), "{}", report.render_text());
    assert_eq!(report.suppressions_used, 1);
}

#[test]
fn reasonless_allow_does_not_suppress_and_is_itself_flagged() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "// mitosis-lint: allow(nondeterministic-iteration)\n\
         use std::collections::HashMap;\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap"],
    )));
    assert_eq!(
        lines_flagged(
            &report,
            "nondeterministic-iteration",
            "crates/sim/src/lib.rs"
        ),
        vec![2],
        "the underlying violation still fires:\n{}",
        report.render_text()
    );
    assert_eq!(
        lines_flagged(&report, "suppression-syntax", "crates/sim/src/lib.rs"),
        vec![1],
        "and the reason-less allow is reported:\n{}",
        report.render_text()
    );
    assert_eq!(report.suppressions_used, 0);
}

#[test]
fn allow_naming_an_unknown_rule_is_flagged() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "// mitosis-lint: allow(no-such-rule, reason = \"typo\")\n\
         pub fn f() {}\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap"],
    )));
    assert_eq!(
        lines_flagged(&report, "suppression-syntax", "crates/sim/src/lib.rs"),
        vec![1],
        "{}",
        report.render_text()
    );
}

#[test]
fn allow_does_not_leak_past_the_next_code_line() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "// mitosis-lint: allow(nondeterministic-iteration, reason = \"first only\")\n\
         use std::collections::HashMap;\n\
         use std::collections::HashSet;\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap", "HashSet"],
    )));
    assert_eq!(
        lines_flagged(
            &report,
            "nondeterministic-iteration",
            "crates/sim/src/lib.rs"
        ),
        vec![3],
        "line 2 is covered, line 3 is not:\n{}",
        report.render_text()
    );
}

// --- lexer edge cases through the engine --------------------------------

#[test]
fn raw_strings_and_nested_comments_never_fire() {
    let fx = Fixture::new();
    fx.write(
        "crates/sim/src/lib.rs",
        "pub fn f() -> &'static str {\n\
         \x20   /* outer /* nested HashMap */ still comment HashSet */\n\
         \x20   r#\"raw HashMap with \"quotes\" inside\"#\n\
         }\n\
         pub fn g() -> char { 'H' } // lifetimes vs chars: &'static above\n",
    );
    let report = fx.run(Box::new(NondeterministicIteration::new(
        &["sim"],
        &["HashMap", "HashSet"],
    )));
    assert!(report.is_clean(), "{}", report.render_text());
}

// --- default rule set over fixtures -------------------------------------

#[test]
fn workspace_default_rules_run_together() {
    let fx = Fixture::new();
    fx.write(
        "crates/vmm/src/bad.rs",
        "use std::collections::HashMap;\n\
         pub fn oops(mmu: &mut Mmu) { mmu.shootdown_all(None); }\n",
    );
    let report = LintEngine::workspace_default(fx.root()).run();
    assert_eq!(
        lines_flagged(
            &report,
            "nondeterministic-iteration",
            "crates/vmm/src/bad.rs"
        ),
        vec![1]
    );
    assert_eq!(
        lines_flagged(&report, "shootdown-layering", "crates/vmm/src/bad.rs"),
        vec![2]
    );
    // The exhaustiveness rule reports its configured files as missing in
    // this synthetic tree rather than passing silently.
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == "trace-event-exhaustiveness"),
        "{}",
        report.render_text()
    );
}
