//! `deprecated-replay-api`: no deprecated replay entry points outside
//! `tests/replay_api.rs`.
//!
//! PR 8 left 15 deprecated wrappers delegating to `ReplaySession`, pinned
//! by a clippy `-D deprecated` pass over examples/tests/benches.  That
//! pass has blind spots this rule closes: it only covers targets the
//! invocation lists (a new bench target added without updating CI is
//! never checked), and an `#[allow(deprecated)]` anywhere silences it
//! wholesale with no reason recorded.  The rule extracts the deprecated
//! function names straight from the trace crate's source — no hardcoded
//! list to rot — and flags any reference to an unambiguous one outside
//! the crate that defines them and the one equivalence-test file allowed
//! to call them.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "deprecated-replay-api";

/// Flags references to `#[deprecated]` trace-crate functions.
pub struct DeprecatedReplayApi {
    /// Path prefix whose `#[deprecated] fn`s define the banned set (their
    /// own crate may keep referencing them — the wrappers live there).
    definition_prefix: String,
    /// Files outside the prefix still allowed to call them.
    allowed_files: Vec<String>,
}

impl DeprecatedReplayApi {
    /// Builds the rule for a definition prefix and its allowed callers.
    pub fn new(definition_prefix: &str, allowed_files: &[&str]) -> Self {
        DeprecatedReplayApi {
            definition_prefix: definition_prefix.to_string(),
            allowed_files: allowed_files.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The shipped configuration: deprecated entry points are defined in
    /// `crates/trace/src`, and only `tests/replay_api.rs` (the
    /// old-vs-new equivalence suite) may still call them.
    pub fn workspace_default() -> Self {
        DeprecatedReplayApi::new("crates/trace/src/", &["tests/replay_api.rs"])
    }
}

impl Rule for DeprecatedReplayApi {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_workspace(&self, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
        // Pass 1: extract deprecated fn names, and every fn name, from the
        // defining crate.  A name defined by *both* a deprecated and a
        // non-deprecated fn (`replay` is deprecated on `TraceReplayer`
        // but current on `ReplaySession`) is ambiguous at a lexical call
        // site, so it is excluded rather than over-reported.
        let mut deprecated_names: BTreeSet<String> = BTreeSet::new();
        let mut deprecated_def_sites: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (file_index, file) in files.iter().enumerate() {
            if !file.path.starts_with(&self.definition_prefix) {
                continue;
            }
            for (index, token) in file.code_tokens() {
                if !token.is_punct('#') {
                    continue;
                }
                let Some((open, t_open)) = file.next_code_token(index + 1) else {
                    continue;
                };
                if !t_open.is_punct('[') {
                    continue;
                }
                let Some((head, t_head)) = file.next_code_token(open + 1) else {
                    continue;
                };
                if !t_head.is_ident("deprecated") {
                    continue;
                }
                if let Some(name_at) = fn_name_after_attrs(file, head) {
                    deprecated_names.insert(file.tokens[name_at].text.clone());
                    deprecated_def_sites.insert((file_index, name_at));
                }
            }
        }
        let mut plain_defs: BTreeSet<String> = BTreeSet::new();
        for (file_index, file) in files.iter().enumerate() {
            if !file.path.starts_with(&self.definition_prefix) {
                continue;
            }
            for (index, token) in file.code_tokens() {
                if !token.is_ident("fn") {
                    continue;
                }
                let Some((name_at, name)) = file.next_code_token(index + 1) else {
                    continue;
                };
                if name.kind == TokenKind::Ident
                    && !deprecated_def_sites.contains(&(file_index, name_at))
                {
                    plain_defs.insert(name.text.clone());
                }
            }
        }
        let banned: BTreeSet<&String> = deprecated_names
            .iter()
            .filter(|n| !plain_defs.contains(*n))
            .collect();
        if banned.is_empty() {
            return;
        }

        // Pass 2: flag references anywhere outside the defining crate and
        // the allowed files.
        for file in files {
            if file.path.starts_with(&self.definition_prefix)
                || self.allowed_files.iter().any(|f| f == &file.path)
            {
                continue;
            }
            for (_, token) in file.code_tokens() {
                if token.kind == TokenKind::Ident && banned.contains(&token.text) {
                    diags.push(Diagnostic::new(
                        NAME,
                        &file.path,
                        token.line,
                        format!(
                            "deprecated replay entry point `{}`: migrate to the \
                             `ReplaySession`/`ReplayRequest` API (its `#[deprecated]` note \
                             names the replacement)",
                            token.text,
                        ),
                    ));
                }
            }
        }
    }
}

/// From an attribute head token, skips to the end of that attribute, over
/// any further attributes and modifiers, and returns the token index of
/// the following `fn`'s name (if the attributed item is a function).
fn fn_name_after_attrs(file: &SourceFile, head: usize) -> Option<usize> {
    // Find the `]` closing the attribute the head sits in.
    let mut depth = 1i64; // We are just past the `[`.
    let mut cursor = head;
    loop {
        cursor += 1;
        let token = file.tokens.get(cursor)?;
        if token.is_punct('[') {
            depth += 1;
        } else if token.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
    }
    // Skip further attributes, visibility and other modifiers until `fn`.
    loop {
        let (next, token) = file.next_code_token(cursor + 1)?;
        if token.is_punct('#') {
            let (open, t_open) = file.next_code_token(next + 1)?;
            if !t_open.is_punct('[') {
                return None;
            }
            let mut d = 0i64;
            let mut c = open;
            loop {
                let t = file.tokens.get(c)?;
                if t.is_punct('[') {
                    d += 1;
                } else if t.is_punct(']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                c += 1;
            }
            cursor = c;
            continue;
        }
        if token.is_ident("fn") {
            let (name_at, name) = file.next_code_token(next + 1)?;
            return (name.kind == TokenKind::Ident).then_some(name_at);
        }
        // Modifiers that may precede `fn` (visibility, unsafety, …).
        const MODIFIERS: &[&str] = &["pub", "crate", "unsafe", "async", "const", "extern"];
        if MODIFIERS.iter().any(|m| token.is_ident(m)) {
            cursor = next;
            continue;
        }
        if token.is_punct('(') {
            // `pub(crate)` and friends.
            let mut d = 0i64;
            let mut c = next;
            loop {
                let t = file.tokens.get(c)?;
                if t.is_punct('(') {
                    d += 1;
                } else if t.is_punct(')') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                c += 1;
            }
            cursor = c;
            continue;
        }
        // The deprecated item is not a function (struct, trait, …):
        // out of scope for a call-site rule.
        return None;
    }
}
