//! `trace-event-exhaustiveness`: the wire-event table stays in sync
//! across format, capture and replay.
//!
//! A new `TraceEvent` variant is three changes: its wire code in
//! `format.rs`, a capture site that emits it, and a replay arm that
//! applies it.  Forgetting the third compiles fine (replay matches are
//! written over grouped arms, not `match event { .. }` exhaustively at
//! every site) and produces a trace that replays *differently* from the
//! live run — the worst failure class this repo has.  The rule checks,
//! cross-file: every enum variant in `format.rs` is named in both
//! `capture.rs` and `replay.rs` as `TraceEvent::<Variant>`, and every
//! constant in the `event_code` module is actually used by the
//! encode/decode paths.

use std::collections::BTreeSet;

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "trace-event-exhaustiveness";

/// Cross-checks the trace event set across format/capture/replay.
pub struct TraceEventExhaustiveness {
    format_file: String,
    capture_file: String,
    replay_file: String,
    enum_name: String,
    code_mod: String,
}

impl TraceEventExhaustiveness {
    /// Builds the rule for explicit file paths and names.
    pub fn new(
        format_file: &str,
        capture_file: &str,
        replay_file: &str,
        enum_name: &str,
        code_mod: &str,
    ) -> Self {
        TraceEventExhaustiveness {
            format_file: format_file.to_string(),
            capture_file: capture_file.to_string(),
            replay_file: replay_file.to_string(),
            enum_name: enum_name.to_string(),
            code_mod: code_mod.to_string(),
        }
    }

    /// The shipped configuration for `mitosis-trace`.
    pub fn workspace_default() -> Self {
        TraceEventExhaustiveness::new(
            "crates/trace/src/format.rs",
            "crates/trace/src/capture.rs",
            "crates/trace/src/replay.rs",
            "TraceEvent",
            "event_code",
        )
    }
}

impl Rule for TraceEventExhaustiveness {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_workspace(&self, files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
        let find = |path: &str| files.iter().find(|f| f.path == path);
        let Some(format) = find(&self.format_file) else {
            diags.push(Diagnostic::new(
                NAME,
                &self.format_file,
                1,
                "configured format file not found — update the trace-event-exhaustiveness paths",
            ));
            return;
        };
        let (capture, replay) = (find(&self.capture_file), find(&self.replay_file));
        for (file, path) in [(&capture, &self.capture_file), (&replay, &self.replay_file)] {
            if file.is_none() {
                diags.push(Diagnostic::new(
                    NAME,
                    path,
                    1,
                    "configured file not found — update the trace-event-exhaustiveness paths",
                ));
            }
        }
        let (Some(capture), Some(replay)) = (capture, replay) else {
            return;
        };

        let variants = enum_variants(format, &self.enum_name);
        if variants.is_empty() {
            diags.push(Diagnostic::new(
                NAME,
                &format.path,
                1,
                format!(
                    "enum `{}` not found — the event table moved?",
                    self.enum_name
                ),
            ));
        }
        let capture_refs = qualified_refs(capture, &self.enum_name);
        let replay_refs = qualified_refs(replay, &self.enum_name);
        for (variant, line) in &variants {
            for (refs, file) in [(&capture_refs, capture), (&replay_refs, replay)] {
                if !refs.contains(variant) {
                    diags.push(Diagnostic::new(
                        NAME,
                        &format.path,
                        *line,
                        format!(
                            "`{}::{}` is never named in {} — a wire event must be emitted by \
                             capture and applied by replay, or the trace replays differently \
                             from the live run",
                            self.enum_name, variant, file.path,
                        ),
                    ));
                }
            }
        }

        // Every named wire code must be used beyond its definition: an
        // orphaned constant means an encode or decode arm went back to a
        // bare literal (or was deleted without its code being retired).
        for (constant, line) in mod_consts(format, &self.code_mod) {
            let uses = format
                .code_tokens()
                .filter(|(_, t)| t.is_ident(&constant))
                .count();
            if uses < 2 {
                diags.push(Diagnostic::new(
                    NAME,
                    &format.path,
                    line,
                    format!(
                        "event code constant `{constant}` is defined but never used — \
                         encode/decode must match on the named code, not a bare literal",
                    ),
                ));
            }
        }
    }
}

/// `(variant, line)` pairs of `enum name {{ … }}` in `file`: identifiers
/// at bracket depth 1 inside the enum braces that start uppercase.
fn enum_variants(file: &SourceFile, name: &str) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let tokens = &file.tokens;
    let mut open = None;
    for (index, token) in file.code_tokens() {
        if token.is_ident("enum") {
            if let Some((name_at, t_name)) = file.next_code_token(index + 1) {
                if t_name.is_ident(name) {
                    if let Some((brace, t_brace)) = file.next_code_token(name_at + 1) {
                        if t_brace.is_punct('{') {
                            open = Some(brace);
                            break;
                        }
                    }
                }
            }
        }
    }
    let Some(open) = open else {
        return variants;
    };
    let mut depth = 0i64;
    for token in &tokens[open..] {
        if token.is_comment() {
            continue;
        }
        match token.text.as_str() {
            "{" | "(" | "[" if token.kind == TokenKind::Punct => depth += 1,
            "}" | ")" | "]" if token.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if depth == 1
                    && token.kind == TokenKind::Ident
                    && token.text.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    variants.push((token.text.clone(), token.line));
                }
            }
        }
    }
    variants
}

/// The set of identifiers `X` referenced as `scope::X` in `file`.
fn qualified_refs(file: &SourceFile, scope: &str) -> BTreeSet<String> {
    let mut refs = BTreeSet::new();
    for (index, token) in file.code_tokens() {
        if !token.is_ident(scope) {
            continue;
        }
        if let Some((c1, t1)) = file.next_code_token(index + 1) {
            if t1.is_punct(':') {
                if let Some((c2, t2)) = file.next_code_token(c1 + 1) {
                    if t2.is_punct(':') {
                        if let Some((_, t3)) = file.next_code_token(c2 + 1) {
                            if t3.kind == TokenKind::Ident {
                                refs.insert(t3.text.clone());
                            }
                        }
                    }
                }
            }
        }
    }
    refs
}

/// `(name, line)` of every `const` declared directly in `mod name {{ … }}`.
fn mod_consts(file: &SourceFile, mod_name: &str) -> Vec<(String, u32)> {
    let mut consts = Vec::new();
    let mut open = None;
    for (index, token) in file.code_tokens() {
        if token.is_ident("mod") {
            if let Some((name_at, t_name)) = file.next_code_token(index + 1) {
                if t_name.is_ident(mod_name) {
                    if let Some((brace, t_brace)) = file.next_code_token(name_at + 1) {
                        if t_brace.is_punct('{') {
                            open = Some(brace);
                            break;
                        }
                    }
                }
            }
        }
    }
    let Some(open) = open else {
        return consts;
    };
    let mut depth = 0i64;
    let mut index = open;
    while index < file.tokens.len() {
        let token = &file.tokens[index];
        if !token.is_comment() && token.kind == TokenKind::Punct {
            match token.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        if depth == 1 && token.is_ident("const") {
            if let Some((_, name)) = file.next_code_token(index + 1) {
                if name.kind == TokenKind::Ident {
                    consts.push((name.text.clone(), name.line));
                }
            }
        }
        index += 1;
    }
    consts
}
