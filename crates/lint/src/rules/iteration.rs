//! `nondeterministic-iteration`: no `HashMap`/`HashSet` in
//! simulation-state crates.
//!
//! The whole trace/replay contract rests on the simulation being a pure
//! function of its inputs: replaying a trace must reproduce the live
//! run's `RunMetrics` bit-for-bit.  `std` hash collections iterate in an
//! order that depends on `RandomState`, so *any* iteration over one in
//! state that feeds metrics (allocator scans, frame enumeration, replica
//! walks, lane bookkeeping) silently breaks that contract — and whether a
//! map that is only point-looked-up today grows an iteration tomorrow is
//! exactly the kind of drift a runtime test cannot see coming.  The rule
//! therefore bans the *types* in the listed crates; genuinely
//! order-insensitive uses carry a reasoned `allow`.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "nondeterministic-iteration";

/// Bans hash-ordered collections in simulation-state crates.
pub struct NondeterministicIteration {
    crates: Vec<String>,
    banned: Vec<String>,
}

impl NondeterministicIteration {
    /// Bans `banned` type names in `crates` (names as under `crates/`).
    pub fn new(crates: &[&str], banned: &[&str]) -> Self {
        NondeterministicIteration {
            crates: crates.iter().map(|s| s.to_string()).collect(),
            banned: banned.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The shipped configuration: every crate whose state the simulation
    /// or its capture/replay path can observe, including each crate's
    /// tests (a hash-ordered oracle makes a test nondeterministic too).
    pub fn workspace_default() -> Self {
        NondeterministicIteration::new(
            &["sim", "mem", "mmu", "pt", "vmm", "trace"],
            &["HashMap", "HashSet"],
        )
    }
}

impl Rule for NondeterministicIteration {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        let Some(crate_name) = self.crates.iter().find(|c| file.in_crate(c)) else {
            return;
        };
        for (_, token) in file.code_tokens() {
            if self.banned.iter().any(|b| token.is_ident(b)) {
                diags.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    token.line,
                    format!(
                        "`{}` in simulation-state crate `{}`: hash iteration order is \
                         nondeterministic and can feed metrics — use `BTreeMap`/`BTreeSet`/`Vec`, \
                         or allow with a reason proving order is never observed",
                        token.text, crate_name,
                    ),
                ));
            }
        }
    }
}
