//! `shootdown-layering`: configurable banned-call/allowed-module pairs,
//! generalising the PR 9 source-scan.
//!
//! The TLB-consistency layer funnels every invalidation through
//! `MappingTx`/`ShootdownPlan` so that one policy point
//! (`mitosis_sim::shootdown`) decides between Broadcast and Ranged
//! flushes.  A stray `shootdown_all(` call anywhere else silently
//! re-opens the scattered-flush topology PR 9 closed — it stays
//! bit-identical under Broadcast, so only a source check catches it
//! before Ranged mode diverges.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "shootdown-layering";

/// One banned call with the files allowed to make (or define) it.
pub struct LayeringPair {
    /// Function name whose call sites are restricted.
    pub banned_call: String,
    /// Workspace-relative files allowed to contain `banned_call(`.
    pub allowed_files: Vec<String>,
}

/// Enforces banned-call/allowed-module layering pairs.
pub struct ShootdownLayering {
    pairs: Vec<LayeringPair>,
}

impl ShootdownLayering {
    /// Builds the rule from explicit pairs.
    pub fn new(pairs: Vec<LayeringPair>) -> Self {
        ShootdownLayering { pairs }
    }

    /// The shipped configuration, verbatim from the PR 9 scan:
    /// `shootdown_all`/`flush_all` may only appear in the MMU primitives
    /// that define them and the one sim module that owns both flush
    /// policies.
    pub fn workspace_default() -> Self {
        let consistency_layer = || {
            vec![
                // The primitives themselves: definitions plus their
                // internal full-plan fast paths.
                "crates/mmu/src/mmu.rs".to_string(),
                "crates/mmu/src/pte_cache.rs".to_string(),
                // The single policy point that turns ShootdownPlans (or
                // the Broadcast-mode full flush) into MMU work.
                "crates/sim/src/shootdown.rs".to_string(),
            ]
        };
        ShootdownLayering::new(vec![
            LayeringPair {
                banned_call: "shootdown_all".to_string(),
                allowed_files: consistency_layer(),
            },
            LayeringPair {
                banned_call: "flush_all".to_string(),
                allowed_files: consistency_layer(),
            },
        ])
    }
}

impl Rule for ShootdownLayering {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        for pair in &self.pairs {
            if pair.allowed_files.iter().any(|f| f == &file.path) {
                continue;
            }
            for (index, token) in file.code_tokens() {
                if !token.is_ident(&pair.banned_call) {
                    continue;
                }
                // Call or definition site: the name followed by `(`.
                let called = matches!(
                    file.next_code_token(index + 1),
                    Some((_, next)) if next.is_punct('(')
                );
                if called {
                    diags.push(Diagnostic::new(
                        NAME,
                        &file.path,
                        token.line,
                        format!(
                            "`{}(` outside its consistency layer ({}): route invalidations \
                             through MappingTx/ShootdownPlan instead",
                            pair.banned_call,
                            pair.allowed_files.join(", "),
                        ),
                    ));
                }
            }
        }
    }
}
