//! `truncating-cast-in-encoding`: no bare `as u16`/`as u32` in the trace
//! crate.
//!
//! PR 5 fixed ~10 silent `as u16` socket casts that could write a
//! wrong-but-checksummed trace (the checksum covers the *encoded* bytes,
//! so truncation before encoding is undetectable downstream) and
//! introduced the checked `socket_index_u16`/`checked_socket_u16`
//! helpers.  This rule keeps the class extinct: every narrowing cast in
//! `crates/trace` either routes through a checked helper or carries a
//! reasoned `allow` proving its operand is bounded.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "truncating-cast-in-encoding";

/// Bans bare narrowing casts in encoding crates.
pub struct TruncatingCast {
    path_prefixes: Vec<String>,
    targets: Vec<String>,
}

impl TruncatingCast {
    /// Bans `as <target>` for each target type under the path prefixes.
    pub fn new(path_prefixes: &[&str], targets: &[&str]) -> Self {
        TruncatingCast {
            path_prefixes: path_prefixes.iter().map(|s| s.to_string()).collect(),
            targets: targets.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The shipped configuration: the whole trace crate (format, capture,
    /// replay *and* the helpers tests build traces with — a test fixture
    /// encoding a truncated socket is still a wrong trace).
    pub fn workspace_default() -> Self {
        TruncatingCast::new(&["crates/trace/"], &["u16", "u32"])
    }
}

impl Rule for TruncatingCast {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !self.path_prefixes.iter().any(|p| file.path.starts_with(p)) {
            return;
        }
        for (index, token) in file.code_tokens() {
            if !token.is_ident("as") {
                continue;
            }
            let Some((_, target)) = file.next_code_token(index + 1) else {
                continue;
            };
            if self.targets.iter().any(|t| target.is_ident(t)) {
                diags.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    token.line,
                    format!(
                        "bare `as {}` in the trace crate can silently truncate a wire value \
                         into a wrong-but-checksummed trace; use `socket_index_u16`/\
                         `checked_socket_u16`-style checked conversions, or allow with a \
                         reason proving the operand is bounded",
                        target.text,
                    ),
                ));
            }
        }
    }
}
