//! `wall-clock-in-measured-path`: `Instant::now`/`SystemTime` only in
//! whitelisted wall-reporting modules.
//!
//! The simulation's notion of time is modelled cycles; host wall time is
//! only ever *reported* (setup/measured wall splits, bench harness
//! timings, observability span stamps).  A wall-clock read inside a
//! measured path couples metrics to the host — the exact failure the
//! golden tests cannot attribute when it happens, because the metrics
//! still *look* plausible.  Everything outside the whitelist must model
//! time through `RunMetrics` cycles instead.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "wall-clock-in-measured-path";

/// Restricts wall-clock reads to wall-reporting modules.
pub struct WallClock {
    /// Path prefixes (workspace-relative) where wall-clock reads are the
    /// module's documented job.
    allowed_prefixes: Vec<String>,
}

impl WallClock {
    /// Allows wall-clock reads under the given path prefixes.
    pub fn new(allowed_prefixes: &[&str]) -> Self {
        WallClock {
            allowed_prefixes: allowed_prefixes.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The shipped whitelist: the replay wall-split reporters, the
    /// observability sinks (span stamps are wall time by design), the
    /// bench harness shim and the bench crate itself.
    pub fn workspace_default() -> Self {
        WallClock::new(&[
            "crates/trace/src/session.rs",
            "crates/trace/src/replay.rs",
            "crates/obs/src/",
            "crates/compat/criterion/",
            "crates/bench/",
        ])
    }
}

impl Rule for WallClock {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !file.path.starts_with("crates/") {
            return; // Root tests/examples are drivers, not measured paths.
        }
        if self
            .allowed_prefixes
            .iter()
            .any(|p| file.path.starts_with(p))
        {
            return;
        }
        for (index, token) in file.code_tokens() {
            let flagged = if token.is_ident("Instant") {
                // `Instant::now` is the read; passing an `Instant` value
                // around is fine, so require the `::now` to follow.
                matches!(
                    file.next_code_token(index + 1),
                    Some((colon1, t1)) if t1.is_punct(':')
                        && matches!(
                            file.next_code_token(colon1 + 1),
                            Some((colon2, t2)) if t2.is_punct(':')
                                && matches!(
                                    file.next_code_token(colon2 + 1),
                                    Some((_, t3)) if t3.is_ident("now")
                                )
                        )
                )
            } else {
                // Every `SystemTime` entry point is a wall read.
                token.is_ident("SystemTime")
            };
            if flagged {
                diags.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    token.line,
                    format!(
                        "`{}` read outside the wall-reporting whitelist: measured paths must \
                         model time in simulated cycles, not host wall time",
                        if token.is_ident("Instant") {
                            "Instant::now"
                        } else {
                            "SystemTime"
                        },
                    ),
                ));
            }
        }
    }
}
