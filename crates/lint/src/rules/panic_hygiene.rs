//! `panic-hygiene`: panics in worker-thread code stay behind the
//! `catch_unwind` isolation boundary.
//!
//! PR 7 made the lane-group driver survive worker panics: a panic is
//! caught at the pool boundary, recorded on the report, and the request
//! degrades to a serial re-run with metrics still bit-identical.  That
//! only holds for panics *inside* the `catch_unwind` scope — an
//! `unwrap()` on the dispatch side of a worker file kills the whole
//! session instead of one job.  The rule finds files that spawn worker
//! threads (plus explicitly configured dispatch modules) and requires
//! every panic site in them to sit inside a `catch_unwind(...)` argument
//! or carry a reasoned `allow`; a worker file with no `catch_unwind` at
//! all is flagged at its spawn sites.

use crate::diag::Diagnostic;
use crate::rules::Rule;
use crate::source::SourceFile;

/// Canonical rule name.
pub const NAME: &str = "panic-hygiene";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Requires catch_unwind isolation around panics in worker-thread code.
pub struct PanicHygiene {
    crates: Vec<String>,
    worker_files: Vec<String>,
}

impl PanicHygiene {
    /// Checks the given crates, treating `worker_files` as worker code
    /// even when they do not themselves call `thread::spawn`.
    pub fn new(crates: &[&str], worker_files: &[&str]) -> Self {
        PanicHygiene {
            crates: crates.iter().map(|s| s.to_string()).collect(),
            worker_files: worker_files.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The shipped configuration: the replay stack's crates, with
    /// `session.rs` listed explicitly — it builds the closures the pool
    /// workers execute, so its dispatch code is worker code even though
    /// the `thread::spawn` lives in `pool.rs`.
    pub fn workspace_default() -> Self {
        PanicHygiene::new(&["trace", "sim"], &["crates/trace/src/session.rs"])
    }
}

impl Rule for PanicHygiene {
    fn name(&self) -> &'static str {
        NAME
    }

    fn check_file(&self, file: &SourceFile, diags: &mut Vec<Diagnostic>) {
        if !self.crates.iter().any(|c| file.in_crate(c)) {
            return;
        }
        // `thread::spawn` outside test code marks a worker file.
        let mut spawn_sites = Vec::new();
        for (index, token) in file.code_tokens() {
            if !token.is_ident("thread") || file.is_test_code(index) {
                continue;
            }
            let spawn_follows = matches!(
                file.next_code_token(index + 1),
                Some((c1, t1)) if t1.is_punct(':') && matches!(
                    file.next_code_token(c1 + 1),
                    Some((c2, t2)) if t2.is_punct(':') && matches!(
                        file.next_code_token(c2 + 1),
                        Some((_, t3)) if t3.is_ident("spawn")
                    )
                )
            );
            if spawn_follows {
                spawn_sites.push(token.line);
            }
        }
        let is_worker =
            !spawn_sites.is_empty() || self.worker_files.iter().any(|f| f == &file.path);
        if !is_worker {
            return;
        }
        if !file.mentions_catch_unwind() && !spawn_sites.is_empty() {
            for line in &spawn_sites {
                diags.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    *line,
                    "worker threads spawned without any catch_unwind isolation: a panicking \
                     job would kill the pool instead of failing one request",
                ));
            }
        }
        for (index, token) in file.code_tokens() {
            if file.is_test_code(index) || file.in_catch_unwind(index) {
                continue;
            }
            let Some((_, next)) = file.next_code_token(index + 1) else {
                continue;
            };
            let is_macro_panic =
                PANIC_MACROS.iter().any(|m| token.is_ident(m)) && next.is_punct('!');
            let is_method_panic =
                PANIC_METHODS.iter().any(|m| token.is_ident(m)) && next.is_punct('(');
            if is_macro_panic || is_method_panic {
                diags.push(Diagnostic::new(
                    NAME,
                    &file.path,
                    token.line,
                    format!(
                        "`{}{}` in worker-thread code outside catch_unwind isolation: a panic \
                         here escapes the PR 7 recovery path — return an error, or allow with \
                         a reason proving unreachability",
                        token.text,
                        if is_macro_panic { "!" } else { "()" },
                    ),
                ));
            }
        }
    }
}
