//! The rule set.  Every rule exists because a bug of its class either
//! shipped in an earlier PR or is one refactor away from shipping:
//!
//! * [`nondeterministic-iteration`](iteration) — replay reproduces live
//!   `RunMetrics` bit-for-bit only if nothing in the simulated state
//!   iterates in hash order.
//! * [`wall-clock-in-measured-path`](wall_clock) — `Instant::now` in a
//!   measured path silently turns deterministic metrics into host timings.
//! * [`shootdown-layering`](shootdown) — the PR 9 invariant: TLB
//!   invalidation goes through `MappingTx`/`ShootdownPlan`, never through
//!   scattered `shootdown_all` calls.
//! * [`truncating-cast-in-encoding`](casts) — the PR 5 bug class: a bare
//!   `as u16` on a wire value produces a wrong-but-checksummed trace.
//! * [`panic-hygiene`](panic_hygiene) — worker-thread panics must be
//!   caught at the `catch_unwind` isolation boundary (PR 7's design).
//! * [`deprecated-replay-api`](deprecated) — the PR 8 migration: nothing
//!   outside `tests/replay_api.rs` speaks the deprecated one-shot API.
//! * [`trace-event-exhaustiveness`](exhaustiveness) — every wire event
//!   defined in `format.rs` is produced by capture and consumed by replay.

use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub mod casts;
pub mod deprecated;
pub mod exhaustiveness;
pub mod iteration;
pub mod panic_hygiene;
pub mod shootdown;
pub mod wall_clock;

/// A lint rule.  Per-file rules implement [`Rule::check_file`];
/// cross-file rules implement [`Rule::check_workspace`], which runs once
/// after every file has been lexed.
pub trait Rule {
    /// The rule's name, as used in diagnostics and `allow(...)` comments.
    fn name(&self) -> &'static str;

    /// Checks one file.
    fn check_file(&self, _file: &SourceFile, _diags: &mut Vec<Diagnostic>) {}

    /// Checks the whole workspace (runs after all per-file checks).
    fn check_workspace(&self, _files: &[SourceFile], _diags: &mut Vec<Diagnostic>) {}
}

/// Every canonical rule name, including the engine's own
/// `suppression-syntax` rule.  `allow(...)` comments naming anything else
/// are rejected, so a typo in a suppression cannot silently disable it.
pub const RULE_NAMES: &[&str] = &[
    iteration::NAME,
    wall_clock::NAME,
    shootdown::NAME,
    casts::NAME,
    panic_hygiene::NAME,
    deprecated::NAME,
    exhaustiveness::NAME,
    SUPPRESSION_SYNTAX,
];

/// Rule name under which malformed suppressions are reported.  Not
/// suppressible — a broken allow cannot allow itself.
pub const SUPPRESSION_SYNTAX: &str = "suppression-syntax";

/// The shipped workspace rule set with its canonical configuration — the
/// single source of truth shared by the `mitosis-lint` binary,
/// `tests/lint_clean.rs`, and the layering check in
/// `tests/shootdown_consistency.rs`.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(iteration::NondeterministicIteration::workspace_default()),
        Box::new(wall_clock::WallClock::workspace_default()),
        Box::new(shootdown::ShootdownLayering::workspace_default()),
        Box::new(casts::TruncatingCast::workspace_default()),
        Box::new(panic_hygiene::PanicHygiene::workspace_default()),
        Box::new(deprecated::DeprecatedReplayApi::workspace_default()),
        Box::new(exhaustiveness::TraceEventExhaustiveness::workspace_default()),
    ]
}
