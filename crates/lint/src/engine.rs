//! The engine: walks the workspace, lexes every `.rs` file once, runs
//! the rule set, applies inline suppressions, and reports.

use std::path::{Path, PathBuf};

use crate::diag::{Diagnostic, LintReport};
use crate::rules::{Rule, RULE_NAMES, SUPPRESSION_SYNTAX};
use crate::source::SourceFile;

/// A configured lint run over one workspace tree.
pub struct LintEngine {
    root: PathBuf,
    rules: Vec<Box<dyn Rule>>,
}

impl LintEngine {
    /// An engine over `root` with an explicit rule set.
    pub fn new(root: impl Into<PathBuf>, rules: Vec<Box<dyn Rule>>) -> LintEngine {
        LintEngine {
            root: root.into(),
            rules,
        }
    }

    /// An engine over `root` with the shipped workspace rule set.
    pub fn workspace_default(root: impl Into<PathBuf>) -> LintEngine {
        LintEngine::new(root, crate::rules::default_rules())
    }

    /// Walks, lexes, checks, suppresses, reports.
    ///
    /// # Panics
    ///
    /// Panics if the workspace root cannot be read — the linter has
    /// nothing useful to do without sources, and a silent empty run would
    /// read as a pass.
    pub fn run(&self) -> LintReport {
        let files = self.load_files();
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            for file in &files {
                rule.check_file(file, &mut diagnostics);
            }
            rule.check_workspace(&files, &mut diagnostics);
        }

        // Apply suppressions: an allow matches by rule name and covers its
        // own line plus the next code-bearing line.  Reason-less allows
        // never suppress (and are reported below).
        let mut suppressions_used = 0usize;
        for file in &files {
            for suppression in &file.suppressions {
                if suppression.reason.is_none() {
                    continue;
                }
                let before = diagnostics.len();
                diagnostics.retain(|d| {
                    !(d.file == file.path
                        && d.rule == suppression.rule
                        && (d.line == suppression.line || d.line == suppression.applies_to))
                });
                if diagnostics.len() < before {
                    suppressions_used += 1;
                }
            }
        }

        // Malformed suppressions and unknown rule names are violations of
        // the engine's own rule, and cannot be suppressed.
        for file in &files {
            for (line, problem) in &file.suppression_errors {
                diagnostics.push(Diagnostic::new(
                    SUPPRESSION_SYNTAX,
                    &file.path,
                    *line,
                    problem.clone(),
                ));
            }
            for suppression in &file.suppressions {
                if !RULE_NAMES.contains(&suppression.rule.as_str()) {
                    diagnostics.push(Diagnostic::new(
                        SUPPRESSION_SYNTAX,
                        &file.path,
                        suppression.line,
                        format!(
                            "allow({}) names an unknown rule — known rules: {}",
                            suppression.rule,
                            RULE_NAMES.join(", "),
                        ),
                    ));
                }
            }
        }

        diagnostics.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        LintReport {
            diagnostics,
            files_scanned: files.len(),
            suppressions_used,
            rule_names: self.rules.iter().map(|r| r.name().to_string()).collect(),
        }
    }

    /// Every `.rs` file under the root, skipping build output and VCS
    /// metadata, as lexed [`SourceFile`]s with workspace-relative paths.
    fn load_files(&self) -> Vec<SourceFile> {
        let mut paths = Vec::new();
        collect_rs_files(&self.root, &mut paths);
        paths.sort();
        paths
            .into_iter()
            .map(|path| {
                let source = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                let relative = path
                    .strip_prefix(&self.root)
                    .expect("collected under root")
                    .to_string_lossy()
                    .replace('\\', "/");
                SourceFile::parse(relative, &source)
            })
            .collect()
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()));
    for entry in entries {
        let path = entry
            .unwrap_or_else(|e| panic!("dir entry in {}: {e}", dir.display()))
            .path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let Some(name) = name else { continue };
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
