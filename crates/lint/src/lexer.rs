//! A hand-rolled Rust lexer, just deep enough for source linting.
//!
//! The rules in this crate match on *token* streams, never on raw text, so
//! a `HashMap` inside a doc comment, a `shootdown_all(` inside a string
//! literal, or a `panic!` inside `r#"…"#` never produces a diagnostic —
//! the exact false positives a `grep`-based scan cannot avoid.  The lexer
//! therefore has to get the hard token boundaries right:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * plain, byte, and raw strings (`r"…"`, `r#"…"#` with any number of
//!   hashes, `b"…"`, `br#"…"#`) including escape sequences,
//! * character literals vs. lifetimes (`'a'` is a literal, `'a` is not),
//! * raw identifiers (`r#match`).
//!
//! It deliberately does **not** parse: no expressions, no items, no type
//! grammar.  Downstream passes that need structure (test-module spans,
//! `catch_unwind` argument spans, enum variant lists) do their own bracket
//! matching over the token stream, which the lexer makes sound by
//! guaranteeing that every `{`/`}`/`(`/`)`/`[`/`]` token really is one.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `as`, `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (without a closing quote).
    Lifetime,
    /// Numeric literal, loosely lexed (`0x1f`, `1_000u64`, `0.5`, `1..4`
    /// comes out as one token — fine for linting, wrong for compiling).
    Number,
    /// String literal of any flavour (plain, byte, raw); `text` holds the
    /// raw source slice including quotes and hashes.
    Str,
    /// Character or byte literal (`'a'`, `b'\0'`).
    Char,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct,
    /// `// …` comment, `text` includes the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested), `text` includes delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexeme class.
    pub kind: TokenKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line the token *starts* on.
    pub line: u32,
}

impl Token {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    /// Current 1-based line.
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.chars.clone().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut ahead = self.chars.clone();
        ahead.next();
        ahead.next()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.next();
        if ch == Some('\n') {
            self.line += 1;
        }
        ch
    }
}

fn is_ident_start(ch: char) -> bool {
    ch.is_alphabetic() || ch == '_'
}

fn is_ident_continue(ch: char) -> bool {
    ch.is_alphanumeric() || ch == '_'
}

/// Lexes `source` into a token stream.  Unterminated literals or comments
/// are tolerated (the remainder of the file becomes part of the token):
/// the linter must never panic on the code it scans — rustc reports the
/// syntax error, the lint run just sees fewer tokens.
pub fn lex(source: &str) -> Vec<Token> {
    let mut cursor = Cursor {
        chars: source.chars(),
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(ch) = cursor.peek() {
        let line = cursor.line;
        match ch {
            _ if ch.is_whitespace() => {
                cursor.bump();
            }
            '/' if cursor.peek2() == Some('/') => {
                tokens.push(lex_line_comment(&mut cursor, line));
            }
            '/' if cursor.peek2() == Some('*') => {
                tokens.push(lex_block_comment(&mut cursor, line));
            }
            '"' => tokens.push(lex_string(&mut cursor, line, String::new())),
            '\'' => tokens.push(lex_quote(&mut cursor, line)),
            _ if is_ident_start(ch) => tokens.push(lex_ident_or_prefixed(&mut cursor, line)),
            _ if ch.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cursor.peek() {
                    if is_ident_continue(c) || c == '.' {
                        text.push(c);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text,
                    line,
                });
            }
            _ => {
                cursor.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: ch.to_string(),
                    line,
                });
            }
        }
    }
    tokens
}

fn lex_line_comment(cursor: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cursor.peek() {
        if ch == '\n' {
            break;
        }
        text.push(ch);
        cursor.bump();
    }
    Token {
        kind: TokenKind::LineComment,
        text,
        line,
    }
}

fn lex_block_comment(cursor: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    // Consume the opening `/*`.
    text.push(cursor.bump().expect("peeked '/'"));
    text.push(cursor.bump().expect("peeked '*'"));
    let mut depth = 1u32;
    while depth > 0 {
        match cursor.peek() {
            Some('/') if cursor.peek2() == Some('*') => {
                text.push(cursor.bump().expect("peeked"));
                text.push(cursor.bump().expect("peeked"));
                depth += 1;
            }
            Some('*') if cursor.peek2() == Some('/') => {
                text.push(cursor.bump().expect("peeked"));
                text.push(cursor.bump().expect("peeked"));
                depth -= 1;
            }
            Some(ch) => {
                text.push(ch);
                cursor.bump();
            }
            None => break, // Unterminated: tolerate.
        }
    }
    Token {
        kind: TokenKind::BlockComment,
        text,
        line,
    }
}

/// Lexes a plain or byte string starting at the opening `"`; `text`
/// already holds any consumed prefix (`b`).
fn lex_string(cursor: &mut Cursor, line: u32, mut text: String) -> Token {
    text.push(cursor.bump().expect("peeked '\"'"));
    while let Some(ch) = cursor.bump() {
        text.push(ch);
        match ch {
            '\\' => {
                if let Some(escaped) = cursor.bump() {
                    text.push(escaped);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
    }
}

/// Lexes a raw (possibly byte) string: cursor sits on the first `#` or `"`
/// after the `r`/`br` prefix already captured in `text`.
fn lex_raw_string(cursor: &mut Cursor, line: u32, mut text: String) -> Token {
    let mut hashes = 0usize;
    while cursor.peek() == Some('#') {
        text.push(cursor.bump().expect("peeked '#'"));
        hashes += 1;
    }
    if cursor.peek() == Some('"') {
        text.push(cursor.bump().expect("peeked '\"'"));
        loop {
            match cursor.bump() {
                Some('"') => {
                    text.push('"');
                    // A closing quote counts only when followed by the same
                    // number of hashes as the opener.
                    let mut ahead = cursor.chars.clone();
                    if (0..hashes).all(|_| ahead.next() == Some('#')) {
                        for _ in 0..hashes {
                            text.push(cursor.bump().expect("peeked '#'"));
                        }
                        break;
                    }
                }
                Some(ch) => text.push(ch),
                None => break, // Unterminated: tolerate.
            }
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
    }
}

/// Lexes either a character literal or a lifetime, starting at `'`.
fn lex_quote(cursor: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    text.push(cursor.bump().expect("peeked '\''"));
    match cursor.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            while let Some(ch) = cursor.bump() {
                text.push(ch);
                match ch {
                    '\\' => {
                        if let Some(escaped) = cursor.bump() {
                            text.push(escaped);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
            }
        }
        Some(ch) if is_ident_start(ch) => {
            // `'a'` is a char literal, `'a`/`'static` a lifetime: consume
            // the identifier, then look for the closing quote.
            while let Some(c) = cursor.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cursor.bump();
                } else {
                    break;
                }
            }
            if cursor.peek() == Some('\'') {
                text.push(cursor.bump().expect("peeked '\''"));
                Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                }
            } else {
                Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                }
            }
        }
        Some(_) => {
            // `'+'`, `'0'`, `' '`: a single char then the closing quote.
            if let Some(ch) = cursor.bump() {
                text.push(ch);
            }
            if cursor.peek() == Some('\'') {
                text.push(cursor.bump().expect("peeked '\''"));
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
            }
        }
        None => Token {
            kind: TokenKind::Punct,
            text,
            line,
        },
    }
}

/// Lexes an identifier, dispatching to string lexers when it turns out to
/// be a `r"…"` / `b"…"` / `br#"…"#` prefix or an `r#ident` raw identifier.
fn lex_ident_or_prefixed(cursor: &mut Cursor, line: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cursor.peek() {
        if is_ident_continue(ch) {
            text.push(ch);
            cursor.bump();
        } else {
            break;
        }
    }
    match (text.as_str(), cursor.peek()) {
        ("r" | "br", Some('"')) | ("r" | "br", Some('#')) => {
            // `r#ident` is a raw identifier, not a raw string: only treat
            // `#` as a string opener when a `"` follows the hash run.
            let mut ahead = cursor.chars.clone();
            let mut next = ahead.next();
            while next == Some('#') {
                next = ahead.next();
            }
            if next == Some('"') || cursor.peek() == Some('"') {
                return lex_raw_string(cursor, line, text);
            }
            if text == "r" && cursor.peek() == Some('#') {
                cursor.bump(); // the '#'
                let mut raw = String::new();
                while let Some(c) = cursor.peek() {
                    if is_ident_continue(c) {
                        raw.push(c);
                        cursor.bump();
                    } else {
                        break;
                    }
                }
                return Token {
                    kind: TokenKind::Ident,
                    text: raw,
                    line,
                };
            }
            Token {
                kind: TokenKind::Ident,
                text,
                line,
            }
        }
        ("b", Some('"')) => lex_string(cursor, line, text),
        ("b", Some('\'')) => {
            let quoted = lex_quote(cursor, line);
            Token {
                kind: TokenKind::Char,
                text: format!("{text}{}", quoted.text),
                line,
            }
        }
        _ => Token {
            kind: TokenKind::Ident,
            text,
            line,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_hide_identifiers() {
        let source = "// HashMap in a comment\nlet x = 1; /* HashSet\n still HashSet */ real";
        assert_eq!(idents(source), ["let", "x", "real"]);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let source = "/* outer /* inner */ still_comment */ visible";
        assert_eq!(idents(source), ["visible"]);
        let tokens = lex(source);
        assert_eq!(tokens[0].kind, TokenKind::BlockComment);
        assert!(tokens[0].text.contains("still_comment"));
    }

    #[test]
    fn strings_hide_identifiers_and_track_lines() {
        let source = "let s = \"shootdown_all(\"; after";
        assert_eq!(idents(source), ["let", "s", "after"]);
        let multi = "let s = \"two\nlines\"; next";
        let tokens = lex(multi);
        let next = tokens.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!(next.line, 2);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let source = r####"let s = r#"contains "quote" and HashMap"#; tail"####;
        assert_eq!(idents(source), ["let", "s", "tail"]);
        let two = "r##\"one \"# not done\"##; done";
        assert_eq!(idents(two), ["done"]);
        let byte_raw = "br#\"bytes\"#; after_bytes";
        assert_eq!(idents(byte_raw), ["after_bytes"]);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let source = "let c: char = 'a'; fn f<'a>(x: &'a str) -> &'static str { x }";
        let tokens = lex(source);
        let chars: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'a'"]);
        let lifetimes: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static"]);
    }

    #[test]
    fn escaped_char_literals() {
        let source = r"let q = '\''; let b = '\\'; let u = '\u{1F600}'; end";
        assert_eq!(idents(source), ["let", "q", "let", "b", "let", "u", "end"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let source = "let r#match = 1; r#fn";
        assert_eq!(idents(source), ["let", "match", "fn"]);
    }

    #[test]
    fn byte_literals() {
        let source = "let b = b'x'; let s = b\"HashMap\"; tail";
        assert_eq!(idents(source), ["let", "b", "let", "s", "tail"]);
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let source = "first\nsecond\n\nfourth";
        let tokens = lex(source);
        let lines: Vec<u32> = tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        assert!(!lex("let s = \"never closed").is_empty());
        assert!(!lex("/* never closed").is_empty());
        assert!(!lex("let c = 'x").is_empty());
        assert!(!lex("r#\"never closed").is_empty());
    }
}
