//! `mitosis-lint` — workspace static analysis for the determinism and
//! layering invariants.
//!
//! Every PR since the trace subsystem landed rests on one contract:
//! replaying a trace reproduces the live run's `RunMetrics`
//! bit-for-bit.  The runtime side of that contract is enforced by golden
//! tests and proptests; this crate enforces the *source* side — the code
//! properties that, when violated, produce bugs the runtime suite can
//! only see after they ship (hash-ordered iteration feeding metrics,
//! silent truncating casts on wire values, wall-clock reads in measured
//! paths, stray TLB flushes bypassing the consistency layer, panics
//! escaping worker isolation, deprecated replay entry points, and
//! wire-event tables drifting out of sync between capture and replay).
//!
//! The pass is built on a hand-rolled, string/char/comment-aware Rust
//! [lexer] (no `syn` — the build environment has no registry
//! access), a [rule engine](engine) with per-crate scoping, and inline
//! suppressions:
//!
//! ```text
//! // mitosis-lint: allow(<rule>, reason = "why this site is sound")
//! ```
//!
//! A suppression covers its own line and the next code-bearing line, and
//! **must** carry a reason — a reason-less allow is itself a violation.
//!
//! Run it as a binary (`cargo run -p mitosis-lint`), from the tier-1
//! suite (`tests/lint_clean.rs` asserts the workspace is violation-free),
//! or embed a single rule (`tests/shootdown_consistency.rs` runs the
//! layering rule through the same engine).  Diagnostics render as
//! `file:line` text, as JSON lines when `MITOSIS_LINT_JSON` names an
//! output file, and as a `$GITHUB_STEP_SUMMARY` markdown table inside CI.

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, LintReport};
pub use engine::LintEngine;
pub use source::{SourceFile, Suppression};
