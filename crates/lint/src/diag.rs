//! Diagnostics and the report the engine hands back: plain `file:line`
//! text, machine-readable JSON lines (`MITOSIS_LINT_JSON`), and a
//! `$GITHUB_STEP_SUMMARY` markdown table in the `scripts/bench_gate`
//! style.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the rule that fired (`nondeterministic-iteration`, …).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation, one sentence.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        rule: impl Into<String>,
        file: impl Into<String>,
        line: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.into(),
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The outcome of one engine run.
#[derive(Debug)]
pub struct LintReport {
    /// Violations that survived suppression, sorted by file/line/rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Suppressions that actually silenced at least one diagnostic.
    pub suppressions_used: usize,
    /// Names of the rules that ran.
    pub rule_names: Vec<String>,
}

impl LintReport {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report as plain text, one `file:line` diagnostic per
    /// line plus a one-line summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for diagnostic in &self.diagnostics {
            out.push_str(&diagnostic.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "mitosis-lint: {} violation(s), {} file(s) scanned, {} rule(s), {} suppression(s) honoured\n",
            self.diagnostics.len(),
            self.files_scanned,
            self.rule_names.len(),
            self.suppressions_used,
        ));
        out
    }

    /// Renders the report as JSON lines: one `{"type":"violation",…}`
    /// object per diagnostic and a trailing `{"type":"summary",…}`.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{{\"type\":\"violation\",\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}\n",
                escape_json(&d.rule),
                escape_json(&d.file),
                d.line,
                escape_json(&d.message),
            ));
        }
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"violations\":{},\"files\":{},\"rules\":{},\"suppressions_used\":{}}}\n",
            self.diagnostics.len(),
            self.files_scanned,
            self.rule_names.len(),
            self.suppressions_used,
        ));
        out
    }

    /// Renders the markdown block appended to `$GITHUB_STEP_SUMMARY`:
    /// a table of violations (or a pass line) with a bold verdict, the
    /// same shape `scripts/bench_gate` writes for benchmarks.
    pub fn render_step_summary(&self) -> String {
        let mut out = String::from("### mitosis-lint\n\n");
        if self.diagnostics.is_empty() {
            out.push_str(&format!(
                "**mitosis-lint: pass** — 0 violations across {} file(s), {} rule(s), {} suppression(s) honoured\n",
                self.files_scanned,
                self.rule_names.len(),
                self.suppressions_used,
            ));
            return out;
        }
        out.push_str("| location | rule | message |\n|---|---|---|\n");
        for d in &self.diagnostics {
            out.push_str(&format!(
                "| `{}:{}` | `{}` | {} |\n",
                d.file,
                d.line,
                d.rule,
                d.message.replace('|', "\\|"),
            ));
        }
        out.push_str(&format!(
            "\n**mitosis-lint: FAIL** — {} violation(s) across {} file(s)\n",
            self.diagnostics.len(),
            self.files_scanned,
        ));
        out
    }
}

fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(diags: Vec<Diagnostic>) -> LintReport {
        LintReport {
            diagnostics: diags,
            files_scanned: 3,
            suppressions_used: 1,
            rule_names: vec!["a".into(), "b".into()],
        }
    }

    #[test]
    fn text_and_json_escape_and_summarise() {
        let r = report(vec![Diagnostic::new(
            "rule-x",
            "crates/x/src/lib.rs",
            7,
            "bad \"thing\"",
        )]);
        assert!(r
            .render_text()
            .contains("crates/x/src/lib.rs:7: [rule-x] bad \"thing\""));
        let json = r.render_json();
        assert!(json.contains("\"message\":\"bad \\\"thing\\\"\""));
        assert!(json.contains("\"type\":\"summary\",\"violations\":1"));
    }

    #[test]
    fn step_summary_has_verdict_line() {
        assert!(report(vec![])
            .render_step_summary()
            .contains("**mitosis-lint: pass**"));
        let failing = report(vec![Diagnostic::new("r", "f.rs", 1, "m")]);
        assert!(failing
            .render_step_summary()
            .contains("**mitosis-lint: FAIL**"));
        assert!(failing
            .render_step_summary()
            .contains("| `f.rs:1` | `r` | m |"));
    }
}
