//! The `mitosis-lint` binary: lint the workspace, print `file:line`
//! diagnostics, optionally write JSON (`MITOSIS_LINT_JSON`) and a GitHub
//! step-summary table, exit non-zero on violations.

use std::path::PathBuf;
use std::process::ExitCode;

use mitosis_lint::LintEngine;

fn main() -> ExitCode {
    // Workspace root: first CLI argument, or this crate's grandparent.
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .expect("canonicalize workspace root")
        });
    let report = LintEngine::workspace_default(&root).run();
    print!("{}", report.render_text());

    if let Ok(path) = std::env::var("MITOSIS_LINT_JSON") {
        if !path.is_empty() {
            std::fs::write(&path, report.render_json())
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
        }
    }
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !path.is_empty() {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .unwrap_or_else(|e| panic!("open {path}: {e}"));
            file.write_all(report.render_step_summary().as_bytes())
                .unwrap_or_else(|e| panic!("append {path}: {e}"));
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
