//! A lexed source file plus the derived structure rules need: inline
//! suppressions, `#[cfg(test)]`/`#[test]` spans, and `catch_unwind`
//! argument spans.

use crate::lexer::{lex, Token, TokenKind};

/// An inline suppression comment:
///
/// ```text
/// // mitosis-lint: allow(rule-name, reason = "why this is fine")
/// ```
///
/// A suppression covers diagnostics on its own line and on the next line
/// that carries code (doc comments and blank lines in between are skipped,
/// so an allow may sit above a doc block).  A suppression **without** a
/// reason never suppresses anything — it is itself reported as a
/// `suppression-syntax` violation, so every allow in the tree carries its
/// justification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule name inside `allow(...)`.
    pub rule: String,
    /// The quoted reason string, if present and non-empty.
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Line of the next code-bearing token after the comment (equal to
    /// `line` when code precedes the comment on the same line).
    pub applies_to: u32,
}

/// A source file, lexed once, with every derived span rules consume.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (`crates/mmu/src/tlb.rs`).
    pub path: String,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// Suppression comments that failed to parse (missing reason, bad
    /// syntax after the `mitosis-lint:` marker): `(line, problem)`.
    pub suppression_errors: Vec<(u32, String)>,
    /// Token-index ranges (inclusive start, exclusive end) covering items
    /// gated on `#[cfg(test)]` or annotated `#[test]`.
    test_spans: Vec<(usize, usize)>,
    /// Token-index ranges covering the parenthesised argument of each
    /// `catch_unwind(...)` call.
    catch_unwind_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `source` and computes all derived spans.
    pub fn parse(path: impl Into<String>, source: &str) -> SourceFile {
        let tokens = lex(source);
        let (suppressions, suppression_errors) = parse_suppressions(&tokens);
        let test_spans = compute_test_spans(&tokens);
        let catch_unwind_spans = compute_call_arg_spans(&tokens, "catch_unwind");
        SourceFile {
            path: path.into(),
            tokens,
            suppressions,
            suppression_errors,
            test_spans,
            catch_unwind_spans,
        }
    }

    /// Whether the file lives under `crates/<name>/`.
    pub fn in_crate(&self, name: &str) -> bool {
        self.path.starts_with(&format!("crates/{name}/"))
    }

    /// Whether the token at `index` is inside test-gated code, or the
    /// whole file is a test target (`tests/…` at the workspace root or a
    /// crate's `tests/` directory).
    pub fn is_test_code(&self, index: usize) -> bool {
        self.is_test_file() || span_contains(&self.test_spans, index)
    }

    /// Whether the whole file is a test target.
    pub fn is_test_file(&self) -> bool {
        self.path.starts_with("tests/") || self.path.contains("/tests/")
    }

    /// Whether the token at `index` sits inside the argument parentheses
    /// of a `catch_unwind(...)` call.
    pub fn in_catch_unwind(&self, index: usize) -> bool {
        span_contains(&self.catch_unwind_spans, index)
    }

    /// Whether the file contains `catch_unwind` at all (outside comments
    /// and strings).
    pub fn mentions_catch_unwind(&self) -> bool {
        !self.catch_unwind_spans.is_empty()
            || self.tokens.iter().any(|t| t.is_ident("catch_unwind"))
    }

    /// Iterator over `(index, token)` skipping comments.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
    }

    /// The next non-comment token at or after `index`.
    pub fn next_code_token(&self, index: usize) -> Option<(usize, &Token)> {
        self.tokens[index..]
            .iter()
            .enumerate()
            .map(|(offset, t)| (index + offset, t))
            .find(|(_, t)| !t.is_comment())
    }
}

fn span_contains(spans: &[(usize, usize)], index: usize) -> bool {
    spans
        .iter()
        .any(|&(start, end)| start <= index && index < end)
}

const MARKER: &str = "mitosis-lint:";

fn parse_suppressions(tokens: &[Token]) -> (Vec<Suppression>, Vec<(u32, String)>) {
    let mut suppressions = Vec::new();
    let mut errors = Vec::new();
    for (index, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let body = token
            .text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => {
                // Code already on the comment's line (a trailing comment)
                // anchors the suppression there; otherwise it applies to
                // the next code-bearing line.
                let own_line = tokens[..index]
                    .iter()
                    .rev()
                    .take_while(|t| t.line == token.line)
                    .any(|t| !t.is_comment());
                let applies_to = if own_line {
                    token.line
                } else {
                    tokens[index + 1..]
                        .iter()
                        .find(|t| !t.is_comment())
                        .map(|t| t.line)
                        .unwrap_or(token.line)
                };
                if reason.is_none() {
                    errors.push((
                        token.line,
                        format!("allow({rule}) is missing a reason — write `allow({rule}, reason = \"…\")`"),
                    ));
                }
                suppressions.push(Suppression {
                    rule,
                    reason,
                    line: token.line,
                    applies_to,
                });
            }
            Err(problem) => errors.push((token.line, problem)),
        }
    }
    (suppressions, errors)
}

/// Parses `allow(rule)` / `allow(rule, reason = "…")`, returning the rule
/// name and the reason (if present and non-empty).
fn parse_allow(text: &str) -> Result<(String, Option<String>), String> {
    let Some(inner) = text.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(<rule>, reason = \"…\")` after `{MARKER}`, found `{text}`"
        ));
    };
    let Some(inner) = inner.strip_suffix(')') else {
        return Err("unterminated `allow(` — missing closing parenthesis".to_string());
    };
    let (rule, rest) = match inner.split_once(',') {
        Some((rule, rest)) => (rule.trim(), rest.trim()),
        None => (inner.trim(), ""),
    };
    if rule.is_empty()
        || !rule
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
    {
        return Err(format!("`{rule}` is not a valid rule name"));
    }
    if rest.is_empty() {
        return Ok((rule.to_string(), None));
    }
    let Some(value) = rest.strip_prefix("reason").map(|v| v.trim_start()) else {
        return Err(format!(
            "expected `reason = \"…\"` after the rule name, found `{rest}`"
        ));
    };
    let Some(value) = value.strip_prefix('=').map(|v| v.trim()) else {
        return Err("expected `=` after `reason`".to_string());
    };
    let quoted = value.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
    match quoted {
        Some(reason) if !reason.trim().is_empty() => {
            Ok((rule.to_string(), Some(reason.to_string())))
        }
        Some(_) => Ok((rule.to_string(), None)), // Empty reason = no reason.
        None => Err("the reason must be a quoted string".to_string()),
    }
}

/// Finds token spans of items gated on `#[cfg(test)]` (or `#[cfg(any/all
/// (... test ...))]`) and functions annotated `#[test]`.  The span runs
/// from the attribute to the end of the item body (matched braces) or its
/// terminating semicolon.
fn compute_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut index = 0;
    while index < tokens.len() {
        if let Some(attr_end) = test_attr_end(tokens, index) {
            let body_end = item_end(tokens, attr_end);
            spans.push((index, body_end));
            index = body_end;
        } else {
            index += 1;
        }
    }
    spans
}

/// If `index` starts a `#[cfg(test)]`-like or `#[test]` attribute, returns
/// the token index just past its closing `]`.
fn test_attr_end(tokens: &[Token], index: usize) -> Option<usize> {
    if !tokens[index].is_punct('#') {
        return None;
    }
    let open = next_code(tokens, index + 1)?;
    if !tokens[open].is_punct('[') {
        return None;
    }
    let close = match_bracket(tokens, open, '[', ']')?;
    let head = next_code(tokens, open + 1)?;
    let is_test = if tokens[head].is_ident("test") {
        // Plain `#[test]` (optionally with arguments we don't inspect).
        true
    } else if tokens[head].is_ident("cfg") {
        tokens[head + 1..close].iter().any(|t| t.is_ident("test"))
    } else {
        false
    };
    is_test.then_some(close + 1)
}

/// The end of the item starting after an attribute: skips further
/// attributes, then runs to the matching `}` of the first body brace, or
/// just past the first `;` when the item has no body.
fn item_end(tokens: &[Token], mut index: usize) -> usize {
    // Skip any further attributes (`#[…]`) and comments.
    loop {
        let Some(next) = next_code(tokens, index) else {
            return tokens.len();
        };
        if tokens[next].is_punct('#') {
            if let Some(open) = next_code(tokens, next + 1) {
                if tokens[open].is_punct('[') {
                    if let Some(close) = match_bracket(tokens, open, '[', ']') {
                        index = close + 1;
                        continue;
                    }
                }
            }
        }
        index = next;
        break;
    }
    let mut cursor = index;
    while cursor < tokens.len() {
        let token = &tokens[cursor];
        if token.is_punct('{') {
            return match_bracket(tokens, cursor, '{', '}')
                .map(|close| close + 1)
                .unwrap_or(tokens.len());
        }
        if token.is_punct(';') {
            return cursor + 1;
        }
        cursor += 1;
    }
    tokens.len()
}

/// Token index of the first non-comment token at or after `index`.
fn next_code(tokens: &[Token], index: usize) -> Option<usize> {
    (index..tokens.len()).find(|&i| !tokens[i].is_comment())
}

/// Given `tokens[open]` == `open_ch`, returns the index of the matching
/// `close_ch`, counting nesting.
fn match_bracket(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> Option<usize> {
    let mut depth = 0i64;
    for (offset, token) in tokens[open..].iter().enumerate() {
        if token.is_punct(open_ch) {
            depth += 1;
        } else if token.is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return Some(open + offset);
            }
        }
    }
    None
}

/// Spans of the parenthesised argument list of every `name(...)` call.
fn compute_call_arg_spans(tokens: &[Token], name: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (index, token) in tokens.iter().enumerate() {
        if !token.is_ident(name) {
            continue;
        }
        if let Some(open) = next_code(tokens, index + 1) {
            if tokens[open].is_punct('(') {
                if let Some(close) = match_bracket(tokens, open, '(', ')') {
                    spans.push((open, close + 1));
                }
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_with_reason_parses() {
        let file = SourceFile::parse(
            "crates/x/src/lib.rs",
            "// mitosis-lint: allow(panic-hygiene, reason = \"test oracle\")\nlet x = 1;",
        );
        assert!(file.suppression_errors.is_empty());
        assert_eq!(file.suppressions.len(), 1);
        let s = &file.suppressions[0];
        assert_eq!(s.rule, "panic-hygiene");
        assert_eq!(s.reason.as_deref(), Some("test oracle"));
        assert_eq!(s.line, 1);
        assert_eq!(s.applies_to, 2);
    }

    #[test]
    fn suppression_without_reason_is_an_error() {
        let file = SourceFile::parse(
            "crates/x/src/lib.rs",
            "// mitosis-lint: allow(panic-hygiene)\nlet x = 1;",
        );
        assert_eq!(file.suppression_errors.len(), 1);
        assert!(file.suppression_errors[0].1.contains("missing a reason"));
        assert!(file.suppressions[0].reason.is_none());
    }

    #[test]
    fn trailing_suppression_applies_to_its_own_line() {
        let file = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let x = 1; // mitosis-lint: allow(rule-x, reason = \"ok\")\nlet y = 2;",
        );
        assert_eq!(file.suppressions[0].applies_to, 1);
    }

    #[test]
    fn suppression_skips_doc_comments_to_find_code() {
        let file = SourceFile::parse(
            "crates/x/src/lib.rs",
            "// mitosis-lint: allow(rule-x, reason = \"ok\")\n/// docs\n/// more docs\nfn item() {}\n",
        );
        assert_eq!(file.suppressions[0].applies_to, 4);
    }

    #[test]
    fn cfg_test_module_span_covers_its_body() {
        let source =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { inner(); }\n}\nfn after() {}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", source);
        let inner = file
            .tokens
            .iter()
            .position(|t| t.is_ident("inner"))
            .unwrap();
        let live = file.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        let after = file
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .unwrap();
        assert!(file.is_test_code(inner));
        assert!(!file.is_test_code(live));
        assert!(!file.is_test_code(after));
    }

    #[test]
    fn test_fn_attr_and_extra_attrs_are_covered() {
        let source = "#[test]\n#[should_panic]\nfn boom() { panic!(\"x\") }\nfn fine() {}\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", source);
        let panic_ident = file
            .tokens
            .iter()
            .position(|t| t.is_ident("panic"))
            .unwrap();
        let fine = file.tokens.iter().position(|t| t.is_ident("fine")).unwrap();
        assert!(file.is_test_code(panic_ident));
        assert!(!file.is_test_code(fine));
    }

    #[test]
    fn catch_unwind_span_covers_closure_body() {
        let source =
            "let r = catch_unwind(AssertUnwindSafe(|| { job.unwrap() }));\nouter.unwrap();\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", source);
        let unwraps: Vec<usize> = file
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(file.in_catch_unwind(unwraps[0]));
        assert!(!file.in_catch_unwind(unwraps[1]));
    }

    #[test]
    fn root_tests_are_whole_file_test_code() {
        let file = SourceFile::parse("tests/lint_clean.rs", "fn x() {}");
        assert!(file.is_test_code(0));
    }
}
