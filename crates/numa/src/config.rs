//! Machine configuration presets and the builder tying topology and cost
//! model together.

use crate::cost::CostModel;
use crate::topology::Topology;
use crate::{Cycles, GIB, MIB};

/// Latency/bandwidth profile of the inter-socket interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterconnectProfile {
    /// Local DRAM latency in cycles.
    pub local_latency: Cycles,
    /// Remote DRAM latency in cycles.
    pub remote_latency: Cycles,
    /// L3 hit latency in cycles.
    pub l3_latency: Cycles,
    /// Local memory bandwidth in GB/s.
    pub local_bandwidth_gbps: f64,
    /// Remote memory bandwidth in GB/s.
    pub remote_bandwidth_gbps: f64,
}

impl InterconnectProfile {
    /// The paper's Xeon E7-4850v3 numbers (280/580 cycles, 28/11 GB/s).
    pub const fn xeon_e7_4850_v3() -> Self {
        InterconnectProfile {
            local_latency: 280,
            remote_latency: 580,
            l3_latency: 42,
            local_bandwidth_gbps: 28.0,
            remote_bandwidth_gbps: 11.0,
        }
    }

    /// A profile with a steeper NUMA factor (roughly EPYC inter-package),
    /// useful for sensitivity studies.
    pub const fn steep_numa() -> Self {
        InterconnectProfile {
            local_latency: 250,
            remote_latency: 750,
            l3_latency: 40,
            local_bandwidth_gbps: 40.0,
            remote_bandwidth_gbps: 10.0,
        }
    }
}

/// Builder for a simulated machine: topology plus cost model.
///
/// # Example
///
/// ```
/// use mitosis_numa::MachineConfig;
///
/// let machine = MachineConfig::paper_testbed().build();
/// assert_eq!(machine.total_cores(), 56);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    sockets: u16,
    cores_per_socket: u32,
    memory_per_socket: u64,
    l3_bytes_per_socket: u64,
    interconnect: InterconnectProfile,
    scale: u64,
}

impl MachineConfig {
    /// Starts a configuration with explicit socket/core counts.
    pub fn new(sockets: u16, cores_per_socket: u32) -> Self {
        MachineConfig {
            sockets,
            cores_per_socket,
            memory_per_socket: 128 * GIB,
            l3_bytes_per_socket: 35 * MIB,
            interconnect: InterconnectProfile::xeon_e7_4850_v3(),
            scale: 1,
        }
    }

    /// The paper's testbed: 4 sockets x 14 cores, 128 GiB and 35 MiB L3 per
    /// socket, Xeon E7-4850v3 interconnect numbers.
    pub fn paper_testbed() -> Self {
        MachineConfig::new(4, 14)
    }

    /// The paper's testbed scaled down by a factor of 16 in capacity
    /// (memory and L3) so that experiments with gigabyte-scale footprints
    /// reproduce the cache/TLB pressure ratios of the hundreds-of-gigabytes
    /// originals.  Latencies and core counts are unchanged.
    pub fn paper_testbed_scaled() -> Self {
        MachineConfig::paper_testbed().with_scale(16)
    }

    /// A small two-socket machine, convenient for unit tests.
    pub fn two_socket_small() -> Self {
        MachineConfig::new(2, 4)
            .with_memory_per_socket(4 * GIB)
            .with_l3_bytes_per_socket(8 * MIB)
    }

    /// Sets the DRAM capacity attached to each socket.
    pub fn with_memory_per_socket(mut self, bytes: u64) -> Self {
        self.memory_per_socket = bytes;
        self
    }

    /// Sets the last-level cache capacity of each socket.
    pub fn with_l3_bytes_per_socket(mut self, bytes: u64) -> Self {
        self.l3_bytes_per_socket = bytes;
        self
    }

    /// Sets the interconnect latency/bandwidth profile.
    pub fn with_interconnect(mut self, profile: InterconnectProfile) -> Self {
        self.interconnect = profile;
        self
    }

    /// Scales capacities (memory, L3) down by `factor`, keeping latencies.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn with_scale(mut self, factor: u64) -> Self {
        assert!(factor > 0, "scale factor must be positive");
        self.scale = factor;
        self
    }

    /// The configured capacity scale factor.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Builds the immutable [`Machine`] description.
    pub fn build(self) -> Machine {
        let topology = Topology::new(
            self.sockets,
            self.cores_per_socket,
            (self.memory_per_socket / self.scale).max(MIB),
            (self.l3_bytes_per_socket / self.scale).max(64 * crate::KIB),
        );
        let cost = CostModel::new(
            topology.sockets(),
            self.interconnect.local_latency,
            self.interconnect.remote_latency,
            self.interconnect.l3_latency,
            self.interconnect.local_bandwidth_gbps,
            self.interconnect.remote_bandwidth_gbps,
        );
        Machine {
            topology,
            cost,
            scale: self.scale,
        }
    }
}

/// An immutable machine description: topology plus cost model.
///
/// `Machine` dereferences to [`Topology`] for convenience, so all topology
/// accessors (`sockets()`, `socket_of_core()`, ...) are available directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    topology: Topology,
    cost: CostModel,
    scale: u64,
}

impl Machine {
    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The machine's memory-access cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Mutable access to the cost model (to install interference).
    pub fn cost_model_mut(&mut self) -> &mut CostModel {
        &mut self.cost
    }

    /// Capacity scale factor this machine was built with.
    pub fn scale(&self) -> u64 {
        self.scale
    }
}

impl std::ops::Deref for Machine {
    type Target = Topology;

    fn deref(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::SocketId;
    use crate::AccessKind;

    #[test]
    fn paper_testbed_dimensions() {
        let machine = MachineConfig::paper_testbed().build();
        assert_eq!(machine.sockets(), 4);
        assert_eq!(machine.cores_per_socket(), 14);
        assert_eq!(machine.memory_per_socket(), 128 * GIB);
        assert_eq!(machine.l3_bytes_per_socket(), 35 * MIB);
    }

    #[test]
    fn scaled_testbed_shrinks_capacity_not_latency() {
        let machine = MachineConfig::paper_testbed_scaled().build();
        assert_eq!(machine.memory_per_socket(), 8 * GIB);
        assert_eq!(machine.cost_model().local_dram_latency(), 280);
        assert_eq!(machine.cost_model().remote_dram_latency(), 580);
        assert_eq!(machine.scale(), 16);
    }

    #[test]
    fn interference_can_be_installed_via_cost_model_mut() {
        let mut machine = MachineConfig::two_socket_small().build();
        machine
            .cost_model_mut()
            .set_interference(crate::Interference::on([SocketId::new(1)]));
        let cost =
            machine
                .cost_model()
                .dram_access(SocketId::new(0), SocketId::new(1), AccessKind::Data);
        assert!(cost.interfered);
    }

    #[test]
    fn custom_interconnect_profile_is_honoured() {
        let machine = MachineConfig::new(8, 8)
            .with_interconnect(InterconnectProfile::steep_numa())
            .build();
        assert_eq!(machine.cost_model().remote_dram_latency(), 750);
        assert_eq!(machine.sockets(), 8);
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn zero_scale_panics() {
        let _ = MachineConfig::paper_testbed().with_scale(0);
    }
}
