//! Sockets, cores and node masks.

use std::fmt;

/// Identifier of a NUMA socket (a package with its attached memory node).
///
/// Socket identifiers are dense indices `0..sockets`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SocketId(u16);

impl SocketId {
    /// Creates a socket identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        SocketId(index)
    }

    /// Returns the dense index of this socket.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "socket{}", self.0)
    }
}

impl From<u16> for SocketId {
    fn from(value: u16) -> Self {
        SocketId(value)
    }
}

/// Identifier of a logical core (hardware thread).
///
/// Cores are numbered densely across the machine, socket-major: core `c`
/// belongs to socket `c / cores_per_socket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u32);

impl CoreId {
    /// Creates a core identifier from a dense index.
    pub const fn new(index: u32) -> Self {
        CoreId(index)
    }

    /// Returns the dense index of this core.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u32> for CoreId {
    fn from(value: u32) -> Self {
        CoreId(value)
    }
}

/// A set of NUMA sockets, equivalent to Linux's `nodemask_t` / libnuma's
/// `struct bitmask`.
///
/// This is the type passed to the Mitosis policy API
/// (`numa_set_pgtable_replication_mask` in the paper) to select the sockets
/// page-tables are replicated on.
///
/// # Example
///
/// ```
/// use mitosis_numa::{NodeMask, SocketId};
///
/// let mask = NodeMask::from_sockets([SocketId::new(0), SocketId::new(2)]);
/// assert!(mask.contains(SocketId::new(0)));
/// assert!(!mask.contains(SocketId::new(1)));
/// assert_eq!(mask.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NodeMask(u64);

impl NodeMask {
    /// The empty mask (no sockets selected).
    pub const EMPTY: NodeMask = NodeMask(0);

    /// Creates an empty node mask.
    pub const fn new() -> Self {
        NodeMask(0)
    }

    /// Creates a mask containing every socket of an `n`-socket machine.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`; the mask supports at most 64 sockets.
    pub fn all(n: usize) -> Self {
        assert!(n <= 64, "NodeMask supports at most 64 sockets");
        if n == 64 {
            NodeMask(u64::MAX)
        } else {
            NodeMask((1u64 << n) - 1)
        }
    }

    /// Creates a mask containing exactly one socket.
    pub fn single(socket: SocketId) -> Self {
        let mut mask = NodeMask::new();
        mask.insert(socket);
        mask
    }

    /// Creates a mask from an iterator of sockets.
    pub fn from_sockets<I: IntoIterator<Item = SocketId>>(sockets: I) -> Self {
        let mut mask = NodeMask::new();
        for socket in sockets {
            mask.insert(socket);
        }
        mask
    }

    /// Adds a socket to the mask. Returns `true` if it was newly inserted.
    pub fn insert(&mut self, socket: SocketId) -> bool {
        let bit = 1u64 << socket.index();
        let newly = self.0 & bit == 0;
        self.0 |= bit;
        newly
    }

    /// Removes a socket from the mask. Returns `true` if it was present.
    pub fn remove(&mut self, socket: SocketId) -> bool {
        let bit = 1u64 << socket.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Returns `true` if the mask contains `socket`.
    pub const fn contains(self, socket: SocketId) -> bool {
        self.0 & (1u64 << socket.0 as usize) != 0
    }

    /// Returns the number of sockets in the mask.
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if no socket is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the union of two masks.
    pub const fn union(self, other: NodeMask) -> NodeMask {
        NodeMask(self.0 | other.0)
    }

    /// Returns the intersection of two masks.
    pub const fn intersection(self, other: NodeMask) -> NodeMask {
        NodeMask(self.0 & other.0)
    }

    /// Iterates over the sockets contained in the mask, in increasing order.
    pub fn iter(self) -> impl Iterator<Item = SocketId> {
        (0..64u16)
            .filter(move |i| self.0 & (1u64 << i) != 0)
            .map(SocketId::new)
    }

    /// Returns the raw 64-bit representation (bit `i` = socket `i`).
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Creates a mask from a raw 64-bit representation.
    pub const fn from_bits(bits: u64) -> Self {
        NodeMask(bits)
    }
}

impl fmt::Display for NodeMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sockets: Vec<String> = self.iter().map(|s| s.index().to_string()).collect();
        write!(f, "{{{}}}", sockets.join(","))
    }
}

impl FromIterator<SocketId> for NodeMask {
    fn from_iter<T: IntoIterator<Item = SocketId>>(iter: T) -> Self {
        NodeMask::from_sockets(iter)
    }
}

/// Static description of the machine: sockets, cores and per-socket memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    sockets: u16,
    cores_per_socket: u32,
    memory_per_socket: u64,
    l3_bytes_per_socket: u64,
}

impl Topology {
    /// Creates a topology description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or if `sockets > 64`.
    pub fn new(
        sockets: u16,
        cores_per_socket: u32,
        memory_per_socket: u64,
        l3_bytes_per_socket: u64,
    ) -> Self {
        assert!(sockets > 0, "a machine needs at least one socket");
        assert!(sockets as usize <= 64, "at most 64 sockets supported");
        assert!(cores_per_socket > 0, "a socket needs at least one core");
        assert!(memory_per_socket > 0, "a socket needs attached memory");
        Topology {
            sockets,
            cores_per_socket,
            memory_per_socket,
            l3_bytes_per_socket,
        }
    }

    /// Number of sockets in the machine.
    pub fn sockets(&self) -> usize {
        self.sockets as usize
    }

    /// Number of logical cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket as usize
    }

    /// Total number of logical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets() * self.cores_per_socket()
    }

    /// Bytes of DRAM attached to each socket.
    pub fn memory_per_socket(&self) -> u64 {
        self.memory_per_socket
    }

    /// Total bytes of DRAM in the machine.
    pub fn total_memory(&self) -> u64 {
        self.memory_per_socket * self.sockets as u64
    }

    /// Bytes of last-level cache per socket.
    pub fn l3_bytes_per_socket(&self) -> u64 {
        self.l3_bytes_per_socket
    }

    /// Returns the socket identifier for a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.sockets()`.
    pub fn socket(&self, index: usize) -> SocketId {
        assert!(index < self.sockets(), "socket index out of range");
        SocketId::new(index as u16)
    }

    /// Returns the core identifier for a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.total_cores()`.
    pub fn core(&self, index: usize) -> CoreId {
        assert!(index < self.total_cores(), "core index out of range");
        CoreId::new(index as u32)
    }

    /// Returns the socket a core belongs to.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId::new((core.index() / self.cores_per_socket()) as u16)
    }

    /// Returns the cores belonging to a socket, in increasing order.
    pub fn cores_of_socket(&self, socket: SocketId) -> Vec<CoreId> {
        let start = socket.index() * self.cores_per_socket();
        (start..start + self.cores_per_socket())
            .map(|i| CoreId::new(i as u32))
            .collect()
    }

    /// Returns the first core of a socket (convenient for pinning one
    /// representative thread per socket).
    pub fn first_core_of_socket(&self, socket: SocketId) -> CoreId {
        CoreId::new((socket.index() * self.cores_per_socket()) as u32)
    }

    /// Iterates over all sockets.
    pub fn socket_ids(&self) -> impl Iterator<Item = SocketId> {
        (0..self.sockets).map(SocketId::new)
    }

    /// Returns a mask containing all sockets of this machine.
    pub fn all_sockets(&self) -> NodeMask {
        NodeMask::all(self.sockets())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_and_core_indexing() {
        let topo = Topology::new(4, 14, 128 << 30, 35 << 20);
        assert_eq!(topo.sockets(), 4);
        assert_eq!(topo.total_cores(), 56);
        assert_eq!(topo.socket_of_core(CoreId::new(0)), SocketId::new(0));
        assert_eq!(topo.socket_of_core(CoreId::new(13)), SocketId::new(0));
        assert_eq!(topo.socket_of_core(CoreId::new(14)), SocketId::new(1));
        assert_eq!(topo.socket_of_core(CoreId::new(55)), SocketId::new(3));
    }

    #[test]
    fn cores_of_socket_are_contiguous() {
        let topo = Topology::new(2, 4, 1 << 30, 8 << 20);
        let cores = topo.cores_of_socket(SocketId::new(1));
        assert_eq!(cores.len(), 4);
        assert_eq!(cores[0], CoreId::new(4));
        assert_eq!(cores[3], CoreId::new(7));
        assert_eq!(topo.first_core_of_socket(SocketId::new(1)), CoreId::new(4));
    }

    #[test]
    #[should_panic(expected = "socket index out of range")]
    fn socket_out_of_range_panics() {
        let topo = Topology::new(2, 4, 1 << 30, 8 << 20);
        let _ = topo.socket(2);
    }

    #[test]
    fn node_mask_insert_remove_contains() {
        let mut mask = NodeMask::new();
        assert!(mask.is_empty());
        assert!(mask.insert(SocketId::new(3)));
        assert!(!mask.insert(SocketId::new(3)));
        assert!(mask.contains(SocketId::new(3)));
        assert_eq!(mask.count(), 1);
        assert!(mask.remove(SocketId::new(3)));
        assert!(!mask.remove(SocketId::new(3)));
        assert!(mask.is_empty());
    }

    #[test]
    fn node_mask_all_and_iter() {
        let mask = NodeMask::all(4);
        assert_eq!(mask.count(), 4);
        let sockets: Vec<usize> = mask.iter().map(|s| s.index()).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3]);
        assert_eq!(mask.to_string(), "{0,1,2,3}");
    }

    #[test]
    fn node_mask_union_intersection() {
        let a = NodeMask::from_sockets([SocketId::new(0), SocketId::new(1)]);
        let b = NodeMask::from_sockets([SocketId::new(1), SocketId::new(2)]);
        assert_eq!(a.union(b).count(), 3);
        assert_eq!(a.intersection(b).count(), 1);
        assert!(a.intersection(b).contains(SocketId::new(1)));
    }

    #[test]
    fn node_mask_64_sockets() {
        let mask = NodeMask::all(64);
        assert_eq!(mask.count(), 64);
        assert_eq!(mask.bits(), u64::MAX);
    }

    #[test]
    fn node_mask_collect_from_iterator() {
        let mask: NodeMask = (0..3u16).map(SocketId::new).collect();
        assert_eq!(mask, NodeMask::all(3));
    }
}
