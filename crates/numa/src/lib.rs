//! NUMA machine model for the Mitosis reproduction.
//!
//! This crate models the *hardware substrate* the paper's evaluation runs on: a
//! multi-socket, cache-coherent NUMA machine in which every memory access is
//! either *local* (served by the DRAM attached to the socket issuing the
//! access) or *remote* (served across the interconnect at higher latency and
//! lower bandwidth).
//!
//! The model is intentionally a *cost model* rather than a cycle-accurate
//! simulator: what matters for reproducing the paper is which socket a
//! page-table (or data) page lives on relative to the core that touches it,
//! and how expensive that access is.  The defaults mirror the paper's testbed,
//! a four-socket Intel Xeon E7-4850v3:
//!
//! * 4 sockets x 14 cores (2-way SMT), 128 GiB per socket,
//! * ~280 cycles local DRAM latency, ~580 cycles remote,
//! * ~28 GB/s local bandwidth, ~11 GB/s remote,
//! * 35 MiB shared L3 per socket.
//!
//! # Example
//!
//! ```
//! use mitosis_numa::MachineConfig;
//!
//! let machine = MachineConfig::paper_testbed().build();
//! assert_eq!(machine.sockets(), 4);
//! let core = machine.core(20);
//! assert_eq!(machine.socket_of_core(core).index(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod cost;
mod topology;

pub use config::{InterconnectProfile, Machine, MachineConfig};
pub use cost::{AccessKind, CostModel, Interference, MemoryAccessCost};
pub use topology::{CoreId, NodeMask, SocketId, Topology};

/// Convenience constant: bytes per KiB.
pub const KIB: u64 = 1024;
/// Convenience constant: bytes per MiB.
pub const MIB: u64 = 1024 * KIB;
/// Convenience constant: bytes per GiB.
pub const GIB: u64 = 1024 * MIB;
/// Convenience constant: bytes per TiB.
pub const TIB: u64 = 1024 * GIB;

/// Cycle count used throughout the simulator.
pub type Cycles = u64;
