//! Memory access cost model: local vs. remote latency, bandwidth-derived
//! contention penalties and interference from co-located memory hogs.

use crate::topology::{SocketId, Topology};
use crate::Cycles;

/// What kind of memory reference is being charged.
///
/// The distinction matters for the statistics the paper reports (data accesses
/// vs. page-walk accesses) and, in the cost model, because page-walk
/// references are cache-line sized reads issued by the hardware walker whereas
/// data references stand in for whole-cache-line program accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A program load/store to a data page.
    Data,
    /// A hardware page-walker read of a page-table entry.
    PageWalk,
}

/// Describes a memory-bandwidth-heavy co-runner on a socket ("interference"
/// in the paper's configuration matrix, e.g. `RPI-LD`).
///
/// The paper uses a STREAM instance pinned to the interfering socket to hog
/// its local memory bandwidth; we model the effect as a latency multiplier on
/// every access *served by* the loaded socket's memory controller.
#[derive(Debug, Clone, PartialEq)]
pub struct Interference {
    loaded: Vec<SocketId>,
    /// Latency multiplier applied to accesses served by a loaded socket.
    pub latency_factor: f64,
}

impl Interference {
    /// No interference anywhere on the machine.
    pub fn none() -> Self {
        Interference {
            loaded: Vec::new(),
            latency_factor: 1.0,
        }
    }

    /// Creates interference on the given sockets with the default factor.
    ///
    /// The default factor (2.8x) is calibrated so that the
    /// remote-page-table-with-interference configurations reproduce the
    /// 3.0-3.3x slowdowns of Figure 6 and the 3.24x GUPS case of Figure 1.
    pub fn on<I: IntoIterator<Item = SocketId>>(sockets: I) -> Self {
        Interference {
            loaded: sockets.into_iter().collect(),
            latency_factor: 2.8,
        }
    }

    /// Sets a custom latency multiplier.
    pub fn with_latency_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "interference cannot speed memory up");
        self.latency_factor = factor;
        self
    }

    /// Returns `true` if `socket`'s memory controller is loaded.
    pub fn is_loaded(&self, socket: SocketId) -> bool {
        self.loaded.contains(&socket)
    }

    /// Returns the sockets that host an interfering process.
    pub fn loaded_sockets(&self) -> &[SocketId] {
        &self.loaded
    }
}

impl Default for Interference {
    fn default() -> Self {
        Interference::none()
    }
}

/// Cost of one memory access, broken down for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryAccessCost {
    /// Total cycles charged for the access.
    pub cycles: Cycles,
    /// Whether the access was served by the issuing core's local socket.
    pub local: bool,
    /// Whether the serving socket was loaded by an interfering process.
    pub interfered: bool,
}

/// Latency/bandwidth cost model of the NUMA machine.
///
/// All latencies are in CPU cycles.  Remote accesses pay the interconnect
/// penalty; accesses served by a socket hosting an interfering
/// bandwidth-heavy process additionally pay the interference factor.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    sockets: usize,
    local_dram_latency: Cycles,
    remote_dram_latency: Cycles,
    l3_hit_latency: Cycles,
    l2_hit_latency: Cycles,
    local_bandwidth_gbps: f64,
    remote_bandwidth_gbps: f64,
    interference: Interference,
    /// Dense `[from][to][kind]` matrix of precomputed access costs, rebuilt
    /// whenever the interference description changes.  `dram_access` — called
    /// once per page-walk level and once per data access, the hottest lookup
    /// in the simulator — reduces to one indexed load from this table.
    matrix: Vec<MemoryAccessCost>,
}

/// Number of [`AccessKind`] variants (the `kind` stride of the matrix).
const KINDS: usize = 2;

#[inline]
fn kind_index(kind: AccessKind) -> usize {
    match kind {
        AccessKind::Data => 0,
        AccessKind::PageWalk => 1,
    }
}

impl CostModel {
    /// Creates a cost model for a machine with `sockets` sockets.
    pub fn new(
        sockets: usize,
        local_dram_latency: Cycles,
        remote_dram_latency: Cycles,
        l3_hit_latency: Cycles,
        local_bandwidth_gbps: f64,
        remote_bandwidth_gbps: f64,
    ) -> Self {
        assert!(sockets > 0);
        assert!(remote_dram_latency >= local_dram_latency);
        let mut model = CostModel {
            sockets,
            local_dram_latency,
            remote_dram_latency,
            l3_hit_latency,
            l2_hit_latency: l3_hit_latency / 3,
            local_bandwidth_gbps,
            remote_bandwidth_gbps,
            interference: Interference::none(),
            matrix: Vec::new(),
        };
        model.rebuild_matrix();
        model
    }

    /// Computes one cell of the access-cost matrix from first principles
    /// (the arithmetic that used to run on every access).
    fn compute_dram_access(&self, from: SocketId, target: SocketId) -> MemoryAccessCost {
        let local = from == target;
        let base = if local {
            self.local_dram_latency
        } else {
            self.remote_dram_latency
        };
        let interfered = self.interference.is_loaded(target);
        let cycles = if interfered {
            (base as f64 * self.interference.latency_factor).round() as Cycles
        } else {
            base
        };
        MemoryAccessCost {
            cycles,
            local,
            interfered,
        }
    }

    /// Rebuilds the dense `[from][to][kind]` cost matrix.
    fn rebuild_matrix(&mut self) {
        let sockets = self.sockets;
        let mut matrix = Vec::with_capacity(sockets * sockets * KINDS);
        for from in 0..sockets {
            for to in 0..sockets {
                let cost =
                    self.compute_dram_access(SocketId::new(from as u16), SocketId::new(to as u16));
                // The raw latency is currently kind-independent; the matrix
                // still carries the kind axis so a future asymmetry (e.g.
                // cache-line vs. full-line transfers) stays a table rebuild
                // rather than a hot-path change.
                for _ in 0..KINDS {
                    matrix.push(cost);
                }
            }
        }
        self.matrix = matrix;
    }

    /// Cost model matching the paper's Xeon E7-4850v3 testbed.
    pub fn paper_testbed(topology: &Topology) -> Self {
        CostModel::new(topology.sockets(), 280, 580, 42, 28.0, 11.0)
    }

    /// Installs (or replaces) the interference description and rebuilds the
    /// precomputed cost matrix to match.
    pub fn set_interference(&mut self, interference: Interference) {
        self.interference = interference;
        self.rebuild_matrix();
    }

    /// Returns the current interference description.
    pub fn interference(&self) -> &Interference {
        &self.interference
    }

    /// Local DRAM access latency in cycles.
    pub fn local_dram_latency(&self) -> Cycles {
        self.local_dram_latency
    }

    /// Remote DRAM access latency in cycles.
    pub fn remote_dram_latency(&self) -> Cycles {
        self.remote_dram_latency
    }

    /// Latency of a hit in the (local) last-level cache.
    pub fn l3_hit_latency(&self) -> Cycles {
        self.l3_hit_latency
    }

    /// Latency of a hit in an inner cache level (used for paging-structure
    /// cache misses that still hit in L2, and for TLB-hit data accesses whose
    /// line is cached).
    pub fn l2_hit_latency(&self) -> Cycles {
        self.l2_hit_latency
    }

    /// Ratio of local to remote bandwidth; used to derive additional queueing
    /// delay for bandwidth-bound streams of remote accesses.
    pub fn remote_bandwidth_penalty(&self) -> f64 {
        self.local_bandwidth_gbps / self.remote_bandwidth_gbps
    }

    /// Charges a DRAM access issued by a core on `from` to memory attached to
    /// `target`: one indexed load from the precomputed cost matrix.
    #[inline]
    pub fn dram_access(
        &self,
        from: SocketId,
        target: SocketId,
        kind: AccessKind,
    ) -> MemoryAccessCost {
        self.matrix[(from.index() * self.sockets + target.index()) * KINDS + kind_index(kind)]
    }

    /// Charges a last-level-cache hit on the issuing socket.
    pub fn llc_hit(&self) -> MemoryAccessCost {
        MemoryAccessCost {
            cycles: self.l3_hit_latency,
            local: true,
            interfered: false,
        }
    }

    /// Charges a hit in a remote socket's last-level cache (a page-table line
    /// recently written by another socket, for example).  Costs roughly the
    /// interconnect round-trip but avoids DRAM.
    pub fn remote_llc_hit(&self) -> MemoryAccessCost {
        let cycles = self.l3_hit_latency.saturating_add(
            self.remote_dram_latency
                .saturating_sub(self.local_dram_latency),
        );
        MemoryAccessCost {
            cycles,
            local: false,
            interfered: false,
        }
    }

    /// Number of sockets the model was built for.
    pub fn sockets(&self) -> usize {
        self.sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(4, 280, 580, 42, 28.0, 11.0)
    }

    #[test]
    fn local_access_is_cheaper_than_remote() {
        let m = model();
        let local = m.dram_access(SocketId::new(0), SocketId::new(0), AccessKind::Data);
        let remote = m.dram_access(SocketId::new(0), SocketId::new(1), AccessKind::Data);
        assert!(local.local);
        assert!(!remote.local);
        assert!(remote.cycles > local.cycles);
        assert_eq!(local.cycles, 280);
        assert_eq!(remote.cycles, 580);
    }

    #[test]
    fn interference_inflates_latency_on_loaded_socket_only() {
        let mut m = model();
        m.set_interference(Interference::on([SocketId::new(1)]).with_latency_factor(2.0));
        let to_loaded = m.dram_access(SocketId::new(0), SocketId::new(1), AccessKind::PageWalk);
        let to_idle = m.dram_access(SocketId::new(0), SocketId::new(2), AccessKind::PageWalk);
        assert!(to_loaded.interfered);
        assert!(!to_idle.interfered);
        assert_eq!(to_loaded.cycles, 1160);
        assert_eq!(to_idle.cycles, 580);
    }

    #[test]
    fn interference_also_hits_local_accesses_of_the_loaded_socket() {
        let mut m = model();
        m.set_interference(Interference::on([SocketId::new(0)]));
        let cost = m.dram_access(SocketId::new(0), SocketId::new(0), AccessKind::Data);
        assert!(cost.local);
        assert!(cost.interfered);
        assert!(cost.cycles > 280);
    }

    #[test]
    fn llc_hits_are_cheap() {
        let m = model();
        assert!(
            m.llc_hit().cycles
                < m.dram_access(SocketId::new(0), SocketId::new(0), AccessKind::Data)
                    .cycles
        );
        assert!(
            m.remote_llc_hit().cycles
                < m.dram_access(SocketId::new(0), SocketId::new(1), AccessKind::Data)
                    .cycles
        );
    }

    #[test]
    fn paper_testbed_matches_documented_latencies() {
        let topo = Topology::new(4, 14, 128 << 30, 35 << 20);
        let m = CostModel::paper_testbed(&topo);
        assert_eq!(m.local_dram_latency(), 280);
        assert_eq!(m.remote_dram_latency(), 580);
        assert!((m.remote_bandwidth_penalty() - 28.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "interference cannot speed memory up")]
    fn interference_factor_below_one_panics() {
        let _ = Interference::on([SocketId::new(0)]).with_latency_factor(0.5);
    }
}
