//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the property tests
//! link this shim instead of the real `proptest`.  It keeps the same testing
//! shape — a [`proptest!`] macro expanding to `#[test]` functions that draw
//! each argument from a [`Strategy`] for a configurable number of cases, with
//! [`prop_assert!`]/[`prop_assert_eq!`] reporting failures — but drops
//! shrinking and persistence: a failing case reports its values via `Debug`
//! formatting of the assertion instead of a minimised counterexample.
//!
//! Supported strategies: integer ranges (`0u64..n`), `any::<bool>()` /
//! `prop::bool::ANY`, tuples of strategies, and
//! `prop::collection::vec(strategy, size_range)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use rand::Rng as _;

/// Runner configuration (the `with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion, carried out of the test body by
/// [`prop_assert!`] and friends.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Test-runner internals (the random source behind strategies).
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// The deterministic random source strategies sample from.
    ///
    /// Seeded from `PROPTEST_SEED` when set (so a failing run can be
    /// reproduced by exporting the seed it printed), otherwise from a fixed
    /// default.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Creates the per-test source, honouring `PROPTEST_SEED`.
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x70726f7074657374);
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                use rand::RngCore as _;
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T` (only the types the workspace tests
/// need implement [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use std::marker::PhantomData;

        /// The strategy producing arbitrary booleans.
        pub const ANY: crate::Any<bool> = crate::Any(PhantomData);
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{test_runner::TestRng, Strategy};
        use rand::Rng as _;
        use std::ops::Range;

        /// Strategy for `Vec`s with element strategy `S` and a length drawn
        /// from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// Creates a strategy producing vectors of `elem` values with a
        /// length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "vec size range must be non-empty");
            VecStrategy { elem, size }
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` against `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic();
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property `{}` failed at case #{case} \
                             (set PROPTEST_SEED to reproduce): {err}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), left, right, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_respects_size_and_elements(
            v in prop::collection::vec((0u16..4, prop::bool::ANY), 1..9)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (n, _flag) in v {
                prop_assert!(n < 4);
            }
        }

        #[test]
        fn any_bool_is_sampled(b in any::<bool>()) {
            prop_assert_eq!(b, b);
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]

            fn always_fails(x in 0u64..2) {
                prop_assert!(x > 10, "x was {x}");
            }
        }
        always_fails();
    }
}
