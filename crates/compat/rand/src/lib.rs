//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` crate the workspace links this shim: a deterministic
//! xoshiro256**-based [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`]
//! traits with the handful of methods the workloads and allocator models
//! call (`random_range`, `random_bool`).
//!
//! The statistical quality of xoshiro256** is more than sufficient for the
//! access-pattern generators here; what actually matters to the simulator is
//! *determinism* — two generators seeded identically must produce identical
//! streams — which this shim guarantees just like the real `StdRng` does
//! (within one build; the concrete stream differs from upstream `rand`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Low-level uniform random source.
pub trait RngCore {
    /// Produces the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructors (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo draw: a negligible bias for the spans used here,
                // and bit-stable across platforms, which is what the
                // deterministic replay machinery cares about.
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full domain for integers and `bool`).
pub trait StandardSample {
    /// Draws one standard-distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a standard-distributed value (`[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // 53 uniform mantissa bits, the standard open [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..64).map(|_| a.random_range(0u64..1 << 40)).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.random_range(0u64..1 << 40)).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.random_range(0u64..1 << 40)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        let one: u16 = rng.random_range(3u16..4);
        assert_eq!(one, 3);
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
