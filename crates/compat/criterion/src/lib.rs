//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the benchmark
//! targets link this shim instead of the real Criterion.  It keeps the same
//! authoring surface — [`Criterion`], benchmark groups, `iter` /
//! `iter_batched`, the [`criterion_group!`] / [`criterion_main!`] macros —
//! and implements a straightforward timing loop: per benchmark it runs a
//! warm-up pass, takes `sample_size` wall-clock samples (each batching
//! enough iterations to be measurable), rejects outlier samples using the
//! median-absolute-deviation rule, and prints the minimum, **median** and
//! maximum time per iteration of the retained samples.  No plotting or
//! baseline persistence.
//!
//! Setting the `MITOSIS_BENCH_QUICK` environment variable clamps sample
//! counts and time budgets to small values, turning every benchmark into a
//! smoke test (used by CI to catch hot-path regressions cheaply).
//!
//! Setting `MITOSIS_BENCH_JSON` to a file path additionally appends one
//! JSON line per benchmark — `{"bench":"<id>","median_ns":<median>}` — so
//! CI can diff the results against a committed baseline
//! (`scripts/bench_gate`).  The file is appended to, not truncated:
//! several bench binaries of one job write into the same results file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, like `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost over routine calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup.
    SmallInput,
    /// Large inputs: few routine calls per setup.
    LargeInput,
    /// One setup per routine call (for routines that consume their input
    /// destructively and are expensive enough to time individually).
    PerIteration,
}

/// Collected timings for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Default)]
struct Samples {
    ns_per_iter: Vec<f64>,
}

impl Samples {
    fn record(&mut self, elapsed: Duration, iters: u64) {
        if iters > 0 {
            self.ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.ns_per_iter.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let retained = reject_outliers(&self.ns_per_iter);
        let rejected = self.ns_per_iter.len() - retained.len();
        let med = median(&retained);
        let min = retained.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = retained.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let note = if rejected > 0 {
            format!("  ({rejected} outliers rejected)")
        } else {
            String::new()
        };
        println!(
            "{id:<48} time: [{} {} {}]{note}",
            format_ns(min),
            format_ns(med),
            format_ns(max)
        );
        append_json_result(id, med);
    }
}

/// Environment variable naming the machine-readable results file.
const JSON_ENV: &str = "MITOSIS_BENCH_JSON";

/// Reports a non-timing scalar (a modelled-work counter, a ratio) under a
/// bench id: printed alongside the timing lines and appended to the
/// `MITOSIS_BENCH_JSON` file in the same `median_ns` slot, so downstream
/// tooling (`scripts/bench_gate`) can baseline it and check relational
/// invariants without a second file format.
pub fn report_metric(id: &str, value: f64) {
    println!("{id:<48} metric: {value}");
    append_json_result(id, value);
}

/// Appends `{"bench":"<id>","median_ns":<median>}` to the file named by
/// `MITOSIS_BENCH_JSON`, if set.  Best effort: a benchmark run never fails
/// because the results file is unwritable (a warning is printed instead).
fn append_json_result(id: &str, median_ns: f64) {
    let Ok(path) = std::env::var(JSON_ENV) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let entry = format!("{{\"bench\":{:?},\"median_ns\":{median_ns:.1}}}\n", id);
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| file.write_all(entry.as_bytes()));
    if let Err(error) = written {
        eprintln!("warning: could not append bench result to {path}: {error}");
    }
}

/// Median of a non-empty sample set.
fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Scale factor turning a median absolute deviation into a consistent
/// estimator of the standard deviation for normally distributed data.
const MAD_TO_SIGMA: f64 = 1.4826;

/// Samples farther than this many (MAD-estimated) standard deviations from
/// the median are considered outliers (scheduler preemptions, page-cache
/// hiccups) and excluded from the report.
const OUTLIER_SIGMAS: f64 = 3.0;

/// Returns the samples that survive MAD-based outlier rejection.
///
/// With fewer than three samples, or a zero MAD (at least half the samples
/// identical), every sample is retained.
fn reject_outliers(samples: &[f64]) -> Vec<f64> {
    if samples.len() < 3 {
        return samples.to_vec();
    }
    let med = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
    let mad = median(&deviations);
    if mad == 0.0 {
        return samples.to_vec();
    }
    let cutoff = OUTLIER_SIGMAS * MAD_TO_SIGMA * mad;
    samples
        .iter()
        .cloned()
        .filter(|s| (s - med).abs() <= cutoff)
        .collect()
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing configuration shared by [`Criterion`] and benchmark groups.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Config {
    /// Environment variable that turns every benchmark into a smoke test.
    pub(crate) const QUICK_ENV: &'static str = "MITOSIS_BENCH_QUICK";

    /// The configuration actually used for timing: in quick mode
    /// (`MITOSIS_BENCH_QUICK` set and non-empty), sample counts and budgets
    /// are clamped down regardless of what the benchmark requested.
    fn effective(&self) -> Config {
        if std::env::var(Self::QUICK_ENV).is_ok_and(|v| !v.is_empty()) {
            Config {
                sample_size: self.sample_size.min(5),
                warm_up_time: self.warm_up_time.min(Duration::from_millis(20)),
                measurement_time: self.measurement_time.min(Duration::from_millis(100)),
            }
        } else {
            self.clone()
        }
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    config: Config,
    samples: Samples,
}

impl Bencher {
    /// Times `routine` called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.record(start.elapsed(), iters_per_sample);
        }
    }

    /// Times `routine` on inputs produced by `setup`; only `routine` is
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call, then one timed routine call per sample: the
        // workspace only uses batched mode for routines that are expensive
        // enough (tree replication, VMA syscalls) to time individually.
        black_box(routine(setup()));
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.record(start.elapsed(), 1);
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.config.sample_size = samples;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.config.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.config.measurement_time = duration;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            config: self.config.effective(),
            samples: Samples::default(),
        };
        f(&mut bencher);
        bencher.samples.report(&id);
        self
    }

    /// Finishes the group (reporting happens per benchmark; this exists for
    /// API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: self.config.effective(),
            samples: Samples::default(),
        };
        f(&mut bencher);
        bencher.samples.report(&id.into());
        self
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_the_configured_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 5, "routine ran during warm-up and sampling");
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut criterion = Criterion::default();
        let mut setups = 0u64;
        let mut runs = 0u64;
        criterion.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs > 1);
    }

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn mad_rejection_drops_only_the_outlier() {
        // Nine tight samples and one 100x scheduler hiccup.
        let mut samples = vec![10.0, 10.1, 9.9, 10.2, 9.8, 10.0, 10.1, 9.9, 10.0];
        samples.push(1000.0);
        let retained = reject_outliers(&samples);
        assert_eq!(retained.len(), 9);
        assert!(retained.iter().all(|s| *s < 11.0));
        // The reported median is unaffected by the hiccup.
        assert!((median(&retained) - 10.0).abs() < 0.2);
    }

    #[test]
    fn mad_rejection_keeps_everything_when_spread_is_zero_or_tiny() {
        // Identical samples: MAD is zero, nothing can be judged an outlier.
        let flat = vec![5.0; 8];
        assert_eq!(reject_outliers(&flat).len(), 8);
        // Too few samples for a meaningful MAD.
        assert_eq!(reject_outliers(&[1.0, 100.0]).len(), 2);
    }

    /// Serialises the tests that mutate process-global environment
    /// variables: `set_var` concurrent with `var` reads from other test
    /// threads is undefined behaviour on glibc.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn quick_mode_clamps_the_config() {
        let _guard = ENV_LOCK.lock().unwrap();
        let config = Config {
            sample_size: 50,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        };
        // This test manipulates the environment; the var name is process
        // global, so restore it before returning.
        let saved = std::env::var(Config::QUICK_ENV).ok();
        std::env::set_var(Config::QUICK_ENV, "1");
        let quick = config.effective();
        assert!(quick.sample_size <= 5);
        assert!(quick.measurement_time <= Duration::from_millis(100));
        std::env::remove_var(Config::QUICK_ENV);
        let full = config.effective();
        assert_eq!(full.sample_size, 50);
        if let Some(v) = saved {
            std::env::set_var(Config::QUICK_ENV, v);
        }
    }

    #[test]
    fn json_results_are_appended_when_requested() {
        let _guard = ENV_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join(format!("mitosis_bench_json_{}", std::process::id()));
        let saved = std::env::var(JSON_ENV).ok();
        std::env::set_var(JSON_ENV, &path);
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("gate");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        group.bench_function("example", |b| b.iter(|| 2 + 2));
        group.bench_function("second", |b| b.iter(|| 3 + 3));
        group.finish();
        match saved {
            Some(v) => std::env::set_var(JSON_ENV, v),
            None => std::env::remove_var(JSON_ENV),
        }
        let contents = std::fs::read_to_string(&path).expect("results file was written");
        std::fs::remove_file(&path).ok();
        // One JSON line per benchmark, appended in run order.  (Filter to
        // this test's group: concurrently running shim tests may also have
        // reported while the env var was set.)
        let lines: Vec<&str> = contents
            .lines()
            .filter(|line| line.contains("\"gate/"))
            .collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\":\"gate/example\""));
        assert!(lines[0].contains("\"median_ns\":"));
        assert!(lines[1].contains("\"bench\":\"gate/second\""));
    }

    #[test]
    fn nanosecond_formatting_picks_sane_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_300_000_000.0).ends_with('s'));
    }
}
