//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the benchmark
//! targets link this shim instead of the real Criterion.  It keeps the same
//! authoring surface — [`Criterion`], benchmark groups, `iter` /
//! `iter_batched`, the [`criterion_group!`] / [`criterion_main!`] macros —
//! and implements a straightforward timing loop: per benchmark it runs a
//! warm-up pass, takes `sample_size` wall-clock samples (each batching
//! enough iterations to be measurable), and prints the mean, minimum and
//! maximum time per iteration.  No statistical analysis, plotting or
//! baseline persistence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, like `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost over routine calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many routine calls per setup.
    SmallInput,
    /// Large inputs: few routine calls per setup.
    LargeInput,
    /// One setup per routine call (for routines that consume their input
    /// destructively and are expensive enough to time individually).
    PerIteration,
}

/// Collected timings for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Default)]
struct Samples {
    ns_per_iter: Vec<f64>,
}

impl Samples {
    fn record(&mut self, elapsed: Duration, iters: u64) {
        if iters > 0 {
            self.ns_per_iter
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.ns_per_iter.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        let mean = self.ns_per_iter.iter().sum::<f64>() / self.ns_per_iter.len() as f64;
        let min = self
            .ns_per_iter
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self
            .ns_per_iter
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{id:<48} time: [{} {} {}]",
            format_ns(min),
            format_ns(mean),
            format_ns(max)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing configuration shared by [`Criterion`] and benchmark groups.
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The per-benchmark timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher<'a> {
    config: &'a Config,
    samples: Samples,
}

impl Bencher<'_> {
    /// Times `routine` called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.record(start.elapsed(), iters_per_sample);
        }
    }

    /// Times `routine` on inputs produced by `setup`; only `routine` is
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One warm-up call, then one timed routine call per sample: the
        // workspace only uses batched mode for routines that are expensive
        // enough (tree replication, VMA syscalls) to time individually.
        black_box(routine(setup()));
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.record(start.elapsed(), 1);
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.config.sample_size = samples;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.config.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.config.measurement_time = duration;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher {
            config: &self.config,
            samples: Samples::default(),
        };
        f(&mut bencher);
        bencher.samples.report(&id);
        self
    }

    /// Finishes the group (reporting happens per benchmark; this exists for
    /// API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            config: &self.config,
            samples: Samples::default(),
        };
        f(&mut bencher);
        bencher.samples.report(&id.into());
        self
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_the_configured_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("counts", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 5, "routine ran during warm-up and sampling");
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut criterion = Criterion::default();
        let mut setups = 0u64;
        let mut runs = 0u64;
        criterion.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 16]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::PerIteration,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs > 1);
    }

    #[test]
    fn nanosecond_formatting_picks_sane_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2_300_000_000.0).ends_with('s'));
    }
}
