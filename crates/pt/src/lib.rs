//! x86-64 page-table substrate for the Mitosis reproduction.
//!
//! This crate models the radix page tables the paper's mechanism operates on,
//! together with the interception layer (Linux PV-Ops) Mitosis hooks:
//!
//! * [`VirtAddr`], [`PageSize`], [`Level`] — address arithmetic for the
//!   4-level x86-64 paging scheme (with 2 MiB and 1 GiB large pages).
//! * [`Pte`], [`PteFlags`] — page-table entries with present / writable /
//!   accessed / dirty / huge bits.
//! * [`PtStore`] — the contents of page-table pages in "physical memory"
//!   (512 entries per 4 KiB page-table frame).
//! * [`PvOps`] — the paravirtualised page-table interface (alloc / free /
//!   `set_pte` / root switch).  [`NativePvOps`] writes a single page-table;
//!   the Mitosis backend in the `mitosis` crate propagates writes to every
//!   replica via the circular replica list.
//! * [`Mapper`] — software map/unmap/protect/translate operations used by
//!   the virtual memory subsystem, always going through [`PvOps`].
//! * [`MappingTx`], [`ShootdownPlan`] — deferred TLB-consistency work: the
//!   exact page ranges, sizes and address spaces a batch of mutations
//!   invalidates, accumulated and flushed once (ranged shootdowns).
//! * [`PageTableDump`] — the analysis "kernel module" of paper §3.1: walks a
//!   page table and reports, per level and per socket, how many page-table
//!   pages exist and where their entries point (Figures 3 and 4).
//!
//! # Example
//!
//! ```
//! use mitosis_numa::{MachineConfig, SocketId};
//! use mitosis_pt::{Mapper, NativePvOps, PtContext, PteFlags, PageSize, VirtAddr, PtEnv};
//!
//! let machine = MachineConfig::two_socket_small().build();
//! let mut env = PtEnv::new(&machine);
//! let mut ops = NativePvOps::new();
//! let socket = SocketId::new(0);
//!
//! // Create an address space rooted on socket 0 and map one page.
//! let mut ctx = env.context();
//! let roots = Mapper::create_roots(&mut ops, &mut ctx, socket, Default::default())?;
//! let data = ctx.alloc.alloc_on(socket)?;
//! Mapper::new(&roots).map(
//!     &mut ops,
//!     &mut ctx,
//!     VirtAddr::new(0x4000_0000),
//!     data,
//!     PageSize::Base4K,
//!     PteFlags::user_data(),
//!     socket,
//!     Default::default(),
//! )?;
//! let translated = Mapper::new(&roots).translate(&ctx, VirtAddr::new(0x4000_0000));
//! assert_eq!(translated.unwrap().frame, data);
//! # Ok::<(), mitosis_pt::PtError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod dump;
mod entry;
mod error;
mod mapper;
mod ops;
mod store;
mod tx;
mod walk;

pub use addr::{Level, PageSize, VirtAddr, ENTRIES_PER_TABLE};
pub use dump::{DumpLevelSocket, PageTableDump, PteLocality};
pub use entry::{Pte, PteFlags};
pub use error::PtError;
pub use mapper::{Mapper, PtRoots};
pub use ops::{
    NativePvOps, PtContext, PtEnv, PtOpStats, PvOps, ReplicationSpec, DEFAULT_PAGE_CACHE_TARGET,
};
pub use store::{PtSlot, PtStore};
pub use tx::{MappingTx, ShootdownPlan, ShootdownRange};
pub use walk::{iter_leaf_mappings, translate, LeafMapping, Translation};
