//! The paravirtualised page-table interface (PV-Ops).
//!
//! Linux routes page-table allocation, freeing and entry writes through the
//! `paravirt_ops` indirection layer so hypervisors like Xen can intercept
//! them.  The paper implements Mitosis as a *new PV-Ops backend* next to the
//! native and Xen ones (paper §5.2, Listing 1).  This module defines the
//! equivalent interface for the simulator:
//!
//! * [`PvOps`] — the trait the virtual memory subsystem calls for every
//!   page-table mutation;
//! * [`NativePvOps`] — the pass-through backend (stock Linux behaviour);
//! * the Mitosis backend lives in the `mitosis` crate and propagates every
//!   write to all replicas.
//!
//! [`PtEnv`]/[`PtContext`] bundle the physical-memory state every backend
//! needs (page-table contents, frame metadata, allocator and per-socket page
//! cache) so that backends themselves stay stateless apart from statistics.

use crate::addr::Level;
use crate::entry::Pte;
use crate::error::PtError;
use crate::mapper::PtRoots;
use crate::store::PtStore;
use mitosis_mem::{FrameAllocator, FrameId, FrameKind, FrameTable, PageCache};
use mitosis_numa::{Machine, NodeMask, SocketId};

/// Number of page-table frames each socket keeps in reserve by default.
/// Corresponds to the sysctl knob of paper §5.1.
pub const DEFAULT_PAGE_CACHE_TARGET: usize = 64;

/// Replication request attached to an address space.
///
/// An empty mask means "no replication" (native behaviour).  A non-empty mask
/// requests one page-table replica on every socket in the mask, which is what
/// `numa_set_pgtable_replication_mask` installs in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicationSpec {
    mask: NodeMask,
}

impl ReplicationSpec {
    /// No replication: a single page-table, as in stock Linux.
    pub fn none() -> Self {
        ReplicationSpec {
            mask: NodeMask::EMPTY,
        }
    }

    /// Replicate page-tables on every socket in `mask`.
    pub fn on(mask: NodeMask) -> Self {
        ReplicationSpec { mask }
    }

    /// Replicate page-tables on every socket of an `n`-socket machine.
    pub fn all_sockets(n: usize) -> Self {
        ReplicationSpec {
            mask: NodeMask::all(n),
        }
    }

    /// The replication mask.
    pub fn mask(&self) -> NodeMask {
        self.mask
    }

    /// Returns `true` if replication is requested (non-empty mask).
    pub fn is_enabled(&self) -> bool {
        !self.mask.is_empty()
    }

    /// Returns the sockets replicas should exist on.
    pub fn sockets(&self) -> Vec<SocketId> {
        self.mask.iter().collect()
    }
}

/// Counters describing the page-table work a backend has performed.
///
/// The paper's Table 5 (VMA-operation overheads) is derived from these: with
/// 4-way replication every `set_pte` turns into four entry writes plus the
/// replica-ring traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PtOpStats {
    /// Page-table entry writes performed on primary tables.
    pub pte_writes: u64,
    /// Additional entry writes performed on replicas.
    pub replica_pte_writes: u64,
    /// Reads of the replica ring performed to locate replicas.
    pub replica_ring_reads: u64,
    /// Page-table pages allocated (including replicas).
    pub tables_allocated: u64,
    /// Page-table pages freed (including replicas).
    pub tables_freed: u64,
}

impl PtOpStats {
    /// Total memory references attributable to page-table maintenance,
    /// in units of one entry access.
    pub fn total_references(&self) -> u64 {
        self.pte_writes + self.replica_pte_writes + self.replica_ring_reads
    }
}

/// Owner of all physical page-table state: contents, frame metadata,
/// allocator and the per-socket page cache.
#[derive(Debug, Clone)]
pub struct PtEnv {
    /// Contents of page-table pages.
    pub store: PtStore,
    /// Per-frame metadata (`struct page`), including replica rings.
    pub frames: FrameTable,
    /// The machine's frame allocator.
    pub alloc: FrameAllocator,
    /// Per-socket reserves for page-table frames.
    pub page_cache: PageCache,
}

impl PtEnv {
    /// Creates the environment for a machine, with the default page-cache
    /// reserve target.
    pub fn new(machine: &Machine) -> Self {
        let alloc = FrameAllocator::new(machine);
        let frames = FrameTable::new(alloc.frame_space().clone());
        PtEnv {
            store: PtStore::new(),
            frames,
            alloc,
            page_cache: PageCache::new(machine.sockets(), DEFAULT_PAGE_CACHE_TARGET),
        }
    }

    /// Borrows every component as a [`PtContext`] for use by a backend.
    pub fn context(&mut self) -> PtContext<'_> {
        PtContext {
            store: &mut self.store,
            frames: &mut self.frames,
            alloc: &mut self.alloc,
            page_cache: &mut self.page_cache,
        }
    }
}

/// Mutable view of the page-table environment handed to [`PvOps`] calls.
#[derive(Debug)]
pub struct PtContext<'a> {
    /// Contents of page-table pages.
    pub store: &'a mut PtStore,
    /// Per-frame metadata (`struct page`), including replica rings.
    pub frames: &'a mut FrameTable,
    /// The machine's frame allocator.
    pub alloc: &'a mut FrameAllocator,
    /// Per-socket reserves for page-table frames.
    pub page_cache: &'a mut PageCache,
}

/// The paravirtualised page-table operations interface.
///
/// Every page-table mutation the virtual memory subsystem performs goes
/// through this trait, exactly as Linux routes them through PV-Ops.  The
/// native backend writes one table; the Mitosis backend keeps all replicas
/// consistent.
///
/// Backends are plain state machines over the [`PtContext`] they are handed
/// — `Send + Sync` so a prepared system snapshot (which owns its backend)
/// can be shared across replay worker threads, and [`PvOps::clone_box`] so
/// such a snapshot can be cloned without knowing the concrete backend type.
pub trait PvOps: std::fmt::Debug + Send + Sync {
    /// Allocates a page-table page at `level`, homed on `socket`.
    ///
    /// With replication enabled the backend additionally allocates one
    /// replica per socket in the replication mask and links them into a
    /// circular list; the returned frame is the replica on `socket` when one
    /// exists there.
    ///
    /// # Errors
    ///
    /// Returns an error if physical memory (or the per-socket page cache) is
    /// exhausted.
    fn alloc_table(
        &mut self,
        ctx: &mut PtContext<'_>,
        level: Level,
        socket: SocketId,
        repl: &ReplicationSpec,
    ) -> Result<FrameId, PtError>;

    /// Releases a page-table page and every replica linked to it.
    ///
    /// # Errors
    ///
    /// Returns an error if a frame was not allocated (double free).
    fn release_table(&mut self, ctx: &mut PtContext<'_>, frame: FrameId) -> Result<(), PtError>;

    /// Writes the entry at `index` of `table`, propagating to replicas.
    fn set_pte(&mut self, ctx: &mut PtContext<'_>, table: FrameId, index: usize, pte: Pte);

    /// Reads the entry at `index` of `table`.  Accessed/dirty bits reflect
    /// every replica (logical OR), as the paper's extended PV-Ops getters do.
    fn read_pte(&self, ctx: &PtContext<'_>, table: FrameId, index: usize) -> Pte;

    /// Clears accessed and dirty bits of the entry in `table` and all its
    /// replicas.
    fn clear_accessed_dirty(&mut self, ctx: &mut PtContext<'_>, table: FrameId, index: usize);

    /// Selects the page-table root a core on `socket` should load into CR3.
    fn select_root(&self, roots: &PtRoots, socket: SocketId) -> FrameId {
        roots.root_for_socket(socket)
    }

    /// Statistics accumulated since creation or the last reset.
    fn stats(&self) -> PtOpStats;

    /// Resets the statistics counters.
    fn reset_stats(&mut self);

    /// Clones the backend (including accumulated statistics) into a new
    /// box — the object-safe hook behind `Box<dyn PvOps>: Clone`, which is
    /// what lets a whole [`System`](../mitosis_vmm) be snapshotted.
    fn clone_box(&self) -> Box<dyn PvOps>;
}

impl Clone for Box<dyn PvOps> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The pass-through PV-Ops backend: stock Linux behaviour, one page-table per
/// process, no replication.
#[derive(Debug, Clone, Default)]
pub struct NativePvOps {
    stats: PtOpStats,
}

impl NativePvOps {
    /// Creates a native backend.
    pub fn new() -> Self {
        NativePvOps::default()
    }
}

impl PvOps for NativePvOps {
    fn alloc_table(
        &mut self,
        ctx: &mut PtContext<'_>,
        level: Level,
        socket: SocketId,
        _repl: &ReplicationSpec,
    ) -> Result<FrameId, PtError> {
        let frame = ctx.page_cache.alloc_pagetable_frame(ctx.alloc, socket)?;
        ctx.frames.insert(
            frame,
            FrameKind::PageTable {
                level: level.number(),
            },
        );
        ctx.store.insert_table(frame);
        self.stats.tables_allocated += 1;
        Ok(frame)
    }

    fn release_table(&mut self, ctx: &mut PtContext<'_>, frame: FrameId) -> Result<(), PtError> {
        ctx.store.remove_table(frame);
        ctx.frames.remove(frame);
        ctx.page_cache.release_pagetable_frame(ctx.alloc, frame)?;
        self.stats.tables_freed += 1;
        Ok(())
    }

    fn set_pte(&mut self, ctx: &mut PtContext<'_>, table: FrameId, index: usize, pte: Pte) {
        ctx.store.write(table, index, pte);
        self.stats.pte_writes += 1;
    }

    fn read_pte(&self, ctx: &PtContext<'_>, table: FrameId, index: usize) -> Pte {
        ctx.store.read(table, index)
    }

    fn clear_accessed_dirty(&mut self, ctx: &mut PtContext<'_>, table: FrameId, index: usize) {
        let slot = ctx.store.slot(table);
        let pte = ctx.store.read_at(slot, index);
        if pte.is_present() {
            ctx.store.write_at(slot, index, pte.with_ad_cleared());
            self.stats.pte_writes += 1;
        }
    }

    fn stats(&self) -> PtOpStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = PtOpStats::default();
    }

    fn clone_box(&self) -> Box<dyn PvOps> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PteFlags;
    use mitosis_numa::MachineConfig;

    fn env() -> PtEnv {
        PtEnv::new(&MachineConfig::two_socket_small().build())
    }

    #[test]
    fn native_alloc_places_table_on_requested_socket() {
        let mut env = env();
        let mut ops = NativePvOps::new();
        let mut ctx = env.context();
        let frame = ops
            .alloc_table(
                &mut ctx,
                Level::L4,
                SocketId::new(1),
                &ReplicationSpec::none(),
            )
            .unwrap();
        assert_eq!(ctx.frames.socket_of(frame), SocketId::new(1));
        assert_eq!(
            ctx.frames.kind(frame),
            Some(FrameKind::PageTable { level: 4 })
        );
        assert!(ctx.store.contains(frame));
        assert_eq!(ops.stats().tables_allocated, 1);
    }

    #[test]
    fn native_set_and_read_pte() {
        let mut env = env();
        let mut ops = NativePvOps::new();
        let mut ctx = env.context();
        let table = ops
            .alloc_table(
                &mut ctx,
                Level::L1,
                SocketId::new(0),
                &ReplicationSpec::none(),
            )
            .unwrap();
        let data = ctx.alloc.alloc_on(SocketId::new(0)).unwrap();
        ops.set_pte(&mut ctx, table, 7, Pte::new(data, PteFlags::user_data()));
        assert_eq!(ops.read_pte(&ctx, table, 7).frame(), Some(data));
        assert_eq!(ops.stats().pte_writes, 1);
        assert_eq!(ops.stats().replica_pte_writes, 0);
    }

    #[test]
    fn native_clear_accessed_dirty() {
        let mut env = env();
        let mut ops = NativePvOps::new();
        let mut ctx = env.context();
        let table = ops
            .alloc_table(
                &mut ctx,
                Level::L1,
                SocketId::new(0),
                &ReplicationSpec::none(),
            )
            .unwrap();
        let data = ctx.alloc.alloc_on(SocketId::new(0)).unwrap();
        ops.set_pte(
            &mut ctx,
            table,
            0,
            Pte::new(data, PteFlags::user_data())
                .with_accessed()
                .with_dirty(),
        );
        ops.clear_accessed_dirty(&mut ctx, table, 0);
        let pte = ops.read_pte(&ctx, table, 0);
        assert!(!pte.flags().accessed);
        assert!(!pte.flags().dirty);
        // Clearing an empty entry is a no-op.
        ops.clear_accessed_dirty(&mut ctx, table, 1);
    }

    #[test]
    fn native_release_returns_frame() {
        let mut env = env();
        let mut ops = NativePvOps::new();
        let mut ctx = env.context();
        let table = ops
            .alloc_table(
                &mut ctx,
                Level::L2,
                SocketId::new(0),
                &ReplicationSpec::none(),
            )
            .unwrap();
        ops.release_table(&mut ctx, table).unwrap();
        assert!(!ctx.store.contains(table));
        assert_eq!(ctx.frames.kind(table), None);
        assert_eq!(ops.stats().tables_freed, 1);
    }

    #[test]
    fn replication_spec_accessors() {
        assert!(!ReplicationSpec::none().is_enabled());
        let spec = ReplicationSpec::all_sockets(4);
        assert!(spec.is_enabled());
        assert_eq!(spec.sockets().len(), 4);
        assert_eq!(spec.mask(), NodeMask::all(4));
        let single = ReplicationSpec::on(NodeMask::single(SocketId::new(2)));
        assert_eq!(single.sockets(), vec![SocketId::new(2)]);
    }

    #[test]
    fn stats_reset() {
        let mut ops = NativePvOps::new();
        ops.stats.pte_writes = 5;
        ops.reset_stats();
        assert_eq!(ops.stats().total_references(), 0);
    }
}
