//! Software page-table construction and modification.
//!
//! The [`Mapper`] is the piece of the virtual memory subsystem that builds
//! and edits radix page-tables.  Every mutation goes through the [`PvOps`]
//! backend, which is what lets Mitosis transparently keep replicas in sync.

use crate::addr::{Level, PageSize, VirtAddr};
use crate::entry::{Pte, PteFlags};
use crate::error::PtError;
use crate::ops::{PtContext, PvOps, ReplicationSpec};
use crate::walk::{self, LeafMapping, Translation};
use mitosis_mem::FrameId;
use mitosis_numa::SocketId;

/// The per-socket page-table roots of one address space.
///
/// Without replication every socket shares the base root (stock Linux: one
/// CR3 value per process).  With Mitosis, socket `s` points at the root
/// replica that lives on socket `s` (paper §5.3), and the scheduler loads
/// that value on context switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PtRoots {
    base: FrameId,
    per_socket: Vec<FrameId>,
}

impl PtRoots {
    /// Creates roots for an `sockets`-socket machine, all referring to the
    /// single base root.
    pub fn single(base: FrameId, sockets: usize) -> Self {
        PtRoots {
            base,
            per_socket: vec![base; sockets],
        }
    }

    /// The base (original) root.
    pub fn base(&self) -> FrameId {
        self.base
    }

    /// Number of sockets this root array covers.
    pub fn sockets(&self) -> usize {
        self.per_socket.len()
    }

    /// The root a core on `socket` should use.
    pub fn root_for_socket(&self, socket: SocketId) -> FrameId {
        self.per_socket[socket.index()]
    }

    /// Installs a per-socket root (used when replicas are created).
    pub fn set_root_for_socket(&mut self, socket: SocketId, root: FrameId) {
        self.per_socket[socket.index()] = root;
    }

    /// Resets every socket to the base root (replicas torn down).
    pub fn reset_to_base(&mut self) {
        let base = self.base;
        for entry in &mut self.per_socket {
            *entry = base;
        }
    }

    /// Changes the base root (used by page-table migration when the original
    /// replica is freed and a replica on another socket becomes primary).
    pub fn set_base(&mut self, base: FrameId) {
        self.base = base;
    }

    /// Returns the distinct roots currently installed.
    pub fn distinct_roots(&self) -> Vec<FrameId> {
        let mut roots = self.per_socket.clone();
        roots.push(self.base);
        roots.sort();
        roots.dedup();
        roots
    }
}

/// Software operations on one address space's page tables.
///
/// `Mapper` is a thin, borrowing view over a [`PtRoots`]; all state lives in
/// the [`PtContext`] and the backend.
#[derive(Debug, Clone, Copy)]
pub struct Mapper<'a> {
    roots: &'a PtRoots,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper over the given roots.
    pub fn new(roots: &'a PtRoots) -> Self {
        Mapper { roots }
    }

    /// Allocates a root (L4) table homed on `socket` and returns the root
    /// array for the machine.  With replication enabled, per-socket roots
    /// point at the root replicas.
    ///
    /// # Errors
    ///
    /// Returns an error if physical memory is exhausted.
    pub fn create_roots(
        ops: &mut dyn PvOps,
        ctx: &mut PtContext<'_>,
        socket: SocketId,
        repl: ReplicationSpec,
    ) -> Result<PtRoots, PtError> {
        let base = ops.alloc_table(ctx, Level::L4, socket, &repl)?;
        let sockets = ctx.frames.frame_space().sockets();
        let mut roots = PtRoots::single(base, sockets);
        for s in 0..sockets {
            let socket_id = SocketId::new(s as u16);
            if let Some(replica) = ctx.frames.replica_on_socket(base, socket_id) {
                roots.set_root_for_socket(socket_id, replica);
            }
        }
        Ok(roots)
    }

    /// Maps `size` bytes of virtual memory at `addr` to the physical page
    /// starting at `frame`.
    ///
    /// Intermediate page-table pages are allocated on `pt_socket` (subject to
    /// the backend's replication behaviour).
    ///
    /// # Errors
    ///
    /// * [`PtError::Misaligned`] if `addr` is not `size`-aligned,
    /// * [`PtError::AlreadyMapped`] if any part of the range is mapped,
    /// * allocation errors from the backend.
    #[allow(clippy::too_many_arguments)]
    pub fn map(
        &self,
        ops: &mut dyn PvOps,
        ctx: &mut PtContext<'_>,
        addr: VirtAddr,
        frame: FrameId,
        size: PageSize,
        flags: PteFlags,
        pt_socket: SocketId,
        repl: ReplicationSpec,
    ) -> Result<(), PtError> {
        if !addr.is_aligned(size) {
            return Err(PtError::Misaligned { addr, size });
        }
        let leaf_level = size.mapped_at();
        let table = self.walk_alloc(ops, ctx, addr, leaf_level, pt_socket, &repl)?;
        let index = addr.index_at(leaf_level);
        if ops.read_pte(ctx, table, index).is_present() {
            return Err(PtError::AlreadyMapped { addr });
        }
        let flags = if size == PageSize::Base4K {
            PteFlags {
                huge: false,
                ..flags
            }
        } else {
            PteFlags {
                huge: true,
                ..flags
            }
        };
        ops.set_pte(ctx, table, index, Pte::new(frame, flags));
        Ok(())
    }

    /// Removes the mapping of the page containing `addr` and returns the old
    /// leaf entry.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if the address is not mapped.
    pub fn unmap(
        &self,
        ops: &mut dyn PvOps,
        ctx: &mut PtContext<'_>,
        addr: VirtAddr,
    ) -> Result<Pte, PtError> {
        let (table, index, old) = self.find_leaf(ops, ctx, addr)?;
        ops.set_pte(ctx, table, index, Pte::EMPTY);
        Ok(old)
    }

    /// Rewrites the protection flags of the page containing `addr`, keeping
    /// the frame and large-page bit.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if the address is not mapped.
    pub fn protect(
        &self,
        ops: &mut dyn PvOps,
        ctx: &mut PtContext<'_>,
        addr: VirtAddr,
        flags: PteFlags,
    ) -> Result<(), PtError> {
        let (table, index, old) = self.find_leaf(ops, ctx, addr)?;
        let flags = PteFlags {
            huge: old.is_huge(),
            accessed: old.flags().accessed,
            dirty: old.flags().dirty,
            ..flags
        };
        ops.set_pte(ctx, table, index, old.with_flags(flags));
        Ok(())
    }

    /// Reads the leaf entry mapping `addr` through the backend, so that
    /// accessed/dirty bits are consolidated across replicas.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if the address is not mapped.
    pub fn read_leaf(
        &self,
        ops: &dyn PvOps,
        ctx: &PtContext<'_>,
        addr: VirtAddr,
    ) -> Result<Pte, PtError> {
        let (_, _, pte) = self.find_leaf_readonly(ops, ctx, addr)?;
        Ok(pte)
    }

    /// Clears accessed/dirty bits of the leaf entry mapping `addr` in every
    /// replica.
    ///
    /// # Errors
    ///
    /// Returns [`PtError::NotMapped`] if the address is not mapped.
    pub fn clear_leaf_accessed_dirty(
        &self,
        ops: &mut dyn PvOps,
        ctx: &mut PtContext<'_>,
        addr: VirtAddr,
    ) -> Result<(), PtError> {
        let (table, index, _) = self.find_leaf(ops, ctx, addr)?;
        ops.clear_accessed_dirty(ctx, table, index);
        Ok(())
    }

    /// Translates `addr` in software using the base root.
    pub fn translate(&self, ctx: &PtContext<'_>, addr: VirtAddr) -> Option<Translation> {
        walk::translate(ctx.store, self.roots.base(), addr)
    }

    /// Translates `addr` in software using the root installed for `socket`
    /// (i.e. what the hardware on that socket would walk).
    pub fn translate_from_socket(
        &self,
        ctx: &PtContext<'_>,
        socket: SocketId,
        addr: VirtAddr,
    ) -> Option<Translation> {
        walk::translate(ctx.store, self.roots.root_for_socket(socket), addr)
    }

    /// Enumerates every leaf mapping of the address space (base root).
    pub fn leaf_mappings(&self, ctx: &PtContext<'_>) -> Vec<LeafMapping> {
        walk::iter_leaf_mappings(ctx.store, self.roots.base())
    }

    /// The roots this mapper operates on.
    pub fn roots(&self) -> &PtRoots {
        self.roots
    }

    // ------------------------------------------------------------------

    /// Walks from the base root to the table at `target_level` covering
    /// `addr`, allocating missing intermediate tables.
    fn walk_alloc(
        &self,
        ops: &mut dyn PvOps,
        ctx: &mut PtContext<'_>,
        addr: VirtAddr,
        target_level: Level,
        pt_socket: SocketId,
        repl: &ReplicationSpec,
    ) -> Result<FrameId, PtError> {
        let mut table = self.roots.base();
        let mut level = Level::L4;
        while level != target_level {
            let index = addr.index_at(level);
            let entry = ops.read_pte(ctx, table, index);
            let next_level = level
                .next_lower()
                .expect("walk never descends below the leaf level");
            let child = if entry.is_present() {
                if entry.is_huge() {
                    return Err(PtError::AlreadyMapped { addr });
                }
                entry.frame().expect("present table entry has a frame")
            } else {
                let child = ops.alloc_table(ctx, next_level, pt_socket, repl)?;
                ops.set_pte(
                    ctx,
                    table,
                    index,
                    Pte::new(child, PteFlags::table_pointer()),
                );
                child
            };
            table = child;
            level = next_level;
        }
        Ok(table)
    }

    /// Finds the leaf entry covering `addr` starting from the base root.
    fn find_leaf(
        &self,
        ops: &dyn PvOps,
        ctx: &PtContext<'_>,
        addr: VirtAddr,
    ) -> Result<(FrameId, usize, Pte), PtError> {
        self.find_leaf_readonly(ops, ctx, addr)
    }

    fn find_leaf_readonly(
        &self,
        ops: &dyn PvOps,
        ctx: &PtContext<'_>,
        addr: VirtAddr,
    ) -> Result<(FrameId, usize, Pte), PtError> {
        let mut table = self.roots.base();
        for level in Level::WALK_ORDER {
            let index = addr.index_at(level);
            let entry = ops.read_pte(ctx, table, index);
            if !entry.is_present() {
                return Err(PtError::NotMapped { addr });
            }
            if level == Level::L1 || entry.is_huge() {
                return Ok((table, index, entry));
            }
            table = entry.frame().expect("present table entry has a frame");
        }
        Err(PtError::NotMapped { addr })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{NativePvOps, PtEnv};
    use mitosis_numa::MachineConfig;

    fn setup() -> (PtEnv, NativePvOps) {
        (
            PtEnv::new(&MachineConfig::two_socket_small().build()),
            NativePvOps::new(),
        )
    }

    #[test]
    fn map_translate_unmap_roundtrip() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let data = ctx.alloc.alloc_on(socket).unwrap();
        let mapper = Mapper::new(&roots);
        let addr = VirtAddr::new(0x7000_0000);
        mapper
            .map(
                &mut ops,
                &mut ctx,
                addr,
                data,
                PageSize::Base4K,
                PteFlags::user_data(),
                socket,
                ReplicationSpec::none(),
            )
            .unwrap();
        let t = mapper.translate(&ctx, addr).unwrap();
        assert_eq!(t.frame, data);
        assert_eq!(t.size, PageSize::Base4K);
        // Four tables: L4, L3, L2, L1.
        assert_eq!(ctx.store.table_count(), 4);

        let old = mapper.unmap(&mut ops, &mut ctx, addr).unwrap();
        assert_eq!(old.frame(), Some(data));
        assert!(mapper.translate(&ctx, addr).is_none());
    }

    #[test]
    fn double_map_is_rejected() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let mapper = Mapper::new(&roots);
        let data = ctx.alloc.alloc_on(socket).unwrap();
        let addr = VirtAddr::new(0x1000_0000);
        mapper
            .map(
                &mut ops,
                &mut ctx,
                addr,
                data,
                PageSize::Base4K,
                PteFlags::user_data(),
                socket,
                ReplicationSpec::none(),
            )
            .unwrap();
        let err = mapper
            .map(
                &mut ops,
                &mut ctx,
                addr,
                data,
                PageSize::Base4K,
                PteFlags::user_data(),
                socket,
                ReplicationSpec::none(),
            )
            .unwrap_err();
        assert_eq!(err, PtError::AlreadyMapped { addr });
    }

    #[test]
    fn huge_page_mapping_uses_three_levels() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let mapper = Mapper::new(&roots);
        let huge = ctx.alloc.alloc_huge_on(socket).unwrap();
        let addr = VirtAddr::new(0x4000_0000);
        mapper
            .map(
                &mut ops,
                &mut ctx,
                addr,
                huge,
                PageSize::Huge2M,
                PteFlags::user_data(),
                socket,
                ReplicationSpec::none(),
            )
            .unwrap();
        // Only L4, L3 and L2 tables are needed.
        assert_eq!(ctx.store.table_count(), 3);
        let t = mapper.translate(&ctx, VirtAddr::new(0x4008_2000)).unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        assert!(t.pte.is_huge());
    }

    #[test]
    fn misaligned_map_is_rejected() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let mapper = Mapper::new(&roots);
        let data = ctx.alloc.alloc_on(socket).unwrap();
        let err = mapper
            .map(
                &mut ops,
                &mut ctx,
                VirtAddr::new(0x1000),
                data,
                PageSize::Huge2M,
                PteFlags::user_data(),
                socket,
                ReplicationSpec::none(),
            )
            .unwrap_err();
        assert!(matches!(err, PtError::Misaligned { .. }));
    }

    #[test]
    fn protect_changes_flags_but_keeps_frame() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let mapper = Mapper::new(&roots);
        let data = ctx.alloc.alloc_on(socket).unwrap();
        let addr = VirtAddr::new(0x2000_0000);
        mapper
            .map(
                &mut ops,
                &mut ctx,
                addr,
                data,
                PageSize::Base4K,
                PteFlags::user_data(),
                socket,
                ReplicationSpec::none(),
            )
            .unwrap();
        mapper
            .protect(&mut ops, &mut ctx, addr, PteFlags::user_readonly())
            .unwrap();
        let t = mapper.translate(&ctx, addr).unwrap();
        assert_eq!(t.frame, data);
        assert!(!t.pte.flags().writable);
        // Protect on an unmapped address errors.
        assert!(mapper
            .protect(
                &mut ops,
                &mut ctx,
                VirtAddr::new(0x9000_0000),
                PteFlags::user_readonly()
            )
            .is_err());
    }

    #[test]
    fn unmap_unmapped_address_errors() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let mapper = Mapper::new(&roots);
        assert_eq!(
            mapper.unmap(&mut ops, &mut ctx, VirtAddr::new(0x5000_0000)),
            Err(PtError::NotMapped {
                addr: VirtAddr::new(0x5000_0000)
            })
        );
    }

    #[test]
    fn roots_without_replication_all_point_to_base() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let roots = Mapper::create_roots(
            &mut ops,
            &mut ctx,
            SocketId::new(1),
            ReplicationSpec::none(),
        )
        .unwrap();
        assert_eq!(roots.root_for_socket(SocketId::new(0)), roots.base());
        assert_eq!(roots.root_for_socket(SocketId::new(1)), roots.base());
        assert_eq!(roots.distinct_roots().len(), 1);
        assert_eq!(ctx.frames.socket_of(roots.base()), SocketId::new(1));
    }

    #[test]
    fn leaf_mappings_enumeration_matches_maps() {
        let (mut env, mut ops) = setup();
        let mut ctx = env.context();
        let socket = SocketId::new(0);
        let roots =
            Mapper::create_roots(&mut ops, &mut ctx, socket, ReplicationSpec::none()).unwrap();
        let mapper = Mapper::new(&roots);
        for i in 0..8u64 {
            let data = ctx.alloc.alloc_on(socket).unwrap();
            mapper
                .map(
                    &mut ops,
                    &mut ctx,
                    VirtAddr::new(0x1_0000_0000 + i * 4096),
                    data,
                    PageSize::Base4K,
                    PteFlags::user_data(),
                    socket,
                    ReplicationSpec::none(),
                )
                .unwrap();
        }
        assert_eq!(mapper.leaf_mappings(&ctx).len(), 8);
    }
}
