//! Deferred TLB-consistency work: [`MappingTx`] and [`ShootdownPlan`].
//!
//! Every mapping-mutating path (unmap, protect, migrate, replication
//! resize...) invalidates some set of cached translations.  Instead of each
//! path broadcasting a full TLB flush, a [`MappingTx`] accumulates the exact
//! virtual-page ranges, page sizes and address-space identifiers a mutation
//! touches, plus the page-table frames it frees.  When the mutation batch is
//! complete the transaction is drained into a [`ShootdownPlan`] and applied
//! once: ranged `invalidate_range` against ASID-tagged TLBs and targeted
//! paging-structure / PTE-cache eviction (the deferred-ops idiom).

use crate::addr::{PageSize, VirtAddr};
use mitosis_mem::FrameId;

/// A contiguous run of same-size virtual pages whose cached translations
/// must be invalidated for one address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShootdownRange {
    /// Address-space identifier whose translations the run invalidates.
    pub asid: u16,
    /// First virtual page number of the run, in units of `size`.
    pub vpn_start: u64,
    /// Number of pages of `size` in the run.
    pub pages: u64,
    /// Page size of the invalidated translations.
    pub size: PageSize,
}

impl ShootdownRange {
    /// Virtual address of the first byte covered by the run.
    pub fn start(&self) -> VirtAddr {
        VirtAddr::new(self.vpn_start * self.size.bytes())
    }

    /// One-past-the-end virtual address of the run.
    pub fn end(&self) -> VirtAddr {
        VirtAddr::new((self.vpn_start + self.pages) * self.size.bytes())
    }
}

/// The drained output of a [`MappingTx`]: everything one shootdown must
/// invalidate, ready to be applied to each MMU and PTE-cache once.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShootdownPlan {
    /// Ranged TLB invalidations, in accumulation order.
    pub ranges: Vec<ShootdownRange>,
    /// Page-table frames freed by the mutation; their cached lines must be
    /// evicted from the PTE caches and paging-structure caches.
    pub tables: Vec<FrameId>,
    /// `true` when the mutation replaced whole page-table trees (replication
    /// resize, page-table migration): ranged invalidation cannot name every
    /// stale entry, so the plan escalates to a full flush.
    pub full_flush: bool,
}

impl ShootdownPlan {
    /// Returns `true` when the plan invalidates nothing.
    pub fn is_empty(&self) -> bool {
        !self.full_flush && self.ranges.is_empty() && self.tables.is_empty()
    }

    /// Total number of pages named by the ranged invalidations.
    pub fn pages(&self) -> u64 {
        self.ranges.iter().map(|r| r.pages).sum()
    }
}

/// A deferred-ops transaction accumulating the TLB-consistency work owed by
/// a batch of mapping mutations.
///
/// Mutating paths call [`invalidate_page`](MappingTx::invalidate_page) /
/// [`evict_table`](MappingTx::evict_table) as they go; adjacent pages of the
/// same size and address space coalesce into one [`ShootdownRange`], so a
/// region unmap records one range rather than thousands of entries.  The
/// engine drains the transaction with [`take_plan`](MappingTx::take_plan)
/// and applies the plan at the next shootdown point.
#[derive(Debug, Clone, Default)]
pub struct MappingTx {
    ranges: Vec<ShootdownRange>,
    tables: Vec<FrameId>,
    full_flush: bool,
}

impl MappingTx {
    /// Creates an empty transaction.
    pub fn new() -> Self {
        MappingTx::default()
    }

    /// Returns `true` when no work has been recorded.
    pub fn is_empty(&self) -> bool {
        !self.full_flush && self.ranges.is_empty() && self.tables.is_empty()
    }

    /// Records the invalidation of the page of `size` covering `addr` in
    /// address space `asid`, coalescing with the previous record when the
    /// pages are adjacent.
    pub fn invalidate_page(&mut self, asid: u16, addr: VirtAddr, size: PageSize) {
        let vpn = addr.page_number(size);
        if let Some(last) = self.ranges.last_mut() {
            if last.asid == asid && last.size == size {
                if vpn == last.vpn_start + last.pages {
                    last.pages += 1;
                    return;
                }
                if vpn >= last.vpn_start && vpn < last.vpn_start + last.pages {
                    return;
                }
            }
        }
        self.ranges.push(ShootdownRange {
            asid,
            vpn_start: vpn,
            pages: 1,
            size,
        });
    }

    /// Records the invalidation of every page of `size` in
    /// `[start, start + len)` for address space `asid`.
    pub fn invalidate_bytes(&mut self, asid: u16, start: VirtAddr, len: u64, size: PageSize) {
        if len == 0 {
            return;
        }
        let vpn_start = start.align_down(size).page_number(size);
        let vpn_end = start.add(len - 1).page_number(size) + 1;
        if let Some(last) = self.ranges.last_mut() {
            if last.asid == asid
                && last.size == size
                && vpn_start <= last.vpn_start + last.pages
                && vpn_end >= last.vpn_start
            {
                let merged_start = last.vpn_start.min(vpn_start);
                let merged_end = (last.vpn_start + last.pages).max(vpn_end);
                last.vpn_start = merged_start;
                last.pages = merged_end - merged_start;
                return;
            }
        }
        self.ranges.push(ShootdownRange {
            asid,
            vpn_start,
            pages: vpn_end - vpn_start,
            size,
        });
    }

    /// Records that page-table frame `table` was freed: its lines must leave
    /// the PTE caches and any paging-structure cache entries through it die
    /// with the ranges that walked it.
    pub fn evict_table(&mut self, table: FrameId) {
        self.tables.push(table);
    }

    /// Escalates the transaction to a full flush (whole page-table trees
    /// were replaced, e.g. by a replication resize).
    pub fn escalate_full(&mut self) {
        self.full_flush = true;
    }

    /// Drains the transaction into a [`ShootdownPlan`], leaving it empty.
    pub fn take_plan(&mut self) -> ShootdownPlan {
        ShootdownPlan {
            ranges: std::mem::take(&mut self.ranges),
            tables: std::mem::take(&mut self.tables),
            full_flush: std::mem::replace(&mut self.full_flush, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_pages_coalesce_into_one_range() {
        let mut tx = MappingTx::new();
        for page in 0..64u64 {
            tx.invalidate_page(3, VirtAddr::new(0x10_0000 + page * 4096), PageSize::Base4K);
        }
        let plan = tx.take_plan();
        assert_eq!(plan.ranges.len(), 1);
        assert_eq!(plan.ranges[0].pages, 64);
        assert_eq!(plan.ranges[0].asid, 3);
        assert_eq!(plan.pages(), 64);
        assert!(tx.is_empty());
    }

    #[test]
    fn different_asids_or_sizes_do_not_coalesce() {
        let mut tx = MappingTx::new();
        tx.invalidate_page(1, VirtAddr::new(0x1000), PageSize::Base4K);
        tx.invalidate_page(2, VirtAddr::new(0x2000), PageSize::Base4K);
        tx.invalidate_page(2, VirtAddr::new(0x40_0000), PageSize::Huge2M);
        let plan = tx.take_plan();
        assert_eq!(plan.ranges.len(), 3);
    }

    #[test]
    fn byte_ranges_cover_partial_pages_and_merge() {
        let mut tx = MappingTx::new();
        tx.invalidate_bytes(0, VirtAddr::new(0x1000), 4096 * 4 + 1, PageSize::Base4K);
        assert_eq!(
            tx.take_plan().ranges,
            vec![ShootdownRange {
                asid: 0,
                vpn_start: 1,
                pages: 5,
                size: PageSize::Base4K,
            }]
        );
        tx.invalidate_bytes(0, VirtAddr::new(0x1000), 4096, PageSize::Base4K);
        tx.invalidate_bytes(0, VirtAddr::new(0x2000), 4096, PageSize::Base4K);
        let plan = tx.take_plan();
        assert_eq!(plan.ranges.len(), 1);
        assert_eq!(plan.ranges[0].pages, 2);
        assert_eq!(plan.ranges[0].start(), VirtAddr::new(0x1000));
        assert_eq!(plan.ranges[0].end(), VirtAddr::new(0x3000));
    }

    #[test]
    fn escalation_and_tables_survive_into_the_plan() {
        let mut tx = MappingTx::new();
        assert!(tx.is_empty());
        tx.evict_table(FrameId::new(9));
        tx.escalate_full();
        assert!(!tx.is_empty());
        let plan = tx.take_plan();
        assert!(plan.full_flush);
        assert_eq!(plan.tables, vec![FrameId::new(9)]);
        assert!(!plan.is_empty());
        assert!(ShootdownPlan::default().is_empty());
    }

    #[test]
    fn duplicate_page_records_are_absorbed() {
        let mut tx = MappingTx::new();
        tx.invalidate_page(0, VirtAddr::new(0x5000), PageSize::Base4K);
        tx.invalidate_page(0, VirtAddr::new(0x5000), PageSize::Base4K);
        assert_eq!(tx.take_plan().ranges.len(), 1);
    }
}
