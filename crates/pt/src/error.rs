//! Error type for page-table operations.

use crate::addr::{PageSize, VirtAddr};
use mitosis_mem::MemError;
use std::error::Error;
use std::fmt;

/// Errors returned by page-table manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtError {
    /// The virtual address is already mapped (possibly by a larger page).
    AlreadyMapped {
        /// Address whose mapping collided.
        addr: VirtAddr,
    },
    /// The virtual address is not mapped.
    NotMapped {
        /// Address that was expected to be mapped.
        addr: VirtAddr,
    },
    /// The virtual address is not aligned to the requested page size.
    Misaligned {
        /// Offending address.
        addr: VirtAddr,
        /// Page size the operation required.
        size: PageSize,
    },
    /// A physical memory allocation failed.
    Mem(MemError),
}

impl fmt::Display for PtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtError::AlreadyMapped { addr } => write!(f, "address {addr} is already mapped"),
            PtError::NotMapped { addr } => write!(f, "address {addr} is not mapped"),
            PtError::Misaligned { addr, size } => {
                write!(f, "address {addr} is not aligned to {size}")
            }
            PtError::Mem(err) => write!(f, "physical memory error: {err}"),
        }
    }
}

impl Error for PtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PtError::Mem(err) => Some(err),
            _ => None,
        }
    }
}

impl From<MemError> for PtError {
    fn from(err: MemError) -> Self {
        PtError::Mem(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_numa::SocketId;

    #[test]
    fn messages_and_source_chain() {
        let err = PtError::from(MemError::OutOfMemory {
            socket: SocketId::new(1),
        });
        assert!(err.to_string().contains("physical memory error"));
        assert!(err.source().is_some());
        assert!(PtError::NotMapped {
            addr: VirtAddr::new(0x1000)
        }
        .source()
        .is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<E: Error + Send + Sync + 'static>() {}
        assert_bounds::<PtError>();
    }
}
