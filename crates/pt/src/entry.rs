//! Page-table entries.

use mitosis_mem::FrameId;
use std::fmt;

/// Software view of the architectural PTE flag bits the simulator models.
///
/// The layout follows x86-64: bit 0 present, bit 1 writable, bit 2 user,
/// bit 5 accessed, bit 6 dirty, bit 7 page-size (PS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags {
    /// Entry is valid.
    pub present: bool,
    /// Page may be written.
    pub writable: bool,
    /// Page is user-accessible.
    pub user: bool,
    /// Set by the hardware walker when the page is referenced.
    pub accessed: bool,
    /// Set by the hardware walker when the page is written.
    pub dirty: bool,
    /// Entry maps a large page directly (PS bit; only meaningful at L2/L3).
    pub huge: bool,
}

impl PteFlags {
    /// Flags for a user-space, writable data mapping.
    pub fn user_data() -> Self {
        PteFlags {
            present: true,
            writable: true,
            user: true,
            accessed: false,
            dirty: false,
            huge: false,
        }
    }

    /// Flags for a read-only user mapping (e.g. after `mprotect(PROT_READ)`).
    pub fn user_readonly() -> Self {
        PteFlags {
            writable: false,
            ..PteFlags::user_data()
        }
    }

    /// Flags for a non-leaf entry pointing to a lower-level page-table page.
    pub fn table_pointer() -> Self {
        PteFlags {
            present: true,
            writable: true,
            user: true,
            accessed: false,
            dirty: false,
            huge: false,
        }
    }

    /// Returns these flags with the huge (PS) bit set.
    pub fn huge_page(mut self) -> Self {
        self.huge = true;
        self
    }
}

/// A single page-table entry: flags plus the physical frame it refers to.
///
/// A non-present entry carries no frame.  For non-leaf entries the frame is a
/// page-table page; for leaf entries (L1, or L2/L3 with the huge bit) it is
/// the first frame of the mapped data page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte {
    flags: PteFlags,
    frame: Option<FrameId>,
}

impl Pte {
    /// The all-zero, non-present entry.
    pub const EMPTY: Pte = Pte {
        flags: PteFlags {
            present: false,
            writable: false,
            user: false,
            accessed: false,
            dirty: false,
            huge: false,
        },
        frame: None,
    };

    /// Creates a present entry referring to `frame` with the given flags.
    ///
    /// # Panics
    ///
    /// Panics if `flags.present` is false; use [`Pte::EMPTY`] for empty
    /// entries.
    pub fn new(frame: FrameId, flags: PteFlags) -> Self {
        assert!(flags.present, "present flag required for a mapped entry");
        Pte {
            flags,
            frame: Some(frame),
        }
    }

    /// Returns `true` if the entry is present (valid).
    pub fn is_present(self) -> bool {
        self.flags.present
    }

    /// Returns `true` if this is a large-page leaf entry (PS bit set).
    pub fn is_huge(self) -> bool {
        self.flags.huge
    }

    /// The frame the entry points to, if present.
    pub fn frame(self) -> Option<FrameId> {
        self.frame
    }

    /// The entry's flags.
    pub fn flags(self) -> PteFlags {
        self.flags
    }

    /// Returns a copy of the entry with different flags (same frame).
    pub fn with_flags(self, flags: PteFlags) -> Pte {
        Pte {
            flags,
            frame: self.frame,
        }
    }

    /// Returns a copy of the entry pointing at a different frame (same
    /// flags); used when propagating non-leaf entries to replicas, where the
    /// child pointer must be redirected to the same-socket child replica.
    pub fn with_frame(self, frame: FrameId) -> Pte {
        Pte {
            flags: self.flags,
            frame: Some(frame),
        }
    }

    /// Returns a copy with the accessed bit set.
    pub fn with_accessed(mut self) -> Pte {
        self.flags.accessed = true;
        self
    }

    /// Returns a copy with the dirty bit set.
    pub fn with_dirty(mut self) -> Pte {
        self.flags.dirty = true;
        self
    }

    /// Returns a copy with accessed and dirty bits cleared.
    pub fn with_ad_cleared(mut self) -> Pte {
        self.flags.accessed = false;
        self.flags.dirty = false;
        self
    }

    /// Encodes the entry into its 64-bit architectural representation.
    pub fn to_bits(self) -> u64 {
        let mut bits = 0u64;
        if self.flags.present {
            bits |= 1 << 0;
        }
        if self.flags.writable {
            bits |= 1 << 1;
        }
        if self.flags.user {
            bits |= 1 << 2;
        }
        if self.flags.accessed {
            bits |= 1 << 5;
        }
        if self.flags.dirty {
            bits |= 1 << 6;
        }
        if self.flags.huge {
            bits |= 1 << 7;
        }
        if let Some(frame) = self.frame {
            bits |= frame.pfn() << 12;
        }
        bits
    }

    /// Decodes an entry from its 64-bit architectural representation.
    pub fn from_bits(bits: u64) -> Self {
        let present = bits & 1 != 0;
        if !present {
            return Pte::EMPTY;
        }
        Pte {
            flags: PteFlags {
                present,
                writable: bits & (1 << 1) != 0,
                user: bits & (1 << 2) != 0,
                accessed: bits & (1 << 5) != 0,
                dirty: bits & (1 << 6) != 0,
                huge: bits & (1 << 7) != 0,
            },
            frame: Some(FrameId::new(bits >> 12)),
        }
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_present() {
            return write!(f, "<empty>");
        }
        write!(
            f,
            "{} [{}{}{}{}{}]",
            self.frame.expect("present entry has a frame"),
            if self.flags.writable { "W" } else { "-" },
            if self.flags.user { "U" } else { "-" },
            if self.flags.accessed { "A" } else { "-" },
            if self.flags.dirty { "D" } else { "-" },
            if self.flags.huge { "H" } else { "-" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_entry_is_not_present() {
        assert!(!Pte::EMPTY.is_present());
        assert_eq!(Pte::EMPTY.frame(), None);
        assert_eq!(Pte::EMPTY.to_bits(), 0);
        assert_eq!(Pte::from_bits(0), Pte::EMPTY);
    }

    #[test]
    fn bit_encoding_roundtrips() {
        let pte = Pte::new(FrameId::new(0x1234), PteFlags::user_data().huge_page())
            .with_accessed()
            .with_dirty();
        let decoded = Pte::from_bits(pte.to_bits());
        assert_eq!(decoded, pte);
        assert!(decoded.is_huge());
        assert_eq!(decoded.frame(), Some(FrameId::new(0x1234)));
    }

    #[test]
    fn flag_manipulation() {
        let pte = Pte::new(FrameId::new(7), PteFlags::user_data());
        assert!(!pte.flags().accessed);
        let touched = pte.with_accessed().with_dirty();
        assert!(touched.flags().accessed && touched.flags().dirty);
        let cleared = touched.with_ad_cleared();
        assert!(!cleared.flags().accessed && !cleared.flags().dirty);
        // Frame is preserved through flag changes.
        assert_eq!(cleared.frame(), Some(FrameId::new(7)));
    }

    #[test]
    fn with_frame_redirects_pointer_only() {
        let pte = Pte::new(FrameId::new(10), PteFlags::table_pointer());
        let redirected = pte.with_frame(FrameId::new(20));
        assert_eq!(redirected.frame(), Some(FrameId::new(20)));
        assert_eq!(redirected.flags(), pte.flags());
    }

    #[test]
    fn readonly_flags_drop_writable() {
        assert!(!PteFlags::user_readonly().writable);
        assert!(PteFlags::user_readonly().present);
    }

    #[test]
    #[should_panic(expected = "present flag required")]
    fn non_present_mapped_entry_panics() {
        let _ = Pte::new(FrameId::new(1), PteFlags::default());
    }

    #[test]
    fn display_shows_flags() {
        let pte = Pte::new(FrameId::new(1), PteFlags::user_data()).with_dirty();
        let s = pte.to_string();
        assert!(s.contains("W"));
        assert!(s.contains("D"));
        assert_eq!(Pte::EMPTY.to_string(), "<empty>");
    }
}
