//! Software page-table walks (reads only).
//!
//! These helpers walk a page-table radix tree directly through the
//! [`PtStore`], the way the OS inspects its own page tables (the hardware
//! walker with its cost model lives in `mitosis-mmu`).

use crate::addr::{Level, PageSize, VirtAddr};
use crate::entry::Pte;
use crate::store::PtStore;
use mitosis_mem::FrameId;

/// Result of translating a virtual address in software.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// First frame of the mapped page.
    pub frame: FrameId,
    /// Size of the mapping.
    pub size: PageSize,
    /// The leaf entry that produced the translation.
    pub pte: Pte,
    /// Level at which the leaf entry was found.
    pub level: Level,
}

impl Translation {
    /// Returns the exact 4 KiB frame backing `addr` (for huge pages this is
    /// an offset into the contiguous run).
    pub fn frame_for(&self, addr: VirtAddr) -> FrameId {
        let offset_frames = addr.page_offset(self.size) / PageSize::Base4K.bytes();
        self.frame.offset(offset_frames)
    }
}

/// One leaf mapping enumerated from a page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafMapping {
    /// First virtual address of the mapping.
    pub addr: VirtAddr,
    /// First frame of the mapping.
    pub frame: FrameId,
    /// Size of the mapping.
    pub size: PageSize,
    /// The leaf entry.
    pub pte: Pte,
}

/// Translates `addr` by walking the radix tree rooted at `root`.
///
/// Returns `None` if the address is unmapped.
pub fn translate(store: &PtStore, root: FrameId, addr: VirtAddr) -> Option<Translation> {
    let mut table = root;
    for level in Level::WALK_ORDER {
        let pte = store.read_at(store.slot(table), addr.index_at(level));
        if !pte.is_present() {
            return None;
        }
        let is_leaf = level == Level::L1 || pte.is_huge();
        if is_leaf {
            let size = match level {
                Level::L1 => PageSize::Base4K,
                Level::L2 => PageSize::Huge2M,
                Level::L3 => PageSize::Giant1G,
                Level::L4 => return None,
            };
            return Some(Translation {
                frame: pte.frame().expect("present leaf entry has a frame"),
                size,
                pte,
                level,
            });
        }
        table = pte.frame().expect("present table entry has a frame");
    }
    None
}

/// Enumerates every leaf mapping reachable from `root`, in address order.
pub fn iter_leaf_mappings(store: &PtStore, root: FrameId) -> Vec<LeafMapping> {
    let mut out = Vec::new();
    collect(store, root, Level::L4, 0, &mut out);
    out
}

fn collect(store: &PtStore, table: FrameId, level: Level, base: u64, out: &mut Vec<LeafMapping>) {
    // The occupancy bitmap yields present entries directly; sparse tables
    // (the common case above the leaf level) cost popcounts, not 512 reads.
    for (index, pte) in store.present_at(store.slot(table)) {
        let entry_base = base + (index as u64) * level.entry_coverage();
        let is_leaf = level == Level::L1 || pte.is_huge();
        if is_leaf {
            let size = match level {
                Level::L1 => PageSize::Base4K,
                Level::L2 => PageSize::Huge2M,
                Level::L3 => PageSize::Giant1G,
                Level::L4 => continue,
            };
            out.push(LeafMapping {
                addr: VirtAddr::new(entry_base),
                frame: pte.frame().expect("present leaf entry has a frame"),
                size,
                pte,
            });
        } else if let Some(next) = level.next_lower() {
            let child = pte.frame().expect("present table entry has a frame");
            collect(store, child, next, entry_base, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PteFlags;

    /// Builds a tiny page table by hand:
    /// root(L4)@0 -> L3@1 -> L2@2 -> L1@3 -> data@100 at VA 0x4000_0000,
    /// plus a 2 MiB mapping at VA 0x4020_0000 -> data@512.
    fn build() -> (PtStore, FrameId) {
        let mut store = PtStore::new();
        let root = FrameId::new(0);
        for pfn in 0..4 {
            store.insert_table(FrameId::new(pfn));
        }
        let va = VirtAddr::new(0x4000_0000);
        store.write(
            root,
            va.index_at(Level::L4),
            Pte::new(FrameId::new(1), PteFlags::table_pointer()),
        );
        store.write(
            FrameId::new(1),
            va.index_at(Level::L3),
            Pte::new(FrameId::new(2), PteFlags::table_pointer()),
        );
        store.write(
            FrameId::new(2),
            va.index_at(Level::L2),
            Pte::new(FrameId::new(3), PteFlags::table_pointer()),
        );
        store.write(
            FrameId::new(3),
            va.index_at(Level::L1),
            Pte::new(FrameId::new(100), PteFlags::user_data()),
        );
        let huge_va = VirtAddr::new(0x4020_0000);
        store.write(
            FrameId::new(2),
            huge_va.index_at(Level::L2),
            Pte::new(FrameId::new(512), PteFlags::user_data().huge_page()),
        );
        (store, root)
    }

    #[test]
    fn translate_base_page() {
        let (store, root) = build();
        let t = translate(&store, root, VirtAddr::new(0x4000_0000)).unwrap();
        assert_eq!(t.frame, FrameId::new(100));
        assert_eq!(t.size, PageSize::Base4K);
        assert_eq!(t.level, Level::L1);
        assert_eq!(t.frame_for(VirtAddr::new(0x4000_0123)), FrameId::new(100));
    }

    #[test]
    fn translate_huge_page_and_offsets() {
        let (store, root) = build();
        let t = translate(&store, root, VirtAddr::new(0x4020_0000)).unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        assert_eq!(t.level, Level::L2);
        // 0x4020_0000 + 3 * 4 KiB lands three frames into the huge page.
        assert_eq!(
            t.frame_for(VirtAddr::new(0x4020_3000)),
            FrameId::new(512 + 3)
        );
    }

    #[test]
    fn translate_unmapped_returns_none() {
        let (store, root) = build();
        assert!(translate(&store, root, VirtAddr::new(0x1000)).is_none());
        assert!(translate(&store, root, VirtAddr::new(0x4000_2000)).is_none());
    }

    #[test]
    fn iter_leaf_mappings_enumerates_both_sizes_in_order() {
        let (store, root) = build();
        let leaves = iter_leaf_mappings(&store, root);
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].addr, VirtAddr::new(0x4000_0000));
        assert_eq!(leaves[0].size, PageSize::Base4K);
        assert_eq!(leaves[1].addr, VirtAddr::new(0x4020_0000));
        assert_eq!(leaves[1].size, PageSize::Huge2M);
        assert_eq!(leaves[1].frame, FrameId::new(512));
    }
}
