//! Page-table dumps and placement analysis.
//!
//! The paper's placement study (§3.1, Figures 3 and 4) uses a kernel module
//! that walks a process' page table every 30 seconds and records, for every
//! level and socket, how many page-table pages exist and which sockets their
//! valid entries point to.  [`PageTableDump`] is that module.

use crate::addr::Level;
use crate::store::PtStore;
use mitosis_mem::{FrameId, FrameTable};
use mitosis_numa::SocketId;
use std::fmt;

/// Locality of a set of page-table entries as seen from one socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PteLocality {
    /// Entries that reside on the observing socket.
    pub local: u64,
    /// Entries that reside on any other socket.
    pub remote: u64,
}

impl PteLocality {
    /// Fraction of entries that are remote, or 0 if there are none.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            0.0
        } else {
            self.remote as f64 / total as f64
        }
    }
}

/// Statistics for the page-table pages of one level residing on one socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpLevelSocket {
    /// Page-table level (L4 root .. L1 leaf).
    pub level: Level,
    /// Socket the page-table pages live on.
    pub socket: SocketId,
    /// Number of page-table pages of this level on this socket.
    pub table_pages: u64,
    /// For the valid entries stored in those pages: how many point to a
    /// physical page on each socket (indexed by socket).
    pub pointers_to_socket: Vec<u64>,
}

impl DumpLevelSocket {
    /// Total valid entries stored in this level/socket cell.
    pub fn valid_entries(&self) -> u64 {
        self.pointers_to_socket.iter().sum()
    }

    /// Fraction of valid entries pointing to a *different* socket than the
    /// one the page-table page lives on (the percentage printed in rounded
    /// brackets in Figure 3).
    pub fn remote_pointer_fraction(&self) -> f64 {
        let total = self.valid_entries();
        if total == 0 {
            return 0.0;
        }
        let local = self.pointers_to_socket[self.socket.index()];
        (total - local) as f64 / total as f64
    }
}

/// A processed snapshot of one page-table radix tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PageTableDump {
    sockets: usize,
    cells: Vec<DumpLevelSocket>,
    /// Number of leaf PTEs (L1 entries plus large-page leaf entries) whose
    /// containing page-table page resides on each socket.
    leaf_ptes_per_socket: Vec<u64>,
}

impl PageTableDump {
    /// Walks the radix tree rooted at `root` and produces the placement
    /// snapshot.
    ///
    /// `frames` supplies the socket of every physical frame.  Only the tree
    /// reachable from `root` is inspected; to analyse a replicated address
    /// space, capture one dump per per-socket root.
    pub fn capture(store: &PtStore, frames: &FrameTable, root: FrameId) -> Self {
        let sockets = frames.frame_space().sockets();
        let mut cells: Vec<DumpLevelSocket> = Vec::with_capacity(4 * sockets);
        for level in Level::WALK_ORDER {
            for s in 0..sockets {
                cells.push(DumpLevelSocket {
                    level,
                    socket: SocketId::new(s as u16),
                    table_pages: 0,
                    pointers_to_socket: vec![0; sockets],
                });
            }
        }
        let mut dump = PageTableDump {
            sockets,
            cells,
            leaf_ptes_per_socket: vec![0; sockets],
        };
        dump.visit(store, frames, root, Level::L4);
        dump
    }

    fn cell_index(&self, level: Level, socket: SocketId) -> usize {
        let level_pos = match level {
            Level::L4 => 0,
            Level::L3 => 1,
            Level::L2 => 2,
            Level::L1 => 3,
        };
        level_pos * self.sockets + socket.index()
    }

    fn visit(&mut self, store: &PtStore, frames: &FrameTable, table: FrameId, level: Level) {
        let table_socket = frames.socket_of(table);
        let idx = self.cell_index(level, table_socket);
        self.cells[idx].table_pages += 1;
        // Present entries come straight off the occupancy bitmap; sparse
        // upper-level tables cost popcounts instead of 512 entry reads.
        for (_, pte) in store.present_at(store.slot(table)) {
            let target = pte.frame().expect("present entry has a frame");
            let target_socket = frames.socket_of(target);
            self.cells[idx].pointers_to_socket[target_socket.index()] += 1;
            let is_leaf = level == Level::L1 || pte.is_huge();
            if is_leaf {
                self.leaf_ptes_per_socket[table_socket.index()] += 1;
            } else if let Some(next) = level.next_lower() {
                self.visit(store, frames, target, next);
            }
        }
    }

    /// Number of sockets the dump covers.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// The per-level, per-socket cells of the dump (Figure 3 rows).
    pub fn cells(&self) -> &[DumpLevelSocket] {
        &self.cells
    }

    /// The cell for a specific level and socket.
    pub fn cell(&self, level: Level, socket: SocketId) -> &DumpLevelSocket {
        &self.cells[self.cell_index(level, socket)]
    }

    /// Total page-table pages of a level across all sockets.
    pub fn pages_at_level(&self, level: Level) -> u64 {
        (0..self.sockets)
            .map(|s| self.cell(level, SocketId::new(s as u16)).table_pages)
            .sum()
    }

    /// Total page-table pages in the tree.
    pub fn total_pages(&self) -> u64 {
        Level::WALK_ORDER
            .iter()
            .map(|l| self.pages_at_level(*l))
            .sum()
    }

    /// Total bytes of page-table memory in the tree.
    pub fn total_bytes(&self) -> u64 {
        self.total_pages() * 4096
    }

    /// Number of leaf PTEs residing on each socket.
    pub fn leaf_ptes_per_socket(&self) -> &[u64] {
        &self.leaf_ptes_per_socket
    }

    /// Total number of leaf PTEs.
    pub fn total_leaf_ptes(&self) -> u64 {
        self.leaf_ptes_per_socket.iter().sum()
    }

    /// Locality of leaf PTEs as observed by a thread running on `observer`:
    /// a leaf PTE is local if the page-table page holding it resides on the
    /// observer's socket (Figure 4 and the Figure 1 top tables).
    pub fn leaf_locality_from(&self, observer: SocketId) -> PteLocality {
        let local = self.leaf_ptes_per_socket[observer.index()];
        let remote = self.total_leaf_ptes() - local;
        PteLocality { local, remote }
    }

    /// Formats the dump in the style of the paper's Figure 3.
    pub fn to_paper_format(&self) -> String {
        let mut out = String::new();
        out.push_str("Level |");
        for s in 0..self.sockets {
            out.push_str(&format!(" Socket {s:<18}|"));
        }
        out.push('\n');
        for level in Level::WALK_ORDER {
            out.push_str(&format!("{level:<5} |"));
            for s in 0..self.sockets {
                let cell = self.cell(level, SocketId::new(s as u16));
                let pointers: Vec<String> = cell
                    .pointers_to_socket
                    .iter()
                    .map(|p| format!("{p:>6}"))
                    .collect();
                out.push_str(&format!(
                    " {:>5} [{}] ({:>3.0}%) |",
                    cell.table_pages,
                    pointers.join(" "),
                    cell.remote_pointer_fraction() * 100.0
                ));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PageTableDump {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_paper_format())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{Pte, PteFlags};
    use mitosis_mem::{FrameKind, FrameSpace};

    /// Builds a two-socket page table by hand:
    /// root on socket 0, one L3/L2/L1 chain on socket 0 and another L1 table
    /// on socket 1; leaf PTEs point to data on socket 1.
    fn build() -> (PtStore, FrameTable, FrameId) {
        let space = FrameSpace::with_frames_per_socket(2, 10_000);
        let mut frames = FrameTable::new(space);
        let mut store = PtStore::new();
        let root = FrameId::new(0);
        let l3 = FrameId::new(1);
        let l2 = FrameId::new(2);
        let l1_local = FrameId::new(3);
        let l1_remote = FrameId::new(10_000); // socket 1
        for (frame, level) in [(root, 4), (l3, 3), (l2, 2), (l1_local, 1), (l1_remote, 1)] {
            frames.insert(frame, FrameKind::PageTable { level });
            store.insert_table(frame);
        }
        store.write(root, 0, Pte::new(l3, PteFlags::table_pointer()));
        store.write(l3, 0, Pte::new(l2, PteFlags::table_pointer()));
        store.write(l2, 0, Pte::new(l1_local, PteFlags::table_pointer()));
        store.write(l2, 1, Pte::new(l1_remote, PteFlags::table_pointer()));
        // Data frames on socket 1.
        for i in 0..4u64 {
            let data = FrameId::new(10_100 + i);
            frames.insert(data, FrameKind::Data);
            store.write(l1_local, i as usize, Pte::new(data, PteFlags::user_data()));
        }
        for i in 0..2u64 {
            let data = FrameId::new(10_200 + i);
            frames.insert(data, FrameKind::Data);
            store.write(l1_remote, i as usize, Pte::new(data, PteFlags::user_data()));
        }
        (store, frames, root)
    }

    #[test]
    fn page_counts_per_level_and_socket() {
        let (store, frames, root) = build();
        let dump = PageTableDump::capture(&store, &frames, root);
        assert_eq!(dump.pages_at_level(Level::L4), 1);
        assert_eq!(dump.pages_at_level(Level::L3), 1);
        assert_eq!(dump.pages_at_level(Level::L2), 1);
        assert_eq!(dump.pages_at_level(Level::L1), 2);
        assert_eq!(dump.total_pages(), 5);
        assert_eq!(dump.total_bytes(), 5 * 4096);
        assert_eq!(dump.cell(Level::L1, SocketId::new(0)).table_pages, 1);
        assert_eq!(dump.cell(Level::L1, SocketId::new(1)).table_pages, 1);
    }

    #[test]
    fn pointer_distribution_and_remote_fraction() {
        let (store, frames, root) = build();
        let dump = PageTableDump::capture(&store, &frames, root);
        // The L2 table on socket 0 points to one local L1 and one remote L1.
        let l2_cell = dump.cell(Level::L2, SocketId::new(0));
        assert_eq!(l2_cell.valid_entries(), 2);
        assert_eq!(l2_cell.pointers_to_socket, vec![1, 1]);
        assert!((l2_cell.remote_pointer_fraction() - 0.5).abs() < 1e-9);
        // The L1 table on socket 0 points only at socket-1 data: 100% remote.
        let l1_cell = dump.cell(Level::L1, SocketId::new(0));
        assert!((l1_cell.remote_pointer_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn leaf_locality_depends_on_observer() {
        let (store, frames, root) = build();
        let dump = PageTableDump::capture(&store, &frames, root);
        assert_eq!(dump.total_leaf_ptes(), 6);
        assert_eq!(dump.leaf_ptes_per_socket(), &[4, 2]);
        let from0 = dump.leaf_locality_from(SocketId::new(0));
        assert_eq!(from0.local, 4);
        assert_eq!(from0.remote, 2);
        let from1 = dump.leaf_locality_from(SocketId::new(1));
        assert!((from1.remote_fraction() - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn huge_leaf_entries_count_as_leaf_ptes() {
        let space = FrameSpace::with_frames_per_socket(2, 10_000);
        let mut frames = FrameTable::new(space);
        let mut store = PtStore::new();
        let root = FrameId::new(0);
        let l3 = FrameId::new(1);
        let l2 = FrameId::new(2);
        for (frame, level) in [(root, 4), (l3, 3), (l2, 2)] {
            frames.insert(frame, FrameKind::PageTable { level });
            store.insert_table(frame);
        }
        let huge_data = FrameId::new(512);
        frames.insert(huge_data, FrameKind::Data);
        store.write(root, 0, Pte::new(l3, PteFlags::table_pointer()));
        store.write(l3, 0, Pte::new(l2, PteFlags::table_pointer()));
        store.write(
            l2,
            0,
            Pte::new(huge_data, PteFlags::user_data().huge_page()),
        );
        let dump = PageTableDump::capture(&store, &frames, root);
        assert_eq!(dump.total_leaf_ptes(), 1);
        assert_eq!(dump.pages_at_level(Level::L1), 0);
    }

    #[test]
    fn paper_format_contains_all_levels() {
        let (store, frames, root) = build();
        let text = PageTableDump::capture(&store, &frames, root).to_string();
        for level in ["L4", "L3", "L2", "L1"] {
            assert!(text.contains(level), "missing {level} in:\n{text}");
        }
    }

    #[test]
    fn empty_locality_is_zero_remote() {
        let locality = PteLocality::default();
        assert_eq!(locality.remote_fraction(), 0.0);
    }
}
