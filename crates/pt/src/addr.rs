//! Virtual addresses, page sizes and page-table levels.

use std::fmt;

/// Number of entries in one page-table page (4 KiB / 8 bytes).
pub const ENTRIES_PER_TABLE: usize = 512;

/// A canonical x86-64 virtual address (48-bit, sign-extended ignored — the
/// simulator only uses the lower half of the address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates a virtual address.
    ///
    /// # Panics
    ///
    /// Panics if the address does not fit in 48 bits.
    pub const fn new(addr: u64) -> Self {
        assert!(addr < (1 << 48), "virtual address exceeds 48 bits");
        VirtAddr(addr)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> VirtAddr {
        VirtAddr::new(self.0 + bytes)
    }

    /// Returns the address rounded down to the given page size.
    pub const fn align_down(self, size: PageSize) -> VirtAddr {
        VirtAddr(self.0 & !(size.bytes() - 1))
    }

    /// Returns the address rounded up to the given page size.
    pub const fn align_up(self, size: PageSize) -> VirtAddr {
        VirtAddr::new((self.0 + size.bytes() - 1) & !(size.bytes() - 1))
    }

    /// Returns `true` if the address is aligned to the given page size.
    pub const fn is_aligned(self, size: PageSize) -> bool {
        self.0.is_multiple_of(size.bytes())
    }

    /// Returns the page-table index used at `level` when translating this
    /// address (9 bits per level).
    pub const fn index_at(self, level: Level) -> usize {
        ((self.0 >> level.index_shift()) & 0x1ff) as usize
    }

    /// Returns the offset of the address within a page of the given size.
    pub const fn page_offset(self, size: PageSize) -> u64 {
        self.0 & (size.bytes() - 1)
    }

    /// Returns the virtual page number at the given page size.
    pub const fn page_number(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for VirtAddr {
    fn from(value: u64) -> Self {
        VirtAddr::new(value)
    }
}

/// Page sizes supported by x86-64 paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PageSize {
    /// 4 KiB base pages (mapped at L1).
    Base4K,
    /// 2 MiB huge pages (mapped at L2 with the PS bit).
    Huge2M,
    /// 1 GiB giant pages (mapped at L3 with the PS bit).
    Giant1G,
}

impl PageSize {
    /// The page size in bytes.
    pub const fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// log2 of the page size (page sizes are powers of two, so address
    /// arithmetic is shifts and masks, never division).
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Base4K => 12,
            PageSize::Huge2M => 21,
            PageSize::Giant1G => 30,
        }
    }

    /// Number of 4 KiB frames backing one page of this size.
    pub const fn frames(self) -> u64 {
        self.bytes() / 4096
    }

    /// The page-table level at which a page of this size is mapped.
    pub const fn mapped_at(self) -> Level {
        match self {
            PageSize::Base4K => Level::L1,
            PageSize::Huge2M => Level::L2,
            PageSize::Giant1G => Level::L3,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Base4K => write!(f, "4KiB"),
            PageSize::Huge2M => write!(f, "2MiB"),
            PageSize::Giant1G => write!(f, "1GiB"),
        }
    }
}

/// A level of the 4-level radix page table.  L4 is the root (PML4), L1 holds
/// leaf PTEs for 4 KiB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Leaf level (page table, PTEs).
    L1,
    /// Page directory (PDEs; 2 MiB mappings live here).
    L2,
    /// Page directory pointer table (1 GiB mappings live here).
    L3,
    /// Root level (PML4).
    L4,
}

impl Level {
    /// All levels from the root down to the leaf, in walk order.
    pub const WALK_ORDER: [Level; 4] = [Level::L4, Level::L3, Level::L2, Level::L1];

    /// The numeric level (1..=4), matching the paper's "L1".."L4" notation.
    pub const fn number(self) -> u8 {
        match self {
            Level::L1 => 1,
            Level::L2 => 2,
            Level::L3 => 3,
            Level::L4 => 4,
        }
    }

    /// Creates a level from its number.
    ///
    /// # Panics
    ///
    /// Panics if `number` is not within `1..=4`.
    pub const fn from_number(number: u8) -> Self {
        match number {
            1 => Level::L1,
            2 => Level::L2,
            3 => Level::L3,
            4 => Level::L4,
            _ => panic!("page-table level must be within 1..=4"),
        }
    }

    /// The next level down the walk (towards the leaf), if any.
    pub const fn next_lower(self) -> Option<Level> {
        match self {
            Level::L4 => Some(Level::L3),
            Level::L3 => Some(Level::L2),
            Level::L2 => Some(Level::L1),
            Level::L1 => None,
        }
    }

    /// The bit position of the 9-bit index this level extracts from a
    /// virtual address.
    pub const fn index_shift(self) -> u32 {
        match self {
            Level::L1 => 12,
            Level::L2 => 21,
            Level::L3 => 30,
            Level::L4 => 39,
        }
    }

    /// Bytes of virtual address space covered by one entry at this level.
    pub const fn entry_coverage(self) -> u64 {
        1u64 << self.index_shift()
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.number())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_extraction_matches_x86_64_layout() {
        // Address with distinct indices: L4=1, L3=2, L2=3, L1=4, offset=5.
        let addr = VirtAddr::new((1 << 39) | (2 << 30) | (3 << 21) | (4 << 12) | 5);
        assert_eq!(addr.index_at(Level::L4), 1);
        assert_eq!(addr.index_at(Level::L3), 2);
        assert_eq!(addr.index_at(Level::L2), 3);
        assert_eq!(addr.index_at(Level::L1), 4);
        assert_eq!(addr.page_offset(PageSize::Base4K), 5);
    }

    #[test]
    fn alignment_helpers() {
        let addr = VirtAddr::new(0x2000_1234);
        assert_eq!(addr.align_down(PageSize::Base4K).as_u64(), 0x2000_1000);
        assert_eq!(addr.align_up(PageSize::Base4K).as_u64(), 0x2000_2000);
        assert_eq!(addr.align_down(PageSize::Huge2M).as_u64(), 0x2000_0000);
        assert!(VirtAddr::new(0x4000_0000).is_aligned(PageSize::Giant1G));
        assert!(!addr.is_aligned(PageSize::Huge2M));
    }

    #[test]
    fn page_sizes_and_levels_are_consistent() {
        assert_eq!(PageSize::Base4K.bytes(), 4096);
        assert_eq!(PageSize::Huge2M.frames(), 512);
        assert_eq!(PageSize::Giant1G.frames(), 512 * 512);
        assert_eq!(PageSize::Base4K.mapped_at(), Level::L1);
        assert_eq!(PageSize::Huge2M.mapped_at(), Level::L2);
        assert_eq!(PageSize::Giant1G.mapped_at(), Level::L3);
    }

    #[test]
    fn level_numbers_roundtrip() {
        for level in Level::WALK_ORDER {
            assert_eq!(Level::from_number(level.number()), level);
        }
        assert_eq!(Level::L4.next_lower(), Some(Level::L3));
        assert_eq!(Level::L1.next_lower(), None);
        assert_eq!(Level::L2.entry_coverage(), 2 * 1024 * 1024);
        assert_eq!(Level::L4.entry_coverage(), 512u64 << 30);
    }

    #[test]
    fn page_number_and_offsets() {
        let addr = VirtAddr::new(5 * 4096 + 17);
        assert_eq!(addr.page_number(PageSize::Base4K), 5);
        assert_eq!(addr.page_offset(PageSize::Base4K), 17);
    }

    #[test]
    #[should_panic(expected = "exceeds 48 bits")]
    fn non_canonical_address_panics() {
        let _ = VirtAddr::new(1 << 48);
    }
}
