//! Backing storage for page-table pages.
//!
//! The simulator does not materialise the contents of data pages (only their
//! placement matters), but page-table pages have semantic content: 512
//! entries each.  [`PtStore`] is the "physical memory" that holds them,
//! indexed by the frame the table lives in.

use crate::addr::ENTRIES_PER_TABLE;
use crate::entry::Pte;
use mitosis_mem::FrameId;
use std::collections::HashMap;

/// One page-table page: 512 entries.
type TablePage = Box<[Pte; ENTRIES_PER_TABLE]>;

fn empty_table() -> TablePage {
    Box::new([Pte::EMPTY; ENTRIES_PER_TABLE])
}

/// Storage for the contents of every allocated page-table page.
///
/// # Example
///
/// ```
/// use mitosis_mem::FrameId;
/// use mitosis_pt::{Pte, PteFlags, PtStore};
///
/// let mut store = PtStore::new();
/// store.insert_table(FrameId::new(100));
/// store.write(FrameId::new(100), 3, Pte::new(FrameId::new(7), PteFlags::user_data()));
/// assert!(store.read(FrameId::new(100), 3).is_present());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PtStore {
    tables: HashMap<FrameId, TablePage>,
}

impl PtStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PtStore {
            tables: HashMap::new(),
        }
    }

    /// Registers `frame` as a page-table page with all entries empty.
    ///
    /// Re-inserting an existing table clears it (matching the kernel zeroing
    /// freshly allocated page-table pages).
    pub fn insert_table(&mut self, frame: FrameId) {
        self.tables.insert(frame, empty_table());
    }

    /// Removes a page-table page from the store.
    pub fn remove_table(&mut self, frame: FrameId) {
        self.tables.remove(&frame);
    }

    /// Returns `true` if `frame` holds a page-table page.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.tables.contains_key(&frame)
    }

    /// Number of page-table pages currently stored.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Reads the entry at `index` of the table in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page or `index >= 512`.
    pub fn read(&self, frame: FrameId, index: usize) -> Pte {
        self.tables
            .get(&frame)
            .unwrap_or_else(|| panic!("{frame} is not a page-table page"))[index]
    }

    /// Writes the entry at `index` of the table in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page or `index >= 512`.
    pub fn write(&mut self, frame: FrameId, index: usize, pte: Pte) {
        self.tables
            .get_mut(&frame)
            .unwrap_or_else(|| panic!("{frame} is not a page-table page"))[index] = pte;
    }

    /// Iterates over the present entries of the table in `frame` as
    /// `(index, pte)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page.
    pub fn present_entries(&self, frame: FrameId) -> Vec<(usize, Pte)> {
        self.tables
            .get(&frame)
            .unwrap_or_else(|| panic!("{frame} is not a page-table page"))
            .iter()
            .enumerate()
            .filter(|(_, pte)| pte.is_present())
            .map(|(i, pte)| (i, *pte))
            .collect()
    }

    /// Number of present entries in the table in `frame`.
    pub fn present_count(&self, frame: FrameId) -> usize {
        self.present_entries(frame).len()
    }

    /// Iterates over all page-table frames currently stored.
    pub fn table_frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.tables.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PteFlags;

    #[test]
    fn fresh_tables_are_empty() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        assert_eq!(store.present_count(FrameId::new(1)), 0);
        assert!(!store.read(FrameId::new(1), 0).is_present());
        assert!(store.contains(FrameId::new(1)));
        assert_eq!(store.table_count(), 1);
    }

    #[test]
    fn writes_are_readable_and_enumerable() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        let pte = Pte::new(FrameId::new(99), PteFlags::user_data());
        store.write(FrameId::new(1), 511, pte);
        store.write(FrameId::new(1), 0, pte);
        assert_eq!(store.read(FrameId::new(1), 511), pte);
        let entries = store.present_entries(FrameId::new(1));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[1].0, 511);
    }

    #[test]
    fn reinserting_clears_the_table() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        store.write(
            FrameId::new(1),
            5,
            Pte::new(FrameId::new(3), PteFlags::user_data()),
        );
        store.insert_table(FrameId::new(1));
        assert_eq!(store.present_count(FrameId::new(1)), 0);
    }

    #[test]
    fn remove_table_forgets_contents() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(2));
        store.remove_table(FrameId::new(2));
        assert!(!store.contains(FrameId::new(2)));
        assert_eq!(store.table_count(), 0);
    }

    #[test]
    #[should_panic(expected = "is not a page-table page")]
    fn reading_unknown_table_panics() {
        let store = PtStore::new();
        let _ = store.read(FrameId::new(9), 0);
    }
}
