//! Backing storage for page-table pages.
//!
//! The simulator does not materialise the contents of data pages (only their
//! placement matters), but page-table pages have semantic content: 512
//! entries each.  [`PtStore`] is the "physical memory" that holds them,
//! indexed by the frame the table lives in.
//!
//! # Layout
//!
//! `PtStore::read` sits on the innermost loop of the simulator — the
//! hardware walker calls it once per level for every TLB miss, millions of
//! times per experiment — so the store avoids hashing entirely:
//!
//! * table contents live in a **slab** of [`TableSlot`]s (stable indices,
//!   freed slots recycled through a free list, the 4 KiB entry boxes reused
//!   across table lifetimes);
//! * a **two-level radix directory** maps a frame number to its slot in two
//!   array dereferences: `dir[pfn >> 12][pfn & 0xfff]`;
//! * each slot carries a 512-bit **occupancy bitmap** mirroring which
//!   entries are present, so enumerating or counting present entries
//!   (replication, OR-consolidation, page-table dumps) is popcount-driven
//!   and allocation-free instead of a 512-entry scan.
//!
//! Callers that access the same table repeatedly can resolve the frame to a
//! [`PtSlot`] handle once and use the `*_at` accessors, skipping the
//! directory on subsequent accesses.

use crate::addr::{Level, VirtAddr, ENTRIES_PER_TABLE};
use crate::entry::Pte;
use mitosis_mem::FrameId;

/// Number of directory entries per second-level chunk (covers 4096 frames,
/// i.e. 16 MiB of physical memory per chunk).
const DIR_FANOUT: usize = 1 << DIR_SHIFT;
const DIR_SHIFT: u32 = 12;

/// Sentinel directory entry: this frame holds no page-table page.
const NO_SLOT: u32 = u32::MAX;

/// Sentinel owner for recycled slots.
const FREE_PFN: u64 = u64::MAX;

/// Number of 64-bit words in a 512-bit occupancy bitmap.
const OCC_WORDS: usize = ENTRIES_PER_TABLE / 64;

/// A resolved handle to one stored page-table page.
///
/// Obtained from [`PtStore::slot`] / [`PtStore::slot_of`]; valid until the
/// table is removed from the store.  Using a stale handle reads whatever
/// table was recycled into the slot — handles are a hot-path optimisation,
/// not a stability guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtSlot(u32);

/// One stored page-table page: 512 entries plus their occupancy bitmap.
#[derive(Debug, Clone)]
struct TableSlot {
    /// Frame number owning this slot, or [`FREE_PFN`] for recycled slots.
    pfn: u64,
    entries: Box<[Pte; ENTRIES_PER_TABLE]>,
    occupancy: [u64; OCC_WORDS],
}

impl TableSlot {
    fn clear(&mut self) {
        self.entries.fill(Pte::EMPTY);
        self.occupancy = [0; OCC_WORDS];
    }
}

/// Storage for the contents of every allocated page-table page.
///
/// # Example
///
/// ```
/// use mitosis_mem::FrameId;
/// use mitosis_pt::{Pte, PteFlags, PtStore};
///
/// let mut store = PtStore::new();
/// store.insert_table(FrameId::new(100));
/// store.write(FrameId::new(100), 3, Pte::new(FrameId::new(7), PteFlags::user_data()));
/// assert!(store.read(FrameId::new(100), 3).is_present());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PtStore {
    slots: Vec<TableSlot>,
    free: Vec<u32>,
    dir: Vec<Option<Box<[u32; DIR_FANOUT]>>>,
    live: usize,
}

impl PtStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        PtStore::default()
    }

    #[inline]
    fn slot_index(&self, pfn: u64) -> u32 {
        match self.dir.get((pfn >> DIR_SHIFT) as usize) {
            Some(Some(chunk)) => chunk[pfn as usize & (DIR_FANOUT - 1)],
            _ => NO_SLOT,
        }
    }

    #[inline]
    fn resolve(&self, frame: FrameId) -> u32 {
        let slot = self.slot_index(frame.pfn());
        if slot == NO_SLOT {
            panic!("{frame} is not a page-table page");
        }
        slot
    }

    /// Resolves `frame` to a slot handle for repeated access.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page.
    #[inline]
    pub fn slot(&self, frame: FrameId) -> PtSlot {
        PtSlot(self.resolve(frame))
    }

    /// Resolves `frame` to a slot handle, or `None` if it holds no table.
    #[inline]
    pub fn slot_of(&self, frame: FrameId) -> Option<PtSlot> {
        match self.slot_index(frame.pfn()) {
            NO_SLOT => None,
            slot => Some(PtSlot(slot)),
        }
    }

    /// Registers `frame` as a page-table page with all entries empty.
    ///
    /// Re-inserting an existing table clears it (matching the kernel zeroing
    /// freshly allocated page-table pages).
    pub fn insert_table(&mut self, frame: FrameId) {
        let pfn = frame.pfn();
        if let Some(existing) = self.slot_of(frame) {
            self.slots[existing.0 as usize].clear();
            return;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                let recycled = &mut self.slots[slot as usize];
                recycled.clear();
                recycled.pfn = pfn;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slot count fits in u32");
                self.slots.push(TableSlot {
                    pfn,
                    entries: Box::new([Pte::EMPTY; ENTRIES_PER_TABLE]),
                    occupancy: [0; OCC_WORDS],
                });
                slot
            }
        };
        let top = (pfn >> DIR_SHIFT) as usize;
        if top >= self.dir.len() {
            self.dir.resize_with(top + 1, || None);
        }
        let chunk = self.dir[top].get_or_insert_with(|| Box::new([NO_SLOT; DIR_FANOUT]));
        chunk[pfn as usize & (DIR_FANOUT - 1)] = slot;
        self.live += 1;
    }

    /// Removes a page-table page from the store.
    pub fn remove_table(&mut self, frame: FrameId) {
        let pfn = frame.pfn();
        let top = (pfn >> DIR_SHIFT) as usize;
        let Some(Some(chunk)) = self.dir.get_mut(top) else {
            return;
        };
        let entry = &mut chunk[pfn as usize & (DIR_FANOUT - 1)];
        if *entry == NO_SLOT {
            return;
        }
        let slot = *entry;
        *entry = NO_SLOT;
        self.slots[slot as usize].pfn = FREE_PFN;
        self.free.push(slot);
        self.live -= 1;
    }

    /// Returns `true` if `frame` holds a page-table page.
    pub fn contains(&self, frame: FrameId) -> bool {
        self.slot_index(frame.pfn()) != NO_SLOT
    }

    /// Number of page-table pages currently stored.
    pub fn table_count(&self) -> usize {
        self.live
    }

    /// Reads the entry at `index` of the table in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page or `index >= 512`.
    #[inline]
    pub fn read(&self, frame: FrameId, index: usize) -> Pte {
        self.slots[self.resolve(frame) as usize].entries[index]
    }

    /// Writes the entry at `index` of the table in `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page or `index >= 512`.
    #[inline]
    pub fn write(&mut self, frame: FrameId, index: usize, pte: Pte) {
        self.write_at(PtSlot(self.resolve(frame)), index, pte);
    }

    /// Reads the entry at `index` of the table behind `slot`.
    #[inline]
    pub fn read_at(&self, slot: PtSlot, index: usize) -> Pte {
        self.slots[slot.0 as usize].entries[index]
    }

    /// Writes the entry at `index` of the table behind `slot`.
    #[inline]
    pub fn write_at(&mut self, slot: PtSlot, index: usize, pte: Pte) {
        let table = &mut self.slots[slot.0 as usize];
        table.entries[index] = pte;
        let bit = 1u64 << (index & 63);
        if pte.is_present() {
            table.occupancy[index >> 6] |= bit;
        } else {
            table.occupancy[index >> 6] &= !bit;
        }
    }

    /// Iterates the present entries of the table behind `slot` as
    /// `(index, pte)` pairs in ascending index order, without allocating:
    /// the occupancy bitmap drives the iteration, so empty stretches of the
    /// table cost one popcount instead of 64 reads.
    pub fn present_at(&self, slot: PtSlot) -> impl Iterator<Item = (usize, Pte)> + '_ {
        let table = &self.slots[slot.0 as usize];
        table
            .occupancy
            .iter()
            .enumerate()
            .flat_map(move |(word_index, &word)| {
                std::iter::successors((word != 0).then_some(word), |w| {
                    let rest = w & (w - 1);
                    (rest != 0).then_some(rest)
                })
                .map(move |w| {
                    let index = (word_index << 6) | w.trailing_zeros() as usize;
                    (index, table.entries[index])
                })
            })
    }

    /// Iterates over the present entries of the table in `frame` as
    /// `(index, pte)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page.
    pub fn present_entries(&self, frame: FrameId) -> Vec<(usize, Pte)> {
        self.present_at(self.slot(frame)).collect()
    }

    /// Number of present entries in the table in `frame`, by popcount.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is not a page-table page.
    pub fn present_count(&self, frame: FrameId) -> usize {
        self.slots[self.resolve(frame) as usize]
            .occupancy
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Clones only the page-table subtrees reachable from `roots` that can
    /// serve a translation for one of the half-open virtual-address
    /// `ranges`.
    ///
    /// This is the partial-snapshot path: a replay lane group whose accesses
    /// provably stay inside a few VA ranges only ever walks the tables on
    /// those paths, so cloning the rest of the store (other sockets' replica
    /// trees, unrelated regions) is wasted work.  Each visited table is
    /// copied in full — sibling entries are cheap and keeping them makes the
    /// copy independent of entry-granular range math — but child tables
    /// whose span misses every range are not descended into.
    ///
    /// Walking a sliced store outside the declared ranges finds no table and
    /// panics like any unmapped-table access; callers (the grouped replay
    /// driver) rely on worker panic isolation plus the demand-fault re-run
    /// to recover from an undersized slice, so the slice is an optimisation,
    /// never a correctness commitment.
    pub fn clone_reachable(&self, roots: &[FrameId], ranges: &[(VirtAddr, VirtAddr)]) -> PtStore {
        let mut out = PtStore::new();
        for &root in roots {
            self.copy_subtree(root, Level::L4, VirtAddr::new(0), ranges, &mut out);
        }
        out
    }

    fn copy_subtree(
        &self,
        frame: FrameId,
        level: Level,
        base: VirtAddr,
        ranges: &[(VirtAddr, VirtAddr)],
        out: &mut PtStore,
    ) {
        if out.contains(frame) {
            return; // shared between roots (non-replicated trees)
        }
        let Some(slot) = self.slot_of(frame) else {
            return;
        };
        out.insert_table(frame);
        let out_slot = out.slot(frame);
        for (index, pte) in self.present_at(slot) {
            out.write_at(out_slot, index, pte);
        }
        let Some(lower) = level.next_lower() else {
            return;
        };
        for (index, pte) in self.present_at(slot) {
            if pte.is_huge() {
                continue; // leaf at this level, nothing below
            }
            let span_start = base.add(index as u64 * level.entry_coverage());
            let span_end = span_start.add(level.entry_coverage());
            let wanted = ranges.iter().any(|(start, end)| {
                start.as_u64() < span_end.as_u64() && span_start.as_u64() < end.as_u64()
            });
            if wanted {
                if let Some(child) = pte.frame() {
                    self.copy_subtree(child, lower, span_start, ranges, out);
                }
            }
        }
    }

    /// Iterates over all page-table frames currently stored.
    pub fn table_frames(&self) -> impl Iterator<Item = FrameId> + '_ {
        self.slots
            .iter()
            .filter(|slot| slot.pfn != FREE_PFN)
            .map(|slot| FrameId::new(slot.pfn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PteFlags;

    #[test]
    fn fresh_tables_are_empty() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        assert_eq!(store.present_count(FrameId::new(1)), 0);
        assert!(!store.read(FrameId::new(1), 0).is_present());
        assert!(store.contains(FrameId::new(1)));
        assert_eq!(store.table_count(), 1);
    }

    #[test]
    fn writes_are_readable_and_enumerable() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        let pte = Pte::new(FrameId::new(99), PteFlags::user_data());
        store.write(FrameId::new(1), 511, pte);
        store.write(FrameId::new(1), 0, pte);
        assert_eq!(store.read(FrameId::new(1), 511), pte);
        let entries = store.present_entries(FrameId::new(1));
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 0);
        assert_eq!(entries[1].0, 511);
    }

    #[test]
    fn reinserting_clears_the_table() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        store.write(
            FrameId::new(1),
            5,
            Pte::new(FrameId::new(3), PteFlags::user_data()),
        );
        store.insert_table(FrameId::new(1));
        assert_eq!(store.present_count(FrameId::new(1)), 0);
    }

    #[test]
    fn remove_table_forgets_contents() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(2));
        store.remove_table(FrameId::new(2));
        assert!(!store.contains(FrameId::new(2)));
        assert_eq!(store.table_count(), 0);
        // Removing twice (or a never-inserted frame) is a no-op.
        store.remove_table(FrameId::new(2));
        store.remove_table(FrameId::new(777));
    }

    #[test]
    #[should_panic(expected = "is not a page-table page")]
    fn reading_unknown_table_panics() {
        let store = PtStore::new();
        let _ = store.read(FrameId::new(9), 0);
    }

    #[test]
    fn recycled_slots_start_clean() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(10));
        store.write(
            FrameId::new(10),
            100,
            Pte::new(FrameId::new(1), PteFlags::user_data()),
        );
        store.remove_table(FrameId::new(10));
        // A different frame recycles the slot; it must not see old contents.
        store.insert_table(FrameId::new(20));
        assert_eq!(store.present_count(FrameId::new(20)), 0);
        assert!(!store.read(FrameId::new(20), 100).is_present());
        assert!(!store.contains(FrameId::new(10)));
    }

    #[test]
    fn occupancy_tracks_overwrites_and_clears() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(1));
        let pte = Pte::new(FrameId::new(50), PteFlags::user_data());
        store.write(FrameId::new(1), 63, pte);
        store.write(FrameId::new(1), 64, pte);
        store.write(FrameId::new(1), 63, pte); // overwrite present with present
        assert_eq!(store.present_count(FrameId::new(1)), 2);
        store.write(FrameId::new(1), 63, Pte::EMPTY);
        assert_eq!(store.present_count(FrameId::new(1)), 1);
        assert_eq!(store.present_entries(FrameId::new(1)), vec![(64, pte)]);
    }

    #[test]
    fn slot_handles_read_and_write() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(4097)); // second directory chunk
        let slot = store.slot(FrameId::new(4097));
        let pte = Pte::new(FrameId::new(8), PteFlags::user_data());
        store.write_at(slot, 7, pte);
        assert_eq!(store.read_at(slot, 7), pte);
        assert_eq!(store.read(FrameId::new(4097), 7), pte);
        assert!(store.slot_of(FrameId::new(4096)).is_none());
        assert_eq!(store.slot_of(FrameId::new(4097)), Some(slot));
    }

    #[test]
    fn present_iteration_is_dense_and_ordered() {
        let mut store = PtStore::new();
        store.insert_table(FrameId::new(3));
        let pte = Pte::new(FrameId::new(77), PteFlags::user_data());
        let indices = [0usize, 1, 63, 64, 127, 255, 256, 510, 511];
        for index in indices.iter().rev() {
            store.write(FrameId::new(3), *index, pte);
        }
        let seen: Vec<usize> = store
            .present_at(store.slot(FrameId::new(3)))
            .map(|(index, entry)| {
                assert_eq!(entry, pte);
                index
            })
            .collect();
        assert_eq!(seen, indices);
    }

    #[test]
    fn clone_reachable_slices_by_va_range() {
        use crate::addr::{Level, VirtAddr};
        // Two translation paths: VA 0 and VA at the second L2 entry span
        // (2 MiB * 512 = 1 GiB apart at L3, so they share L4+L3 but use
        // distinct L2 subtrees).
        let mut store = PtStore::new();
        let root = FrameId::new(1);
        let l3 = FrameId::new(2);
        let (l2_a, l1_a) = (FrameId::new(3), FrameId::new(4));
        let (l2_b, l1_b) = (FrameId::new(5), FrameId::new(6));
        for f in [root, l3, l2_a, l1_a, l2_b, l1_b] {
            store.insert_table(f);
        }
        let table = |f: FrameId| Pte::new(f, PteFlags::table_pointer());
        let va_a = VirtAddr::new(0);
        let va_b = VirtAddr::new(Level::L3.entry_coverage()); // second L3 entry
        store.write(root, va_a.index_at(Level::L4), table(l3));
        store.write(l3, va_a.index_at(Level::L3), table(l2_a));
        store.write(l2_a, va_a.index_at(Level::L2), table(l1_a));
        store.write(
            l1_a,
            va_a.index_at(Level::L1),
            Pte::new(FrameId::new(100), PteFlags::user_data()),
        );
        store.write(l3, va_b.index_at(Level::L3), table(l2_b));
        store.write(l2_b, va_b.index_at(Level::L2), table(l1_b));
        store.write(
            l1_b,
            va_b.index_at(Level::L1),
            Pte::new(FrameId::new(200), PteFlags::user_data()),
        );

        // Slice covering only the first path.
        let slice = store.clone_reachable(&[root], &[(va_a, va_a.add(4096))]);
        assert!(slice.contains(root) && slice.contains(l3));
        assert!(slice.contains(l2_a) && slice.contains(l1_a));
        assert!(!slice.contains(l2_b) && !slice.contains(l1_b));
        assert_eq!(
            slice.read(l1_a, va_a.index_at(Level::L1)).frame(),
            Some(FrameId::new(100))
        );
        // Visited tables are copied in full: the L3 entry pointing into the
        // un-cloned subtree is still present, its target just isn't stored.
        assert!(slice.read(l3, va_b.index_at(Level::L3)).is_present());

        // A slice covering both paths copies everything reachable.
        let both =
            store.clone_reachable(&[root], &[(va_a, va_a.add(4096)), (va_b, va_b.add(4096))]);
        assert_eq!(both.table_count(), 6);
    }

    #[test]
    fn table_frames_lists_live_tables_only() {
        let mut store = PtStore::new();
        for pfn in [5u64, 6, 7] {
            store.insert_table(FrameId::new(pfn));
        }
        store.remove_table(FrameId::new(6));
        let mut frames: Vec<u64> = store.table_frames().map(|f| f.pfn()).collect();
        frames.sort_unstable();
        assert_eq!(frames, vec![5, 7]);
    }
}
