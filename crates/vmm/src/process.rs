//! Processes and their address spaces.

use crate::vma::VmaSet;
use mitosis_mem::{PlacementPolicy, PolicyEngine};
use mitosis_numa::SocketId;
use mitosis_pt::{PtRoots, ReplicationSpec, VirtAddr};
use std::fmt;

/// A process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(u32);

impl Pid {
    /// Creates a process identifier.
    pub const fn new(value: u32) -> Self {
        Pid(value)
    }

    /// The raw numeric identifier.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// Base of the anonymous-mapping region used by `mmap`.
const MMAP_BASE: u64 = 0x2000_0000_0000;

/// The virtual address space of a process.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    roots: PtRoots,
    vmas: VmaSet,
    mmap_hint: VirtAddr,
}

impl AddressSpace {
    /// Creates an address space around freshly allocated page-table roots.
    pub fn new(roots: PtRoots) -> Self {
        AddressSpace {
            roots,
            vmas: VmaSet::new(),
            mmap_hint: VirtAddr::new(MMAP_BASE),
        }
    }

    /// The per-socket page-table roots.
    pub fn roots(&self) -> &PtRoots {
        &self.roots
    }

    /// Mutable access to the roots (used when replicas are created or the
    /// page table is migrated).
    pub fn roots_mut(&mut self) -> &mut PtRoots {
        &mut self.roots
    }

    /// The VMAs of this address space.
    pub fn vmas(&self) -> &VmaSet {
        &self.vmas
    }

    /// Mutable access to the VMAs.
    pub fn vmas_mut(&mut self) -> &mut VmaSet {
        &mut self.vmas
    }

    /// Picks an unused region of `length` bytes for a new mapping and bumps
    /// the internal hint.
    pub fn reserve_region(&mut self, length: u64) -> VirtAddr {
        let start = self.vmas.find_free_region(self.mmap_hint, length);
        self.mmap_hint = start.add(length);
        start
    }
}

/// A process: identity, scheduling placement and memory-management policy.
#[derive(Debug, Clone)]
pub struct Process {
    pid: Pid,
    home_socket: SocketId,
    address_space: AddressSpace,
    data_policy: PolicyEngine,
    replication: ReplicationSpec,
}

impl Process {
    /// Creates a process homed on `home_socket`.
    pub fn new(pid: Pid, home_socket: SocketId, address_space: AddressSpace) -> Self {
        Process {
            pid,
            home_socket,
            address_space,
            data_policy: PolicyEngine::new(PlacementPolicy::FirstTouch),
            replication: ReplicationSpec::none(),
        }
    }

    /// The process identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The socket the process' threads currently run on.
    pub fn home_socket(&self) -> SocketId {
        self.home_socket
    }

    /// Moves the process to another socket (scheduling only; memory stays
    /// where it is unless explicitly migrated).
    pub fn set_home_socket(&mut self, socket: SocketId) {
        self.home_socket = socket;
    }

    /// The process' address space.
    pub fn address_space(&self) -> &AddressSpace {
        &self.address_space
    }

    /// Mutable access to the address space.
    pub fn address_space_mut(&mut self) -> &mut AddressSpace {
        &mut self.address_space
    }

    /// The data-page placement policy engine.
    pub fn data_policy(&self) -> &PolicyEngine {
        &self.data_policy
    }

    /// Mutable access to the data-page placement policy engine.
    pub fn data_policy_mut(&mut self) -> &mut PolicyEngine {
        &mut self.data_policy
    }

    /// Replaces the data-page placement policy (`set_mempolicy`/`mbind`).
    pub fn set_data_policy(&mut self, policy: PlacementPolicy) {
        self.data_policy.set_policy(policy);
    }

    /// The page-table replication request for this process.
    pub fn replication(&self) -> ReplicationSpec {
        self.replication
    }

    /// Installs a page-table replication request
    /// (`numa_set_pgtable_replication_mask`).  Newly allocated page-table
    /// pages honour it immediately; replicating the existing tree is the
    /// Mitosis controller's job.
    pub fn set_replication(&mut self, replication: ReplicationSpec) {
        self.replication = replication;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_mem::FrameId;
    use mitosis_numa::NodeMask;

    fn space() -> AddressSpace {
        AddressSpace::new(PtRoots::single(FrameId::new(1), 2))
    }

    #[test]
    fn reserve_region_bumps_the_hint() {
        let mut space = space();
        let a = space.reserve_region(0x10_000);
        let b = space.reserve_region(0x10_000);
        assert_eq!(b, a.add(0x10_000));
    }

    #[test]
    fn process_accessors() {
        let mut p = Process::new(Pid::new(7), SocketId::new(1), space());
        assert_eq!(p.pid().as_u32(), 7);
        assert_eq!(p.pid().to_string(), "pid:7");
        assert_eq!(p.home_socket(), SocketId::new(1));
        p.set_home_socket(SocketId::new(0));
        assert_eq!(p.home_socket(), SocketId::new(0));
        assert!(!p.replication().is_enabled());
        p.set_replication(ReplicationSpec::on(NodeMask::all(2)));
        assert!(p.replication().is_enabled());
        p.set_data_policy(PlacementPolicy::interleave_all(2));
        assert_eq!(p.data_policy().policy(), PlacementPolicy::interleave_all(2));
    }

    #[test]
    fn address_space_exposes_roots_and_vmas() {
        let mut space = space();
        assert_eq!(space.roots().base(), FrameId::new(1));
        assert!(space.vmas().is_empty());
        space
            .vmas_mut()
            .insert(crate::vma::Vma::new(
                VirtAddr::new(0x1000),
                0x1000,
                crate::vma::Protection::ReadWrite,
            ))
            .unwrap();
        assert_eq!(space.vmas().len(), 1);
    }
}
