//! Virtual memory areas.

use crate::error::VmError;
use mitosis_pt::{PageSize, VirtAddr};
use std::fmt;

/// Access protection of a VMA (a simplified `PROT_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protection {
    /// Readable only.
    ReadOnly,
    /// Readable and writable.
    ReadWrite,
}

impl Protection {
    /// Returns `true` if writes are permitted.
    pub fn is_writable(self) -> bool {
        matches!(self, Protection::ReadWrite)
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protection::ReadOnly => write!(f, "r--"),
            Protection::ReadWrite => write!(f, "rw-"),
        }
    }
}

/// One virtual memory area established by `mmap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    start: VirtAddr,
    length: u64,
    protection: Protection,
    /// Whether transparent huge pages may back this area.
    thp_eligible: bool,
}

impl Vma {
    /// Creates a VMA.
    ///
    /// # Panics
    ///
    /// Panics if `start` or `length` is not 4 KiB-aligned or `length` is 0.
    pub fn new(start: VirtAddr, length: u64, protection: Protection) -> Self {
        assert!(length > 0, "a VMA cannot be empty");
        assert!(
            start.is_aligned(PageSize::Base4K),
            "VMA start must be page-aligned"
        );
        assert!(
            length.is_multiple_of(PageSize::Base4K.bytes()),
            "VMA length must be page-aligned"
        );
        Vma {
            start,
            length,
            protection,
            thp_eligible: true,
        }
    }

    /// Disables transparent huge pages for this area (`madvise(MADV_NOHUGEPAGE)`).
    pub fn with_thp_disabled(mut self) -> Self {
        self.thp_eligible = false;
        self
    }

    /// First address of the area.
    pub fn start(&self) -> VirtAddr {
        self.start
    }

    /// Length of the area in bytes.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// One past the last address of the area.
    pub fn end(&self) -> VirtAddr {
        self.start.add(self.length)
    }

    /// The area's protection.
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Updates the protection (`mprotect`).
    pub fn set_protection(&mut self, protection: Protection) {
        self.protection = protection;
    }

    /// Whether THP may back the area.
    pub fn thp_eligible(&self) -> bool {
        self.thp_eligible
    }

    /// Returns `true` if `addr` lies inside the area.
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.start && addr < self.end()
    }

    /// Returns `true` if the two half-open ranges intersect.
    pub fn overlaps(&self, start: VirtAddr, length: u64) -> bool {
        let other_end = start.add(length);
        start < self.end() && self.start < other_end
    }

    /// Returns `true` if the whole 2 MiB-aligned huge page containing `addr`
    /// fits inside the area (a prerequisite for THP backing).
    pub fn fits_huge_page(&self, addr: VirtAddr) -> bool {
        let huge_start = addr.align_down(PageSize::Huge2M);
        huge_start >= self.start && huge_start.add(PageSize::Huge2M.bytes()) <= self.end()
    }

    /// Number of base pages spanned by the area.
    pub fn base_pages(&self) -> u64 {
        self.length / PageSize::Base4K.bytes()
    }

    /// Returns a sub-area of this VMA covering `[start, start + length)`,
    /// preserving protection and THP eligibility (the pieces a partial
    /// `munmap` splits an area into).
    ///
    /// # Panics
    ///
    /// Panics if the requested range is not fully inside the area.
    pub fn slice(&self, start: VirtAddr, length: u64) -> Vma {
        assert!(
            start >= self.start && start.add(length) <= self.end(),
            "slice must lie inside the area"
        );
        Vma {
            start,
            length,
            protection: self.protection,
            thp_eligible: self.thp_eligible,
        }
    }
}

/// The ordered set of VMAs of one address space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmaSet {
    areas: Vec<Vma>,
}

impl VmaSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VmaSet::default()
    }

    /// Inserts a VMA.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::VmaOverlap`] if it intersects an existing area.
    pub fn insert(&mut self, vma: Vma) -> Result<(), VmError> {
        if self
            .areas
            .iter()
            .any(|existing| existing.overlaps(vma.start(), vma.length()))
        {
            return Err(VmError::VmaOverlap { addr: vma.start() });
        }
        self.areas.push(vma);
        self.areas.sort_by_key(|v| v.start());
        Ok(())
    }

    /// Removes the VMA starting exactly at `start` and returns it.
    pub fn remove(&mut self, start: VirtAddr) -> Option<Vma> {
        let index = self.areas.iter().position(|v| v.start() == start)?;
        Some(self.areas.remove(index))
    }

    /// Finds the VMA containing `addr`.
    pub fn find(&self, addr: VirtAddr) -> Option<&Vma> {
        self.areas.iter().find(|v| v.contains(addr))
    }

    /// Finds the VMA containing `addr`, mutably.
    pub fn find_mut(&mut self, addr: VirtAddr) -> Option<&mut Vma> {
        self.areas.iter_mut().find(|v| v.contains(addr))
    }

    /// Iterates over the areas in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.areas.iter()
    }

    /// Number of areas.
    pub fn len(&self) -> usize {
        self.areas.len()
    }

    /// Returns `true` if there are no areas.
    pub fn is_empty(&self) -> bool {
        self.areas.is_empty()
    }

    /// Total bytes covered by all areas.
    pub fn total_bytes(&self) -> u64 {
        self.areas.iter().map(Vma::length).sum()
    }

    /// Carves `[start, start + length)` out of the set: areas fully inside
    /// the range are removed, areas partially covered are shrunk or split
    /// (keeping their protection and THP eligibility).  Returns the removed
    /// pieces in address order — exactly the sub-areas a partial `munmap`
    /// tears down.
    pub fn remove_range(&mut self, start: VirtAddr, length: u64) -> Vec<Vma> {
        let end = start.add(length);
        let mut removed = Vec::new();
        let mut kept = Vec::new();
        for vma in self.areas.drain(..) {
            if !vma.overlaps(start, length) {
                kept.push(vma);
                continue;
            }
            let cut_start = vma.start().max(start);
            let cut_end = vma.end().min(end);
            if vma.start() < cut_start {
                kept.push(vma.slice(vma.start(), cut_start.as_u64() - vma.start().as_u64()));
            }
            removed.push(vma.slice(cut_start, cut_end.as_u64() - cut_start.as_u64()));
            if cut_end < vma.end() {
                kept.push(vma.slice(cut_end, vma.end().as_u64() - cut_end.as_u64()));
            }
        }
        kept.sort_by_key(|v| v.start());
        self.areas = kept;
        removed.sort_by_key(|v| v.start());
        removed
    }

    /// Returns the lowest address at or above `hint` where a `length`-byte
    /// region fits without overlapping any area.
    pub fn find_free_region(&self, hint: VirtAddr, length: u64) -> VirtAddr {
        let mut candidate = hint;
        loop {
            match self.areas.iter().find(|v| v.overlaps(candidate, length)) {
                Some(blocking) => candidate = blocking.end(),
                None => return candidate,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vma(start: u64, len: u64) -> Vma {
        Vma::new(VirtAddr::new(start), len, Protection::ReadWrite)
    }

    #[test]
    fn contains_and_overlaps() {
        let v = vma(0x10000, 0x4000);
        assert!(v.contains(VirtAddr::new(0x10000)));
        assert!(v.contains(VirtAddr::new(0x13fff)));
        assert!(!v.contains(VirtAddr::new(0x14000)));
        assert!(v.overlaps(VirtAddr::new(0x13000), 0x2000));
        assert!(!v.overlaps(VirtAddr::new(0x14000), 0x1000));
        assert_eq!(v.base_pages(), 4);
    }

    #[test]
    fn insert_rejects_overlap() {
        let mut set = VmaSet::new();
        set.insert(vma(0x10000, 0x4000)).unwrap();
        assert_eq!(
            set.insert(vma(0x12000, 0x4000)),
            Err(VmError::VmaOverlap {
                addr: VirtAddr::new(0x12000)
            })
        );
        set.insert(vma(0x14000, 0x1000)).unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.total_bytes(), 0x5000);
    }

    #[test]
    fn find_and_remove() {
        let mut set = VmaSet::new();
        set.insert(vma(0x10000, 0x4000)).unwrap();
        set.insert(vma(0x20000, 0x1000)).unwrap();
        assert_eq!(
            set.find(VirtAddr::new(0x20000)).unwrap().start(),
            VirtAddr::new(0x20000)
        );
        assert!(set.find(VirtAddr::new(0x30000)).is_none());
        let removed = set.remove(VirtAddr::new(0x10000)).unwrap();
        assert_eq!(removed.length(), 0x4000);
        assert!(set.remove(VirtAddr::new(0x10000)).is_none());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn find_free_region_skips_existing_areas() {
        let mut set = VmaSet::new();
        set.insert(vma(0x10000, 0x4000)).unwrap();
        set.insert(vma(0x14000, 0x4000)).unwrap();
        let free = set.find_free_region(VirtAddr::new(0x10000), 0x2000);
        assert_eq!(free, VirtAddr::new(0x18000));
        let untouched = set.find_free_region(VirtAddr::new(0x40000), 0x2000);
        assert_eq!(untouched, VirtAddr::new(0x40000));
    }

    #[test]
    fn remove_range_splits_and_shrinks() {
        let mut set = VmaSet::new();
        set.insert(vma(0x10000, 0x8000)).unwrap();
        // Punch a hole in the middle: the VMA splits into head and tail.
        let removed = set.remove_range(VirtAddr::new(0x12000), 0x2000);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].start(), VirtAddr::new(0x12000));
        assert_eq!(removed[0].length(), 0x2000);
        assert_eq!(set.len(), 2);
        assert!(set.find(VirtAddr::new(0x11fff)).is_some());
        assert!(set.find(VirtAddr::new(0x12000)).is_none());
        assert!(set.find(VirtAddr::new(0x14000)).is_some());
        // Shrink the head from the front.
        let removed = set.remove_range(VirtAddr::new(0x10000), 0x1000);
        assert_eq!(removed.len(), 1);
        assert_eq!(
            set.find(VirtAddr::new(0x11000)).unwrap().start(),
            VirtAddr::new(0x11000)
        );
        // A range spanning the hole removes pieces of both remnants.
        let removed = set.remove_range(VirtAddr::new(0x11000), 0x4000);
        assert_eq!(removed.len(), 2);
        assert_eq!(set.total_bytes(), 0x3000);
        // A disjoint range removes nothing.
        assert!(set.remove_range(VirtAddr::new(0x40000), 0x1000).is_empty());
    }

    #[test]
    fn slices_preserve_protection_and_thp_flags() {
        let v = Vma::new(VirtAddr::new(0x10000), 0x4000, Protection::ReadOnly).with_thp_disabled();
        let piece = v.slice(VirtAddr::new(0x11000), 0x1000);
        assert_eq!(piece.protection(), Protection::ReadOnly);
        assert!(!piece.thp_eligible());
        assert_eq!(piece.length(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "inside the area")]
    fn slice_outside_the_area_panics() {
        let v = vma(0x10000, 0x1000);
        let _ = v.slice(VirtAddr::new(0x11000), 0x1000);
    }

    #[test]
    fn huge_page_fit() {
        let aligned = Vma::new(
            VirtAddr::new(0x4000_0000),
            4 * 1024 * 1024,
            Protection::ReadWrite,
        );
        assert!(aligned.fits_huge_page(VirtAddr::new(0x4000_0000)));
        assert!(aligned.fits_huge_page(VirtAddr::new(0x401f_f000)));
        let small = vma(0x4000_0000, 0x10_0000); // 1 MiB: no huge page fits
        assert!(!small.fits_huge_page(VirtAddr::new(0x4000_0000)));
    }

    #[test]
    fn protection_updates() {
        let mut v = vma(0x1000, 0x1000);
        assert!(v.protection().is_writable());
        v.set_protection(Protection::ReadOnly);
        assert!(!v.protection().is_writable());
        assert_eq!(v.protection().to_string(), "r--");
    }

    #[test]
    fn thp_opt_out() {
        let v = vma(0x1000, 0x1000).with_thp_disabled();
        assert!(!v.thp_eligible());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_vma_panics() {
        let _ = Vma::new(VirtAddr::new(0x123), 0x1000, Protection::ReadWrite);
    }
}
