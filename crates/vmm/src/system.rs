//! The kernel: processes, system calls, demand paging and migration.

use crate::config::{PtPlacement, ShootdownMode, ThpMode, VmmConfig};
use crate::error::VmError;
use crate::process::{AddressSpace, Pid, Process};
use crate::vma::{Protection, Vma};
use mitosis_mem::{CowRefCounts, FrameId, FrameKind, MemError};
use mitosis_numa::{Machine, SocketId};
use mitosis_pt::{
    Level, Mapper, MappingTx, NativePvOps, PageSize, PageTableDump, PtEnv, Pte, PteFlags, PvOps,
    ShootdownPlan, Translation, VirtAddr,
};
use std::collections::BTreeMap;

/// Flags controlling an [`System::mmap`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmapFlags {
    /// Eagerly fault in every page (`MAP_POPULATE`).
    pub populate: bool,
    /// Protection of the new area.
    pub protection: Protection,
    /// Allow transparent huge pages to back the area.
    pub thp_eligible: bool,
}

impl MmapFlags {
    /// Lazily populated, read-write, THP-eligible mapping.
    pub fn lazy() -> Self {
        MmapFlags {
            populate: false,
            protection: Protection::ReadWrite,
            thp_eligible: true,
        }
    }

    /// Eagerly populated (`MAP_POPULATE`), read-write, THP-eligible mapping.
    pub fn populate() -> Self {
        MmapFlags {
            populate: true,
            ..MmapFlags::lazy()
        }
    }

    /// Disables THP for the area (`MADV_NOHUGEPAGE`).
    pub fn without_thp(mut self) -> Self {
        self.thp_eligible = false;
        self
    }

    /// Sets the protection of the area.
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }
}

impl Default for MmapFlags {
    fn default() -> Self {
        MmapFlags::lazy()
    }
}

/// Result of servicing one page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// First virtual address of the page that was mapped.
    pub addr: VirtAddr,
    /// Size of the page that was mapped.
    pub size: PageSize,
    /// First physical frame backing the page.
    pub frame: FrameId,
    /// `true` if the page was already mapped (spurious fault) and nothing
    /// was done.
    pub already_mapped: bool,
}

/// Per-socket memory footprint of one process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Bytes of data pages on each socket.
    pub data_bytes: Vec<u64>,
    /// Bytes of page-table pages on each socket (including replicas).
    pub pagetable_bytes: Vec<u64>,
}

impl MemoryFootprint {
    /// Total data bytes across sockets.
    pub fn total_data(&self) -> u64 {
        self.data_bytes.iter().sum()
    }

    /// Total page-table bytes across sockets.
    pub fn total_pagetables(&self) -> u64 {
        self.pagetable_bytes.iter().sum()
    }

    /// Page-table overhead relative to the data footprint, as a fraction.
    pub fn pagetable_overhead(&self) -> f64 {
        let data = self.total_data();
        if data == 0 {
            0.0
        } else {
            self.total_pagetables() as f64 / data as f64
        }
    }
}

/// The simulated kernel.
///
/// Owns the machine description, the physical page-table state ([`PtEnv`]),
/// the PV-Ops backend and every process.  See the crate-level documentation
/// for an example.
///
/// `System` is `Clone` (the PV-Ops backend clones through
/// [`PvOps::clone_box`]): a clone is a full, independent snapshot of the
/// simulated machine — page tables, frame allocator, per-frame metadata,
/// processes and VMA trees — which is what lets replay drivers prepare a
/// system once and fan identical copies out to worker threads instead of
/// re-executing the setup per worker.
#[derive(Debug, Clone)]
pub struct System {
    machine: Machine,
    env: PtEnv,
    ops: Box<dyn PvOps>,
    processes: BTreeMap<Pid, Process>,
    config: VmmConfig,
    next_pid: u32,
    cow: CowRefCounts,
    pending: MappingTx,
}

impl System {
    /// Creates a system with the stock (native, non-replicating) PV-Ops
    /// backend.
    pub fn new(machine: Machine) -> Self {
        System::with_pvops(machine, Box::new(NativePvOps::new()))
    }

    /// Creates a system with an explicit PV-Ops backend (this is how the
    /// Mitosis backend is installed).
    pub fn with_pvops(machine: Machine, ops: Box<dyn PvOps>) -> Self {
        let env = PtEnv::new(&machine);
        System {
            machine,
            env,
            ops,
            processes: BTreeMap::new(),
            config: VmmConfig::stock(),
            next_pid: 1,
            cow: CowRefCounts::new(),
            pending: MappingTx::new(),
        }
    }

    /// The address-space identifier (TLB tag) of a process — its pid's low
    /// 16 bits, the way Linux derives PCIDs.
    pub fn asid_of(pid: Pid) -> u16 {
        pid.as_u32() as u16
    }

    /// The shootdown work accumulated by mapping mutations since the last
    /// [`System::take_shootdown_plan`].  Empty in
    /// [`ShootdownMode::Broadcast`](crate::ShootdownMode::Broadcast).
    pub fn pending_shootdown(&self) -> &MappingTx {
        &self.pending
    }

    /// Drains the accumulated mapping mutations into a [`ShootdownPlan`]
    /// ready to apply against the simulated TLBs.
    pub fn take_shootdown_plan(&mut self) -> ShootdownPlan {
        self.pending.take_plan()
    }

    /// The copy-on-write share table (fork bookkeeping).
    pub fn cow_refcounts(&self) -> &CowRefCounts {
        &self.cow
    }

    /// The machine this system runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (e.g. to install interference).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The system-wide virtual-memory configuration.
    pub fn config(&self) -> VmmConfig {
        self.config
    }

    /// Sets the transparent-huge-page mode.
    pub fn set_thp(&mut self, mode: ThpMode) {
        self.config.thp = mode;
    }

    /// Sets the page-table placement policy.
    pub fn set_pt_placement(&mut self, placement: PtPlacement) {
        self.config.pt_placement = placement;
    }

    /// Sets the TLB-consistency model for mapping mutations.
    pub fn set_shootdown_mode(&mut self, mode: ShootdownMode) {
        self.config.shootdown = mode;
    }

    /// Replaces the whole configuration.
    pub fn set_config(&mut self, config: VmmConfig) {
        self.config = config;
    }

    /// The page-table environment (store, frame table, allocator, cache).
    pub fn pt_env(&self) -> &PtEnv {
        &self.env
    }

    /// Mutable access to the page-table environment (used by the execution
    /// engine to let the hardware walker set accessed/dirty bits).
    pub fn pt_env_mut(&mut self) -> &mut PtEnv {
        &mut self.env
    }

    /// The installed PV-Ops backend.
    pub fn pvops(&self) -> &dyn PvOps {
        self.ops.as_ref()
    }

    /// Mutable access to the PV-Ops backend (statistics reset etc.).
    pub fn pvops_mut(&mut self) -> &mut dyn PvOps {
        self.ops.as_mut()
    }

    /// Borrows the PV-Ops backend together with a page-table context, for OS
    /// code paths that read entries *through* the backend (e.g. consolidated
    /// accessed/dirty reads across replicas).
    pub fn pvops_with_context(&mut self) -> (&dyn PvOps, mitosis_pt::PtContext<'_>) {
        (self.ops.as_ref(), self.env.context())
    }

    /// Identifiers of all live processes.
    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().copied().collect()
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] if it does not exist.
    pub fn process(&self, pid: Pid) -> Result<&Process, VmError> {
        self.processes
            .get(&pid)
            .ok_or(VmError::NoSuchProcess { pid })
    }

    /// Looks up a process mutably.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] if it does not exist.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, VmError> {
        self.processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })
    }

    /// Creates a new process homed on `home_socket` and returns its pid.
    ///
    /// # Errors
    ///
    /// Returns an error if the page-table root cannot be allocated.
    pub fn create_process(&mut self, home_socket: SocketId) -> Result<Pid, VmError> {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let pt_socket = self.config.pt_placement.resolve(home_socket);
        let mut ctx = self.env.context();
        let roots = Mapper::create_roots(
            self.ops.as_mut(),
            &mut ctx,
            pt_socket,
            mitosis_pt::ReplicationSpec::none(),
        )?;
        let process = Process::new(pid, home_socket, AddressSpace::new(roots));
        self.processes.insert(pid, process);
        Ok(pid)
    }

    /// Maps `length` bytes of anonymous memory into the process and returns
    /// the starting address.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero/unaligned length, an unknown process, or
    /// (with `populate`) an allocation failure.
    pub fn mmap(&mut self, pid: Pid, length: u64, flags: MmapFlags) -> Result<VirtAddr, VmError> {
        if length == 0 || !length.is_multiple_of(PageSize::Base4K.bytes()) {
            return Err(VmError::InvalidArgument);
        }
        let home = self.process(pid)?.home_socket();
        let process = self.process_mut(pid)?;
        let start = process.address_space_mut().reserve_region(length);
        let mut vma = Vma::new(start, length, flags.protection);
        if !flags.thp_eligible {
            vma = vma.with_thp_disabled();
        }
        process.address_space_mut().vmas_mut().insert(vma)?;
        if flags.populate {
            self.populate_region(pid, start, length, home)?;
        }
        Ok(start)
    }

    /// Faults in every page of `[addr, addr + length)` as if touched by a
    /// thread running on `socket`.
    ///
    /// # Errors
    ///
    /// Propagates fault-handling errors; pages already mapped are skipped.
    pub fn populate_region(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        length: u64,
        socket: SocketId,
    ) -> Result<(), VmError> {
        let mut cursor = addr;
        let end = addr.add(length);
        while cursor < end {
            let outcome = self.handle_fault(pid, cursor, socket)?;
            cursor = outcome.addr.add(outcome.size.bytes());
        }
        Ok(())
    }

    /// Handles a page fault at `addr` raised by a thread running on
    /// `socket`: allocates a data page according to the process' placement
    /// policy and maps it, backing the area with a 2 MiB page when THP
    /// allows.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SegmentationFault`] if no VMA covers `addr`, or an
    /// allocation/page-table error.
    pub fn handle_fault(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        socket: SocketId,
    ) -> Result<FaultOutcome, VmError> {
        let config = self.config;
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let (protection, thp_eligible, fits_huge) = {
            let vma = process
                .address_space()
                .vmas()
                .find(addr)
                .ok_or(VmError::SegmentationFault { addr })?;
            (
                vma.protection(),
                vma.thp_eligible(),
                vma.fits_huge_page(addr),
            )
        };
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);

        // Spurious fault: the page is already mapped.
        if let Some(existing) = mapper.translate(&ctx, addr) {
            return Ok(FaultOutcome {
                addr: addr.align_down(existing.size),
                size: existing.size,
                frame: existing.frame,
                already_mapped: true,
            });
        }

        let flags = if protection.is_writable() {
            PteFlags::user_data()
        } else {
            PteFlags::user_readonly()
        };
        let pt_socket = config.pt_placement.resolve(socket);

        // Try a transparent huge page first.
        if config.thp.is_enabled() && thp_eligible && fits_huge {
            let huge_addr = addr.align_down(PageSize::Huge2M);
            // The whole 2 MiB range must be unmapped.
            let range_free = mapper.translate(&ctx, huge_addr).is_none();
            if range_free {
                if let Ok(frame) = process.data_policy_mut().alloc_huge_data(ctx.alloc, socket) {
                    ctx.frames.insert(frame, FrameKind::Data);
                    match mapper.map(
                        self.ops.as_mut(),
                        &mut ctx,
                        huge_addr,
                        frame,
                        PageSize::Huge2M,
                        flags,
                        pt_socket,
                        replication,
                    ) {
                        Ok(()) => {
                            return Ok(FaultOutcome {
                                addr: huge_addr,
                                size: PageSize::Huge2M,
                                frame,
                                already_mapped: false,
                            });
                        }
                        Err(mitosis_pt::PtError::AlreadyMapped { .. }) => {
                            // Part of the range is mapped with base pages:
                            // fall back to a 4 KiB page for this fault.
                            ctx.frames.remove(frame);
                            ctx.alloc.free_huge(frame)?;
                        }
                        Err(other) => return Err(other.into()),
                    }
                }
            }
        }

        // Base-page path.
        let page_addr = addr.align_down(PageSize::Base4K);
        let frame = process.data_policy_mut().alloc_data(ctx.alloc, socket)?;
        ctx.frames.insert(frame, FrameKind::Data);
        mapper.map(
            self.ops.as_mut(),
            &mut ctx,
            page_addr,
            frame,
            PageSize::Base4K,
            flags,
            pt_socket,
            replication,
        )?;
        Ok(FaultOutcome {
            addr: page_addr,
            size: PageSize::Base4K,
            frame,
            already_mapped: false,
        })
    }

    /// Handles a memory-access fault at `addr` by a thread on `socket`,
    /// distinguishing reads from writes: a store through a read-only leaf of
    /// a writable area is a copy-on-write break (the frame was shared by
    /// [`System::fork`]) and gets a private copy; everything else falls
    /// through to demand paging ([`System::handle_fault`]).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SegmentationFault`] for an access outside any VMA
    /// or a store into a read-only area, or propagates allocation errors.
    pub fn handle_fault_access(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        socket: SocketId,
        is_write: bool,
    ) -> Result<FaultOutcome, VmError> {
        if !is_write {
            return self.handle_fault(pid, addr, socket);
        }
        let t = match self.translate(pid, addr)? {
            None => return self.handle_fault(pid, addr, socket),
            Some(t) => t,
        };
        if t.pte.flags().writable {
            // Spurious: another thread already resolved the fault.
            return Ok(FaultOutcome {
                addr: addr.align_down(t.size),
                size: t.size,
                frame: t.frame,
                already_mapped: true,
            });
        }
        let ranged = self.config.shootdown.is_ranged();
        let asid = Self::asid_of(pid);
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let vma_writable = process
            .address_space()
            .vmas()
            .find(addr)
            .ok_or(VmError::SegmentationFault { addr })?
            .protection()
            .is_writable();
        if !vma_writable {
            return Err(VmError::SegmentationFault { addr });
        }
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let aligned = addr.align_down(t.size);
        let pt_socket = self.config.pt_placement.resolve(socket);
        let flags = PteFlags::user_data();
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        if self.cow.is_shared(t.frame) {
            // Still shared: copy the page to a private frame placed by the
            // process' data policy, remap, and drop our reference.
            let new_frame = match t.size {
                PageSize::Base4K => process.data_policy_mut().alloc_data(ctx.alloc, socket)?,
                PageSize::Huge2M => process
                    .data_policy_mut()
                    .alloc_huge_data(ctx.alloc, socket)?,
                PageSize::Giant1G => return Err(VmError::InvalidArgument),
            };
            ctx.frames.insert(new_frame, FrameKind::Data);
            mapper.unmap(self.ops.as_mut(), &mut ctx, aligned)?;
            mapper.map(
                self.ops.as_mut(),
                &mut ctx,
                aligned,
                new_frame,
                t.size,
                flags,
                pt_socket,
                replication,
            )?;
            self.cow.release(t.frame);
            if ranged {
                self.pending.invalidate_page(asid, aligned, t.size);
            }
            Ok(FaultOutcome {
                addr: aligned,
                size: t.size,
                frame: new_frame,
                already_mapped: false,
            })
        } else {
            // The other side already copied; the frame is exclusive again
            // and can be written in place.
            mapper.protect(self.ops.as_mut(), &mut ctx, aligned, flags)?;
            if ranged {
                self.pending.invalidate_page(asid, aligned, t.size);
            }
            Ok(FaultOutcome {
                addr: aligned,
                size: t.size,
                frame: t.frame,
                already_mapped: false,
            })
        }
    }

    /// Forks `parent`: the child gets its own page-table tree (honouring the
    /// parent's replication request and the system's page-table placement
    /// policy), a copy of the parent's VMAs and data policy, and shares
    /// every mapped data frame copy-on-write — writable leaves are
    /// downgraded to read-only in the parent and mapped read-only in the
    /// child, so the next store from either side faults and copies
    /// ([`System::handle_fault_access`]).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown parent, or
    /// propagates page-table allocation errors.
    pub fn fork(&mut self, parent: Pid) -> Result<Pid, VmError> {
        let ranged = self.config.shootdown.is_ranged();
        let parent_asid = Self::asid_of(parent);
        let (home, replication, policy, parent_roots, vmas) = {
            let p = self.process(parent)?;
            (
                p.home_socket(),
                p.replication(),
                p.data_policy().policy(),
                p.address_space().roots().clone(),
                p.address_space().vmas().clone(),
            )
        };
        let child_pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let leaves = mitosis_pt::iter_leaf_mappings(&self.env.store, parent_roots.base());
        let pt_socket = self.config.pt_placement.resolve(home);
        let mut ctx = self.env.context();
        let child_roots =
            Mapper::create_roots(self.ops.as_mut(), &mut ctx, pt_socket, replication)?;
        let parent_mapper = Mapper::new(&parent_roots);
        let child_mapper = Mapper::new(&child_roots);
        let readonly = PteFlags::user_readonly();
        for leaf in leaves {
            if leaf.pte.flags().writable {
                parent_mapper.protect(self.ops.as_mut(), &mut ctx, leaf.addr, readonly)?;
                if ranged {
                    self.pending
                        .invalidate_page(parent_asid, leaf.addr, leaf.size);
                }
            }
            child_mapper.map(
                self.ops.as_mut(),
                &mut ctx,
                leaf.addr,
                leaf.frame,
                leaf.size,
                readonly,
                pt_socket,
                replication,
            )?;
            self.cow.share(leaf.frame);
        }
        let mut child = Process::new(child_pid, home, AddressSpace::new(child_roots));
        child.set_replication(replication);
        child.set_data_policy(policy);
        for vma in vmas.iter() {
            child.address_space_mut().vmas_mut().insert(vma.clone())?;
        }
        self.processes.insert(child_pid, child);
        Ok(child_pid)
    }

    /// Maps `length` bytes of anonymous memory at exactly `addr`
    /// (`MAP_FIXED`-like, without the implicit unmap), failing if the range
    /// overlaps an existing area.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidArgument`] for a zero/unaligned request,
    /// [`VmError::VmaOverlap`] on overlap, or propagates fault errors when
    /// populating.
    pub fn mmap_at(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        length: u64,
        flags: MmapFlags,
    ) -> Result<VirtAddr, VmError> {
        if length == 0
            || !length.is_multiple_of(PageSize::Base4K.bytes())
            || !addr.is_aligned(PageSize::Base4K)
        {
            return Err(VmError::InvalidArgument);
        }
        let home = self.process(pid)?.home_socket();
        let process = self.process_mut(pid)?;
        let mut vma = Vma::new(addr, length, flags.protection);
        if !flags.thp_eligible {
            vma = vma.with_thp_disabled();
        }
        process.address_space_mut().vmas_mut().insert(vma)?;
        if flags.populate {
            self.populate_region(pid, addr, length, home)?;
        }
        Ok(addr)
    }

    /// Promotes the 2 MiB-aligned region at `addr` from 512 base pages to
    /// one huge page, as `khugepaged` would: allocates a huge frame on the
    /// socket of the first base page, frees the base frames and installs a
    /// single leaf.  Returns `false` — leaving the mappings untouched — when
    /// the region is not promotable (incomplete, mixed protection,
    /// copy-on-write shared, or already huge) or when the huge-frame
    /// allocation fails under fragmentation.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidArgument`] for an unaligned address,
    /// [`VmError::SegmentationFault`] when no VMA covers the region, or
    /// propagates page-table errors.
    pub fn promote_huge(&mut self, pid: Pid, addr: VirtAddr) -> Result<bool, VmError> {
        if !addr.is_aligned(PageSize::Huge2M) {
            return Err(VmError::InvalidArgument);
        }
        let ranged = self.config.shootdown.is_ranged();
        let asid = Self::asid_of(pid);
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        {
            let vma = process
                .address_space()
                .vmas()
                .find(addr)
                .ok_or(VmError::SegmentationFault { addr })?;
            if !vma.contains(addr.add(PageSize::Huge2M.bytes() - 1)) {
                return Ok(false);
            }
        }
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let home = process.home_socket();
        let pt_socket = self.config.pt_placement.resolve(home);
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        // Every base page must be present, base-sized, exclusively owned
        // and uniformly protected.
        let pages = PageSize::Huge2M.bytes() / PageSize::Base4K.bytes();
        let mut first_frame = None;
        let mut writable = true;
        for i in 0..pages {
            let page = addr.add(i * PageSize::Base4K.bytes());
            match mapper.translate(&ctx, page) {
                Some(t) if t.size == PageSize::Base4K && !self.cow.is_shared(t.frame) => {
                    if i == 0 {
                        first_frame = Some(t.frame);
                        writable = t.pte.flags().writable;
                    } else if t.pte.flags().writable != writable {
                        return Ok(false);
                    }
                }
                _ => return Ok(false),
            }
        }
        let target = ctx
            .frames
            .socket_of(first_frame.expect("512 pages were checked"));
        let huge = match ctx.alloc.alloc_huge_on(target) {
            Ok(frame) => frame,
            Err(MemError::HugeAllocationFailed { .. }) => return Ok(false),
            Err(other) => return Err(other.into()),
        };
        ctx.frames.insert(huge, FrameKind::Data);
        for i in 0..pages {
            let page = addr.add(i * PageSize::Base4K.bytes());
            let old = mapper.unmap(self.ops.as_mut(), &mut ctx, page)?;
            let frame = old.frame().expect("mapped entry has a frame");
            ctx.frames.remove(frame);
            ctx.alloc.free(frame)?;
        }
        // The unmaps left an empty L1 table linked at L2; unlink and
        // release it (and its replicas) so the huge leaf can take the slot.
        let mut table = roots.base();
        for level in [Level::L4, Level::L3] {
            table = self
                .ops
                .read_pte(&ctx, table, addr.index_at(level))
                .frame()
                .expect("intermediate tables exist for a mapped region");
        }
        let l2_index = addr.index_at(Level::L2);
        let l1 = self
            .ops
            .read_pte(&ctx, table, l2_index)
            .frame()
            .expect("the freed base pages hung off an L1 table");
        if ranged {
            for member in ctx.frames.replicas_of(l1) {
                self.pending.evict_table(member);
            }
        }
        self.ops.set_pte(&mut ctx, table, l2_index, Pte::EMPTY);
        self.ops.release_table(&mut ctx, l1)?;
        let flags = if writable {
            PteFlags::user_data()
        } else {
            PteFlags::user_readonly()
        };
        mapper.map(
            self.ops.as_mut(),
            &mut ctx,
            addr,
            huge,
            PageSize::Huge2M,
            flags,
            pt_socket,
            replication,
        )?;
        if ranged {
            self.pending
                .invalidate_bytes(asid, addr, PageSize::Huge2M.bytes(), PageSize::Base4K);
        }
        Ok(true)
    }

    /// Demotes the 2 MiB leaf at `addr` back to 512 base-page mappings of
    /// the same frames (no copy), the way a partial operation on a huge
    /// page forces a split.  Returns `false` — a no-op — when the address
    /// is not backed by an exclusively-owned huge mapping.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidArgument`] for an unaligned address, or
    /// propagates page-table errors.
    pub fn demote_huge(&mut self, pid: Pid, addr: VirtAddr) -> Result<bool, VmError> {
        if !addr.is_aligned(PageSize::Huge2M) {
            return Err(VmError::InvalidArgument);
        }
        let ranged = self.config.shootdown.is_ranged();
        let asid = Self::asid_of(pid);
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let home = process.home_socket();
        let pt_socket = self.config.pt_placement.resolve(home);
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        let t = match mapper.translate(&ctx, addr) {
            Some(t) if t.size == PageSize::Huge2M && !self.cow.is_shared(t.frame) => t,
            _ => return Ok(false),
        };
        let old = mapper.unmap(self.ops.as_mut(), &mut ctx, addr)?;
        let flags = PteFlags {
            huge: false,
            ..old.flags()
        };
        let pages = PageSize::Huge2M.bytes() / PageSize::Base4K.bytes();
        for i in 0..pages {
            let page = addr.add(i * PageSize::Base4K.bytes());
            let frame = t.frame.offset(i);
            if i != 0 {
                ctx.frames.insert(frame, FrameKind::Data);
            }
            mapper.map(
                self.ops.as_mut(),
                &mut ctx,
                page,
                frame,
                PageSize::Base4K,
                flags,
                pt_socket,
                replication,
            )?;
        }
        if ranged {
            self.pending.invalidate_page(asid, addr, PageSize::Huge2M);
        }
        Ok(true)
    }

    /// Unmaps `[addr, addr + length)`, splitting or shrinking any areas the
    /// range partially covers (Linux `munmap` semantics: the range need not
    /// name a whole VMA, or even a mapped one).
    ///
    /// Copy-on-write shared frames are released, not freed, unless this was
    /// the last mapping of the frame.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidArgument`] for a zero or unaligned range,
    /// or one that would split a huge-page mapping (demote it first), and
    /// [`VmError::SegmentationFault`] when the range overlaps no area.
    pub fn munmap(&mut self, pid: Pid, addr: VirtAddr, length: u64) -> Result<(), VmError> {
        if length == 0
            || !length.is_multiple_of(PageSize::Base4K.bytes())
            || !addr.is_aligned(PageSize::Base4K)
        {
            return Err(VmError::InvalidArgument);
        }
        let ranged = self.config.shootdown.is_ranged();
        let asid = Self::asid_of(pid);
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        // A huge mapping straddling the edge of the range cannot be split;
        // reject before mutating any state.
        let roots = process.address_space().roots().clone();
        for &edge in &[addr, addr.add(length)] {
            if let Some(t) = mitosis_pt::translate(&self.env.store, roots.base(), edge) {
                if edge.align_down(t.size) < edge {
                    return Err(VmError::InvalidArgument);
                }
            }
        }
        let removed = process
            .address_space_mut()
            .vmas_mut()
            .remove_range(addr, length);
        if removed.is_empty() {
            return Err(VmError::SegmentationFault { addr });
        }
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        for piece in &removed {
            let mut cursor = piece.start();
            let end = piece.end();
            while cursor < end {
                match mapper.translate(&ctx, cursor) {
                    Some(t) => {
                        let aligned = cursor.align_down(t.size);
                        let old = mapper.unmap(self.ops.as_mut(), &mut ctx, aligned)?;
                        let frame = old.frame().expect("mapped entry has a frame");
                        if ranged {
                            self.pending.invalidate_page(asid, aligned, t.size);
                        }
                        if self.cow.release(frame) {
                            ctx.frames.remove(frame);
                            match t.size {
                                PageSize::Base4K => ctx.alloc.free(frame)?,
                                PageSize::Huge2M => ctx.alloc.free_huge(frame)?,
                                PageSize::Giant1G => {
                                    for i in 0..PageSize::Giant1G.frames() / 512 {
                                        ctx.alloc.free_huge(frame.offset(i * 512))?;
                                    }
                                }
                            }
                        }
                        cursor = aligned.add(t.size.bytes());
                    }
                    None => cursor = cursor.add(PageSize::Base4K.bytes()),
                }
            }
        }
        Ok(())
    }

    /// Changes the protection of `[addr, addr + length)` (`mprotect`).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SegmentationFault`] if the range is not covered by
    /// a VMA.
    pub fn mprotect(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        length: u64,
        protection: Protection,
    ) -> Result<(), VmError> {
        if length == 0 {
            return Err(VmError::InvalidArgument);
        }
        let ranged = self.config.shootdown.is_ranged();
        let asid = Self::asid_of(pid);
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        {
            let vma = process
                .address_space_mut()
                .vmas_mut()
                .find_mut(addr)
                .ok_or(VmError::SegmentationFault { addr })?;
            if vma.start() == addr && vma.length() == length {
                vma.set_protection(protection);
            }
        }
        let roots = process.address_space().roots().clone();
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        let flags = if protection.is_writable() {
            PteFlags::user_data()
        } else {
            PteFlags::user_readonly()
        };
        let mut cursor = addr;
        let end = addr.add(length);
        while cursor < end {
            match mapper.translate(&ctx, cursor) {
                Some(t) => {
                    mapper.protect(self.ops.as_mut(), &mut ctx, cursor, flags)?;
                    if ranged {
                        self.pending
                            .invalidate_page(asid, cursor.align_down(t.size), t.size);
                    }
                    cursor = cursor.add(t.size.bytes());
                }
                None => cursor = cursor.add(PageSize::Base4K.bytes()),
            }
        }
        Ok(())
    }

    /// Translates a virtual address of a process in software.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn translate(&self, pid: Pid, addr: VirtAddr) -> Result<Option<Translation>, VmError> {
        let process = self.process(pid)?;
        Ok(mitosis_pt::translate(
            &self.env.store,
            process.address_space().roots().base(),
            addr,
        ))
    }

    /// Captures a placement dump of the process' page table (base replica).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn page_table_dump(&self, pid: Pid) -> Result<PageTableDump, VmError> {
        let process = self.process(pid)?;
        Ok(PageTableDump::capture(
            &self.env.store,
            &self.env.frames,
            process.address_space().roots().base(),
        ))
    }

    /// Captures a placement dump of the page-table replica used by `socket`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn page_table_dump_for_socket(
        &self,
        pid: Pid,
        socket: SocketId,
    ) -> Result<PageTableDump, VmError> {
        let process = self.process(pid)?;
        Ok(PageTableDump::capture(
            &self.env.store,
            &self.env.frames,
            process.address_space().roots().root_for_socket(socket),
        ))
    }

    /// Migrates one mapped data page to `target` socket, preserving its
    /// virtual address, protection and page size.  Returns `false` if the
    /// page already lives on `target`.
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn migrate_data_page(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        target: SocketId,
    ) -> Result<bool, VmError> {
        let ranged = self.config.shootdown.is_ranged();
        let asid = Self::asid_of(pid);
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let pt_socket = self.config.pt_placement.resolve(target);
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        let t = match mapper.translate(&ctx, addr) {
            Some(t) => t,
            None => return Err(VmError::SegmentationFault { addr }),
        };
        if ctx.frames.socket_of(t.frame) == target {
            return Ok(false);
        }
        // A copy-on-write shared frame is pinned until the sharing breaks:
        // migrating it would move the page out from under the other owner.
        if self.cow.is_shared(t.frame) {
            return Ok(false);
        }
        let new_frame = match t.size {
            PageSize::Base4K => ctx.alloc.alloc_on(target)?,
            PageSize::Huge2M => ctx.alloc.alloc_huge_on(target)?,
            PageSize::Giant1G => return Err(VmError::InvalidArgument),
        };
        ctx.frames.insert(new_frame, FrameKind::Data);
        let aligned = addr.align_down(t.size);
        let old = mapper.unmap(self.ops.as_mut(), &mut ctx, aligned)?;
        let old_frame = old.frame().expect("mapped entry has a frame");
        mapper.map(
            self.ops.as_mut(),
            &mut ctx,
            aligned,
            new_frame,
            t.size,
            old.flags(),
            pt_socket,
            replication,
        )?;
        ctx.frames.remove(old_frame);
        match t.size {
            PageSize::Base4K => ctx.alloc.free(old_frame)?,
            PageSize::Huge2M => ctx.alloc.free_huge(old_frame)?,
            PageSize::Giant1G => unreachable!("rejected above"),
        }
        if ranged {
            self.pending.invalidate_page(asid, aligned, t.size);
        }
        Ok(true)
    }

    /// Migrates every data page of the process to `target`.  Returns the
    /// number of pages moved.  Page-table pages are *not* moved — this is
    /// the stock-Linux behaviour the paper contrasts with Mitosis.
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn migrate_data(&mut self, pid: Pid, target: SocketId) -> Result<u64, VmError> {
        let mappings: Vec<VirtAddr> = {
            let process = self.process(pid)?;
            let roots = process.address_space().roots().clone();
            mitosis_pt::iter_leaf_mappings(&self.env.store, roots.base())
                .into_iter()
                .map(|m| m.addr)
                .collect()
        };
        let mut moved = 0;
        for addr in mappings {
            if self.migrate_data_page(pid, addr, target)? {
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Migrates the process to another socket, as a NUMA-aware scheduler
    /// would: the home socket changes and, if `migrate_data` is set, data
    /// pages follow.  Page-table pages never move (use the Mitosis
    /// controller for that).
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn migrate_process(
        &mut self,
        pid: Pid,
        target: SocketId,
        migrate_data: bool,
    ) -> Result<u64, VmError> {
        self.process_mut(pid)?.set_home_socket(target);
        if migrate_data {
            self.migrate_data(pid, target)
        } else {
            Ok(0)
        }
    }

    /// Computes the per-socket memory footprint (data and page-table pages)
    /// of a process, including page-table replicas.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn footprint(&self, pid: Pid) -> Result<MemoryFootprint, VmError> {
        let process = self.process(pid)?;
        let sockets = self.machine.sockets();
        let mut footprint = MemoryFootprint {
            data_bytes: vec![0; sockets],
            pagetable_bytes: vec![0; sockets],
        };
        let roots = process.address_space().roots();
        for mapping in mitosis_pt::iter_leaf_mappings(&self.env.store, roots.base()) {
            let socket = self.env.frames.socket_of(mapping.frame);
            footprint.data_bytes[socket.index()] += mapping.size.bytes();
        }
        for root in roots.distinct_roots() {
            let dump = PageTableDump::capture(&self.env.store, &self.env.frames, root);
            for cell in dump.cells() {
                footprint.pagetable_bytes[cell.socket.index()] += cell.table_pages * 4096;
            }
        }
        Ok(footprint)
    }

    /// The page-table root a core on `socket` should load for `pid`
    /// (the `write_cr3` decision, delegated to the PV-Ops backend).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn cr3_for(&self, pid: Pid, socket: SocketId) -> Result<FrameId, VmError> {
        let process = self.process(pid)?;
        Ok(self
            .ops
            .select_root(process.address_space().roots(), socket))
    }

    /// Clones only the state a replay restricted to `sockets` and the
    /// half-open virtual-address `va_ranges` of `pid` can touch: the
    /// page-table subtrees reachable from those sockets' roots
    /// ([`PtStore::clone_reachable`](mitosis_pt::PtStore::clone_reachable)),
    /// the frame metadata of those sockets' frame ranges
    /// ([`FrameTable::clone_ranges`](mitosis_mem::FrameTable::clone_ranges))
    /// and the allocator's bookkeeping shell
    /// ([`FrameAllocator::clone_shell`](mitosis_mem::FrameAllocator::clone_shell)),
    /// plus all the cheap whole-system state (machine, PV-Ops backend,
    /// processes, VMAs, page cache).
    ///
    /// The result is a fraction of a full [`Clone`] on populated systems,
    /// but it is only equivalent for runs that stay within the declared
    /// scope and never demand-fault, allocate or migrate.  Callers (the
    /// grouped replay driver) must prove that up front and fall back to a
    /// full clone — or re-run on one — when the proof fails.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn clone_for_scoped_replay(
        &self,
        pid: Pid,
        sockets: &[SocketId],
        va_ranges: &[(VirtAddr, VirtAddr)],
    ) -> Result<System, VmError> {
        let mut roots = Vec::with_capacity(sockets.len());
        for &socket in sockets {
            let root = self.cr3_for(pid, socket)?;
            if !roots.contains(&root) {
                roots.push(root);
            }
        }
        let space = self.env.alloc.frame_space();
        let frame_ranges: Vec<_> = sockets.iter().map(|s| space.range_of(*s)).collect();
        let env = PtEnv {
            store: self.env.store.clone_reachable(&roots, va_ranges),
            frames: self.env.frames.clone_ranges(&frame_ranges),
            alloc: self.env.alloc.clone_shell(),
            page_cache: self.env.page_cache.clone(),
        };
        Ok(System {
            machine: self.machine.clone(),
            env,
            ops: self.ops.clone(),
            processes: self.processes.clone(),
            config: self.config,
            next_pid: self.next_pid,
            cow: self.cow.clone(),
            pending: self.pending.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_mem::PlacementPolicy;
    use mitosis_numa::MachineConfig;

    fn system() -> System {
        System::new(MachineConfig::two_socket_small().build())
    }

    #[test]
    fn create_process_allocates_a_root_on_the_home_socket() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(1)).unwrap();
        let root = sys.process(pid).unwrap().address_space().roots().base();
        assert_eq!(sys.pt_env().frames.socket_of(root), SocketId::new(1));
        assert_eq!(sys.pids(), vec![pid]);
    }

    #[test]
    fn mmap_populate_maps_every_page_with_first_touch_placement() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 64 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        for i in 0..64u64 {
            let t = sys.translate(pid, addr.add(i * 4096)).unwrap().unwrap();
            assert_eq!(
                sys.pt_env().frames.socket_of(t.frame),
                SocketId::new(0),
                "first-touch places data on the faulting socket"
            );
        }
    }

    #[test]
    fn lazy_mmap_faults_on_demand() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys.mmap(pid, 16 * 4096, MmapFlags::lazy()).unwrap();
        assert!(sys.translate(pid, addr).unwrap().is_none());
        let outcome = sys
            .handle_fault(pid, addr.add(4096), SocketId::new(1))
            .unwrap();
        assert!(!outcome.already_mapped);
        assert_eq!(outcome.size, PageSize::Base4K);
        assert_eq!(
            sys.pt_env().frames.socket_of(outcome.frame),
            SocketId::new(1)
        );
        // Faulting again on the same page is spurious.
        let again = sys
            .handle_fault(pid, addr.add(4096), SocketId::new(0))
            .unwrap();
        assert!(again.already_mapped);
    }

    #[test]
    fn fault_outside_any_vma_is_a_segfault() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let err = sys
            .handle_fault(pid, VirtAddr::new(0x1234_5000), SocketId::new(0))
            .unwrap_err();
        assert!(matches!(err, VmError::SegmentationFault { .. }));
    }

    #[test]
    fn thp_backs_aligned_regions_with_huge_pages() {
        let mut sys = system();
        sys.set_thp(ThpMode::Always);
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys
            .mmap(pid, 4 * 1024 * 1024, MmapFlags::populate())
            .unwrap();
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        // The whole region needed only two huge mappings.
        let dump = sys.page_table_dump(pid).unwrap();
        assert_eq!(dump.total_leaf_ptes(), 2);
    }

    #[test]
    fn thp_falls_back_to_base_pages_under_fragmentation() {
        let mut sys = system();
        sys.set_thp(ThpMode::Always);
        sys.pt_env_mut()
            .alloc
            .set_fragmentation(mitosis_mem::FragmentationModel::with_probability(1.0));
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys
            .mmap(pid, 2 * 1024 * 1024, MmapFlags::populate())
            .unwrap();
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert_eq!(t.size, PageSize::Base4K);
    }

    #[test]
    fn interleave_policy_spreads_data_pages() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        sys.process_mut(pid)
            .unwrap()
            .set_data_policy(PlacementPolicy::interleave_all(2));
        let addr = sys.mmap(pid, 8 * 4096, MmapFlags::populate()).unwrap();
        let mut per_socket = [0u64; 2];
        for i in 0..8u64 {
            let t = sys.translate(pid, addr.add(i * 4096)).unwrap().unwrap();
            per_socket[sys.pt_env().frames.socket_of(t.frame).index()] += 1;
        }
        assert_eq!(per_socket, [4, 4]);
    }

    #[test]
    fn fixed_pt_placement_forces_page_tables_onto_one_socket() {
        let mut sys = system();
        sys.set_pt_placement(PtPlacement::Fixed(SocketId::new(1)));
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let _ = sys.mmap(pid, 32 * 4096, MmapFlags::populate()).unwrap();
        let footprint = sys.footprint(pid).unwrap();
        assert_eq!(footprint.pagetable_bytes[0], 0);
        assert!(footprint.pagetable_bytes[1] > 0);
        // Data stayed on the faulting socket.
        assert!(footprint.data_bytes[0] > 0);
        assert_eq!(footprint.data_bytes[1], 0);
    }

    #[test]
    fn munmap_frees_data_frames_and_removes_the_vma() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 16 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        let allocated_before = sys.pt_env().alloc.total_allocated();
        sys.munmap(pid, addr, len).unwrap();
        assert!(sys.translate(pid, addr).unwrap().is_none());
        assert!(sys.pt_env().alloc.total_allocated() < allocated_before);
        assert!(sys.process(pid).unwrap().address_space().vmas().is_empty());
        // Unmapping a range no area covers is a segfault; zero-length and
        // unaligned ranges are invalid.
        assert!(matches!(
            sys.munmap(pid, addr, len),
            Err(VmError::SegmentationFault { .. })
        ));
        assert_eq!(sys.munmap(pid, addr, 0), Err(VmError::InvalidArgument));
        assert_eq!(sys.munmap(pid, addr, 123), Err(VmError::InvalidArgument));
    }

    #[test]
    fn partial_munmap_splits_the_vma_and_frees_only_the_hole() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 16 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        // Punch a 4-page hole in the middle.
        let hole = addr.add(4 * 4096);
        sys.munmap(pid, hole, 4 * 4096).unwrap();
        assert!(sys.translate(pid, hole).unwrap().is_none());
        assert!(sys.translate(pid, hole.add(3 * 4096)).unwrap().is_none());
        // Pages either side of the hole survive.
        assert!(sys.translate(pid, addr).unwrap().is_some());
        assert!(sys.translate(pid, hole.add(4 * 4096)).unwrap().is_some());
        // The VMA split in two, and faulting in the hole now segfaults.
        assert_eq!(sys.process(pid).unwrap().address_space().vmas().len(), 2);
        assert!(matches!(
            sys.handle_fault(pid, hole, SocketId::new(0)),
            Err(VmError::SegmentationFault { .. })
        ));
        // Shrinking from the tail leaves a single smaller VMA.
        sys.munmap(pid, addr.add(12 * 4096), 4 * 4096).unwrap();
        let vmas = sys.process(pid).unwrap().address_space().vmas().len();
        assert_eq!(vmas, 2);
        assert!(sys.translate(pid, addr.add(12 * 4096)).unwrap().is_none());
    }

    #[test]
    fn partial_munmap_through_a_huge_page_is_rejected() {
        let mut sys = system();
        sys.set_thp(ThpMode::Always);
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys
            .mmap(pid, 2 * 1024 * 1024, MmapFlags::populate())
            .unwrap();
        assert_eq!(
            sys.translate(pid, addr).unwrap().unwrap().size,
            PageSize::Huge2M
        );
        // Splitting the huge leaf is not modelled: demote first.
        assert_eq!(sys.munmap(pid, addr, 4096), Err(VmError::InvalidArgument));
        assert!(sys.demote_huge(pid, addr).unwrap());
        sys.munmap(pid, addr, 4096).unwrap();
        assert!(sys.translate(pid, addr).unwrap().is_none());
        assert!(sys.translate(pid, addr.add(4096)).unwrap().is_some());
    }

    #[test]
    fn fork_shares_frames_copy_on_write() {
        let mut sys = system();
        let parent = sys.create_process(SocketId::new(0)).unwrap();
        let len = 8 * 4096;
        let addr = sys.mmap(parent, len, MmapFlags::populate()).unwrap();
        let parent_frame = sys.translate(parent, addr).unwrap().unwrap().frame;

        let child = sys.fork(parent).unwrap();
        assert_ne!(child, parent);
        // Child sees the same frames, both sides read-only.
        let pt = sys.translate(parent, addr).unwrap().unwrap();
        let ct = sys.translate(child, addr).unwrap().unwrap();
        assert_eq!(pt.frame, parent_frame);
        assert_eq!(ct.frame, parent_frame);
        assert!(!pt.pte.flags().writable);
        assert!(!ct.pte.flags().writable);
        assert_eq!(sys.cow_refcounts().shared_frames(), 8);

        // A read does not break the sharing.
        let read = sys
            .handle_fault_access(child, addr, SocketId::new(0), false)
            .unwrap();
        assert!(read.already_mapped);

        // The child's write copies the page.
        let write = sys
            .handle_fault_access(child, addr, SocketId::new(0), true)
            .unwrap();
        assert!(!write.already_mapped);
        assert_ne!(write.frame, parent_frame);
        let ct = sys.translate(child, addr).unwrap().unwrap();
        assert!(ct.pte.flags().writable);
        assert_eq!(ct.frame, write.frame);

        // The parent's write finds the frame exclusive and upgrades in
        // place.
        let wp = sys
            .handle_fault_access(parent, addr, SocketId::new(0), true)
            .unwrap();
        assert!(!wp.already_mapped);
        assert_eq!(wp.frame, parent_frame);
        assert!(
            sys.translate(parent, addr)
                .unwrap()
                .unwrap()
                .pte
                .flags()
                .writable
        );
    }

    #[test]
    fn munmap_of_shared_frames_releases_but_does_not_free() {
        let mut sys = system();
        let parent = sys.create_process(SocketId::new(0)).unwrap();
        let len = 4 * 4096;
        let addr = sys.mmap(parent, len, MmapFlags::populate()).unwrap();
        let child = sys.fork(parent).unwrap();
        let allocated = sys.pt_env().alloc.total_allocated();
        // The child unmaps its copy: nothing is freed, the parent still
        // owns the frames.
        sys.munmap(child, addr, len).unwrap();
        assert_eq!(sys.pt_env().alloc.total_allocated(), allocated);
        assert!(sys.translate(parent, addr).unwrap().is_some());
        assert_eq!(sys.cow_refcounts().shared_frames(), 0);
        // The parent's unmap now frees them.
        sys.munmap(parent, addr, len).unwrap();
        assert!(sys.pt_env().alloc.total_allocated() < allocated);
    }

    #[test]
    fn mmap_at_maps_fixed_addresses_and_rejects_overlap() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = VirtAddr::new(0x5000_0000_0000);
        let got = sys
            .mmap_at(pid, addr, 8 * 4096, MmapFlags::populate())
            .unwrap();
        assert_eq!(got, addr);
        assert!(sys.translate(pid, addr).unwrap().is_some());
        assert!(matches!(
            sys.mmap_at(pid, addr.add(4096), 4096, MmapFlags::lazy()),
            Err(VmError::VmaOverlap { .. })
        ));
    }

    #[test]
    fn promote_and_demote_round_trip() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 2 * 1024 * 1024;
        let addr = sys
            .mmap_at(
                pid,
                VirtAddr::new(0x6000_0000_0000),
                len,
                MmapFlags::populate(),
            )
            .unwrap();
        assert_eq!(
            sys.translate(pid, addr).unwrap().unwrap().size,
            PageSize::Base4K
        );
        assert!(sys.promote_huge(pid, addr).unwrap());
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        // One leaf covers the region now.
        assert_eq!(sys.page_table_dump(pid).unwrap().total_leaf_ptes(), 1);
        // Promoting again is a no-op (already huge).
        assert!(!sys.promote_huge(pid, addr).unwrap());
        // Demote splits it back into 512 base mappings of the same frames.
        assert!(sys.demote_huge(pid, addr).unwrap());
        let t2 = sys.translate(pid, addr).unwrap().unwrap();
        assert_eq!(t2.size, PageSize::Base4K);
        assert_eq!(t2.frame, t.frame);
        assert_eq!(sys.page_table_dump(pid).unwrap().total_leaf_ptes(), 512);
        assert!(!sys.demote_huge(pid, addr).unwrap());
        // Everything can still be unmapped and freed.
        sys.munmap(pid, addr, len).unwrap();
        assert!(sys.translate(pid, addr).unwrap().is_none());
    }

    #[test]
    fn promotion_fails_deterministically_under_fragmentation() {
        let mut sys = system();
        sys.pt_env_mut()
            .alloc
            .set_fragmentation(mitosis_mem::FragmentationModel::with_probability(1.0));
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys
            .mmap_at(
                pid,
                VirtAddr::new(0x6000_0000_0000),
                2 * 1024 * 1024,
                MmapFlags::populate(),
            )
            .unwrap();
        assert!(!sys.promote_huge(pid, addr).unwrap());
        assert_eq!(
            sys.translate(pid, addr).unwrap().unwrap().size,
            PageSize::Base4K
        );
    }

    #[test]
    fn ranged_mode_accumulates_shootdown_ranges() {
        let mut sys = system();
        sys.set_config(VmmConfig::stock().with_ranged_shootdowns());
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 8 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        assert!(sys.pending_shootdown().is_empty());
        sys.munmap(pid, addr, len).unwrap();
        let plan = sys.take_shootdown_plan();
        assert!(!plan.full_flush);
        // Adjacent page invalidations coalesce into one range.
        assert_eq!(plan.ranges.len(), 1);
        assert_eq!(plan.ranges[0].pages, 8);
        assert_eq!(plan.ranges[0].asid, System::asid_of(pid));
        assert!(sys.pending_shootdown().is_empty());
    }

    #[test]
    fn broadcast_mode_records_nothing() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys.mmap(pid, 8 * 4096, MmapFlags::populate()).unwrap();
        sys.munmap(pid, addr, 8 * 4096).unwrap();
        sys.mprotect(pid, addr, 0, Protection::ReadOnly).ok();
        assert!(sys.pending_shootdown().is_empty());
        assert!(sys.take_shootdown_plan().is_empty());
    }

    #[test]
    fn mprotect_downgrades_leaf_flags() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 4 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        sys.mprotect(pid, addr, len, Protection::ReadOnly).unwrap();
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert!(!t.pte.flags().writable);
        assert_eq!(
            sys.process(pid)
                .unwrap()
                .address_space()
                .vmas()
                .find(addr)
                .unwrap()
                .protection(),
            Protection::ReadOnly
        );
    }

    #[test]
    fn process_migration_moves_data_but_not_page_tables() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 64 * 4096;
        let _ = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        let before = sys.footprint(pid).unwrap();
        assert!(before.data_bytes[0] > 0);
        assert_eq!(before.data_bytes[1], 0);

        let moved = sys.migrate_process(pid, SocketId::new(1), true).unwrap();
        assert_eq!(moved, 64);
        let after = sys.footprint(pid).unwrap();
        assert_eq!(after.data_bytes[0], 0);
        assert!(after.data_bytes[1] > 0);
        // Page tables did not move: still entirely on socket 0.
        assert_eq!(after.pagetable_bytes[1], 0);
        assert_eq!(after.pagetable_bytes[0], before.pagetable_bytes[0]);
        assert_eq!(sys.process(pid).unwrap().home_socket(), SocketId::new(1));
    }

    #[test]
    fn footprint_overhead_is_small_for_base_pages() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let _ = sys.mmap(pid, 512 * 4096, MmapFlags::populate()).unwrap();
        let footprint = sys.footprint(pid).unwrap();
        assert_eq!(footprint.total_data(), 512 * 4096);
        // 1 L1 table per 2 MiB plus the upper levels: well under 1 %.
        assert!(footprint.pagetable_overhead() < 0.01);
    }

    #[test]
    fn cr3_for_uses_the_single_root_without_replication() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let base = sys.process(pid).unwrap().address_space().roots().base();
        assert_eq!(sys.cr3_for(pid, SocketId::new(0)).unwrap(), base);
        assert_eq!(sys.cr3_for(pid, SocketId::new(1)).unwrap(), base);
    }

    #[test]
    fn unknown_pid_errors() {
        let sys = system();
        assert!(matches!(
            sys.process(Pid::new(99)),
            Err(VmError::NoSuchProcess { .. })
        ));
    }
}
