//! The kernel: processes, system calls, demand paging and migration.

use crate::config::{PtPlacement, ThpMode, VmmConfig};
use crate::error::VmError;
use crate::process::{AddressSpace, Pid, Process};
use crate::vma::{Protection, Vma};
use mitosis_mem::{FrameId, FrameKind};
use mitosis_numa::{Machine, SocketId};
use mitosis_pt::{
    Mapper, NativePvOps, PageSize, PageTableDump, PtEnv, PteFlags, PvOps, Translation, VirtAddr,
};
use std::collections::BTreeMap;

/// Flags controlling an [`System::mmap`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmapFlags {
    /// Eagerly fault in every page (`MAP_POPULATE`).
    pub populate: bool,
    /// Protection of the new area.
    pub protection: Protection,
    /// Allow transparent huge pages to back the area.
    pub thp_eligible: bool,
}

impl MmapFlags {
    /// Lazily populated, read-write, THP-eligible mapping.
    pub fn lazy() -> Self {
        MmapFlags {
            populate: false,
            protection: Protection::ReadWrite,
            thp_eligible: true,
        }
    }

    /// Eagerly populated (`MAP_POPULATE`), read-write, THP-eligible mapping.
    pub fn populate() -> Self {
        MmapFlags {
            populate: true,
            ..MmapFlags::lazy()
        }
    }

    /// Disables THP for the area (`MADV_NOHUGEPAGE`).
    pub fn without_thp(mut self) -> Self {
        self.thp_eligible = false;
        self
    }

    /// Sets the protection of the area.
    pub fn with_protection(mut self, protection: Protection) -> Self {
        self.protection = protection;
        self
    }
}

impl Default for MmapFlags {
    fn default() -> Self {
        MmapFlags::lazy()
    }
}

/// Result of servicing one page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultOutcome {
    /// First virtual address of the page that was mapped.
    pub addr: VirtAddr,
    /// Size of the page that was mapped.
    pub size: PageSize,
    /// First physical frame backing the page.
    pub frame: FrameId,
    /// `true` if the page was already mapped (spurious fault) and nothing
    /// was done.
    pub already_mapped: bool,
}

/// Per-socket memory footprint of one process.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MemoryFootprint {
    /// Bytes of data pages on each socket.
    pub data_bytes: Vec<u64>,
    /// Bytes of page-table pages on each socket (including replicas).
    pub pagetable_bytes: Vec<u64>,
}

impl MemoryFootprint {
    /// Total data bytes across sockets.
    pub fn total_data(&self) -> u64 {
        self.data_bytes.iter().sum()
    }

    /// Total page-table bytes across sockets.
    pub fn total_pagetables(&self) -> u64 {
        self.pagetable_bytes.iter().sum()
    }

    /// Page-table overhead relative to the data footprint, as a fraction.
    pub fn pagetable_overhead(&self) -> f64 {
        let data = self.total_data();
        if data == 0 {
            0.0
        } else {
            self.total_pagetables() as f64 / data as f64
        }
    }
}

/// The simulated kernel.
///
/// Owns the machine description, the physical page-table state ([`PtEnv`]),
/// the PV-Ops backend and every process.  See the crate-level documentation
/// for an example.
///
/// `System` is `Clone` (the PV-Ops backend clones through
/// [`PvOps::clone_box`]): a clone is a full, independent snapshot of the
/// simulated machine — page tables, frame allocator, per-frame metadata,
/// processes and VMA trees — which is what lets replay drivers prepare a
/// system once and fan identical copies out to worker threads instead of
/// re-executing the setup per worker.
#[derive(Debug, Clone)]
pub struct System {
    machine: Machine,
    env: PtEnv,
    ops: Box<dyn PvOps>,
    processes: BTreeMap<Pid, Process>,
    config: VmmConfig,
    next_pid: u32,
}

impl System {
    /// Creates a system with the stock (native, non-replicating) PV-Ops
    /// backend.
    pub fn new(machine: Machine) -> Self {
        System::with_pvops(machine, Box::new(NativePvOps::new()))
    }

    /// Creates a system with an explicit PV-Ops backend (this is how the
    /// Mitosis backend is installed).
    pub fn with_pvops(machine: Machine, ops: Box<dyn PvOps>) -> Self {
        let env = PtEnv::new(&machine);
        System {
            machine,
            env,
            ops,
            processes: BTreeMap::new(),
            config: VmmConfig::stock(),
            next_pid: 1,
        }
    }

    /// The machine this system runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (e.g. to install interference).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The system-wide virtual-memory configuration.
    pub fn config(&self) -> VmmConfig {
        self.config
    }

    /// Sets the transparent-huge-page mode.
    pub fn set_thp(&mut self, mode: ThpMode) {
        self.config.thp = mode;
    }

    /// Sets the page-table placement policy.
    pub fn set_pt_placement(&mut self, placement: PtPlacement) {
        self.config.pt_placement = placement;
    }

    /// Replaces the whole configuration.
    pub fn set_config(&mut self, config: VmmConfig) {
        self.config = config;
    }

    /// The page-table environment (store, frame table, allocator, cache).
    pub fn pt_env(&self) -> &PtEnv {
        &self.env
    }

    /// Mutable access to the page-table environment (used by the execution
    /// engine to let the hardware walker set accessed/dirty bits).
    pub fn pt_env_mut(&mut self) -> &mut PtEnv {
        &mut self.env
    }

    /// The installed PV-Ops backend.
    pub fn pvops(&self) -> &dyn PvOps {
        self.ops.as_ref()
    }

    /// Mutable access to the PV-Ops backend (statistics reset etc.).
    pub fn pvops_mut(&mut self) -> &mut dyn PvOps {
        self.ops.as_mut()
    }

    /// Borrows the PV-Ops backend together with a page-table context, for OS
    /// code paths that read entries *through* the backend (e.g. consolidated
    /// accessed/dirty reads across replicas).
    pub fn pvops_with_context(&mut self) -> (&dyn PvOps, mitosis_pt::PtContext<'_>) {
        (self.ops.as_ref(), self.env.context())
    }

    /// Identifiers of all live processes.
    pub fn pids(&self) -> Vec<Pid> {
        self.processes.keys().copied().collect()
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] if it does not exist.
    pub fn process(&self, pid: Pid) -> Result<&Process, VmError> {
        self.processes
            .get(&pid)
            .ok_or(VmError::NoSuchProcess { pid })
    }

    /// Looks up a process mutably.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] if it does not exist.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, VmError> {
        self.processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })
    }

    /// Creates a new process homed on `home_socket` and returns its pid.
    ///
    /// # Errors
    ///
    /// Returns an error if the page-table root cannot be allocated.
    pub fn create_process(&mut self, home_socket: SocketId) -> Result<Pid, VmError> {
        let pid = Pid::new(self.next_pid);
        self.next_pid += 1;
        let pt_socket = self.config.pt_placement.resolve(home_socket);
        let mut ctx = self.env.context();
        let roots = Mapper::create_roots(
            self.ops.as_mut(),
            &mut ctx,
            pt_socket,
            mitosis_pt::ReplicationSpec::none(),
        )?;
        let process = Process::new(pid, home_socket, AddressSpace::new(roots));
        self.processes.insert(pid, process);
        Ok(pid)
    }

    /// Maps `length` bytes of anonymous memory into the process and returns
    /// the starting address.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero/unaligned length, an unknown process, or
    /// (with `populate`) an allocation failure.
    pub fn mmap(&mut self, pid: Pid, length: u64, flags: MmapFlags) -> Result<VirtAddr, VmError> {
        if length == 0 || !length.is_multiple_of(PageSize::Base4K.bytes()) {
            return Err(VmError::InvalidArgument);
        }
        let home = self.process(pid)?.home_socket();
        let process = self.process_mut(pid)?;
        let start = process.address_space_mut().reserve_region(length);
        let mut vma = Vma::new(start, length, flags.protection);
        if !flags.thp_eligible {
            vma = vma.with_thp_disabled();
        }
        process.address_space_mut().vmas_mut().insert(vma)?;
        if flags.populate {
            self.populate_region(pid, start, length, home)?;
        }
        Ok(start)
    }

    /// Faults in every page of `[addr, addr + length)` as if touched by a
    /// thread running on `socket`.
    ///
    /// # Errors
    ///
    /// Propagates fault-handling errors; pages already mapped are skipped.
    pub fn populate_region(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        length: u64,
        socket: SocketId,
    ) -> Result<(), VmError> {
        let mut cursor = addr;
        let end = addr.add(length);
        while cursor < end {
            let outcome = self.handle_fault(pid, cursor, socket)?;
            cursor = outcome.addr.add(outcome.size.bytes());
        }
        Ok(())
    }

    /// Handles a page fault at `addr` raised by a thread running on
    /// `socket`: allocates a data page according to the process' placement
    /// policy and maps it, backing the area with a 2 MiB page when THP
    /// allows.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SegmentationFault`] if no VMA covers `addr`, or an
    /// allocation/page-table error.
    pub fn handle_fault(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        socket: SocketId,
    ) -> Result<FaultOutcome, VmError> {
        let config = self.config;
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let (protection, thp_eligible, fits_huge) = {
            let vma = process
                .address_space()
                .vmas()
                .find(addr)
                .ok_or(VmError::SegmentationFault { addr })?;
            (
                vma.protection(),
                vma.thp_eligible(),
                vma.fits_huge_page(addr),
            )
        };
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);

        // Spurious fault: the page is already mapped.
        if let Some(existing) = mapper.translate(&ctx, addr) {
            return Ok(FaultOutcome {
                addr: addr.align_down(existing.size),
                size: existing.size,
                frame: existing.frame,
                already_mapped: true,
            });
        }

        let flags = if protection.is_writable() {
            PteFlags::user_data()
        } else {
            PteFlags::user_readonly()
        };
        let pt_socket = config.pt_placement.resolve(socket);

        // Try a transparent huge page first.
        if config.thp.is_enabled() && thp_eligible && fits_huge {
            let huge_addr = addr.align_down(PageSize::Huge2M);
            // The whole 2 MiB range must be unmapped.
            let range_free = mapper.translate(&ctx, huge_addr).is_none();
            if range_free {
                if let Ok(frame) = process.data_policy_mut().alloc_huge_data(ctx.alloc, socket) {
                    ctx.frames.insert(frame, FrameKind::Data);
                    match mapper.map(
                        self.ops.as_mut(),
                        &mut ctx,
                        huge_addr,
                        frame,
                        PageSize::Huge2M,
                        flags,
                        pt_socket,
                        replication,
                    ) {
                        Ok(()) => {
                            return Ok(FaultOutcome {
                                addr: huge_addr,
                                size: PageSize::Huge2M,
                                frame,
                                already_mapped: false,
                            });
                        }
                        Err(mitosis_pt::PtError::AlreadyMapped { .. }) => {
                            // Part of the range is mapped with base pages:
                            // fall back to a 4 KiB page for this fault.
                            ctx.frames.remove(frame);
                            ctx.alloc.free_huge(frame)?;
                        }
                        Err(other) => return Err(other.into()),
                    }
                }
            }
        }

        // Base-page path.
        let page_addr = addr.align_down(PageSize::Base4K);
        let frame = process.data_policy_mut().alloc_data(ctx.alloc, socket)?;
        ctx.frames.insert(frame, FrameKind::Data);
        mapper.map(
            self.ops.as_mut(),
            &mut ctx,
            page_addr,
            frame,
            PageSize::Base4K,
            flags,
            pt_socket,
            replication,
        )?;
        Ok(FaultOutcome {
            addr: page_addr,
            size: PageSize::Base4K,
            frame,
            already_mapped: false,
        })
    }

    /// Unmaps the area previously returned by [`System::mmap`].
    ///
    /// The whole area must be named exactly (`addr` = area start, `length` =
    /// area length), as the paper's micro-benchmarks do.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::InvalidArgument`] if the range does not name a
    /// whole VMA, or propagates page-table errors.
    pub fn munmap(&mut self, pid: Pid, addr: VirtAddr, length: u64) -> Result<(), VmError> {
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let matches_whole_vma = process
            .address_space()
            .vmas()
            .find(addr)
            .map(|vma| vma.start() == addr && vma.length() == length)
            .unwrap_or(false);
        if !matches_whole_vma {
            return Err(VmError::InvalidArgument);
        }
        let roots = process.address_space().roots().clone();
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        let mut cursor = addr;
        let end = addr.add(length);
        while cursor < end {
            match mapper.translate(&ctx, cursor) {
                Some(t) => {
                    let old = mapper.unmap(self.ops.as_mut(), &mut ctx, cursor)?;
                    let frame = old.frame().expect("mapped entry has a frame");
                    ctx.frames.remove(frame);
                    match t.size {
                        PageSize::Base4K => ctx.alloc.free(frame)?,
                        PageSize::Huge2M => ctx.alloc.free_huge(frame)?,
                        PageSize::Giant1G => {
                            for i in 0..PageSize::Giant1G.frames() / 512 {
                                ctx.alloc.free_huge(frame.offset(i * 512))?;
                            }
                        }
                    }
                    cursor = cursor.add(t.size.bytes());
                }
                None => cursor = cursor.add(PageSize::Base4K.bytes()),
            }
        }
        process.address_space_mut().vmas_mut().remove(addr);
        Ok(())
    }

    /// Changes the protection of `[addr, addr + length)` (`mprotect`).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::SegmentationFault`] if the range is not covered by
    /// a VMA.
    pub fn mprotect(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        length: u64,
        protection: Protection,
    ) -> Result<(), VmError> {
        if length == 0 {
            return Err(VmError::InvalidArgument);
        }
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        {
            let vma = process
                .address_space_mut()
                .vmas_mut()
                .find_mut(addr)
                .ok_or(VmError::SegmentationFault { addr })?;
            if vma.start() == addr && vma.length() == length {
                vma.set_protection(protection);
            }
        }
        let roots = process.address_space().roots().clone();
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        let flags = if protection.is_writable() {
            PteFlags::user_data()
        } else {
            PteFlags::user_readonly()
        };
        let mut cursor = addr;
        let end = addr.add(length);
        while cursor < end {
            match mapper.translate(&ctx, cursor) {
                Some(t) => {
                    mapper.protect(self.ops.as_mut(), &mut ctx, cursor, flags)?;
                    cursor = cursor.add(t.size.bytes());
                }
                None => cursor = cursor.add(PageSize::Base4K.bytes()),
            }
        }
        Ok(())
    }

    /// Translates a virtual address of a process in software.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn translate(&self, pid: Pid, addr: VirtAddr) -> Result<Option<Translation>, VmError> {
        let process = self.process(pid)?;
        Ok(mitosis_pt::translate(
            &self.env.store,
            process.address_space().roots().base(),
            addr,
        ))
    }

    /// Captures a placement dump of the process' page table (base replica).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn page_table_dump(&self, pid: Pid) -> Result<PageTableDump, VmError> {
        let process = self.process(pid)?;
        Ok(PageTableDump::capture(
            &self.env.store,
            &self.env.frames,
            process.address_space().roots().base(),
        ))
    }

    /// Captures a placement dump of the page-table replica used by `socket`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn page_table_dump_for_socket(
        &self,
        pid: Pid,
        socket: SocketId,
    ) -> Result<PageTableDump, VmError> {
        let process = self.process(pid)?;
        Ok(PageTableDump::capture(
            &self.env.store,
            &self.env.frames,
            process.address_space().roots().root_for_socket(socket),
        ))
    }

    /// Migrates one mapped data page to `target` socket, preserving its
    /// virtual address, protection and page size.  Returns `false` if the
    /// page already lives on `target`.
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn migrate_data_page(
        &mut self,
        pid: Pid,
        addr: VirtAddr,
        target: SocketId,
    ) -> Result<bool, VmError> {
        let process = self
            .processes
            .get_mut(&pid)
            .ok_or(VmError::NoSuchProcess { pid })?;
        let replication = process.replication();
        let roots = process.address_space().roots().clone();
        let pt_socket = self.config.pt_placement.resolve(target);
        let mut ctx = self.env.context();
        let mapper = Mapper::new(&roots);
        let t = match mapper.translate(&ctx, addr) {
            Some(t) => t,
            None => return Err(VmError::SegmentationFault { addr }),
        };
        if ctx.frames.socket_of(t.frame) == target {
            return Ok(false);
        }
        let new_frame = match t.size {
            PageSize::Base4K => ctx.alloc.alloc_on(target)?,
            PageSize::Huge2M => ctx.alloc.alloc_huge_on(target)?,
            PageSize::Giant1G => return Err(VmError::InvalidArgument),
        };
        ctx.frames.insert(new_frame, FrameKind::Data);
        let aligned = addr.align_down(t.size);
        let old = mapper.unmap(self.ops.as_mut(), &mut ctx, aligned)?;
        let old_frame = old.frame().expect("mapped entry has a frame");
        mapper.map(
            self.ops.as_mut(),
            &mut ctx,
            aligned,
            new_frame,
            t.size,
            old.flags(),
            pt_socket,
            replication,
        )?;
        ctx.frames.remove(old_frame);
        match t.size {
            PageSize::Base4K => ctx.alloc.free(old_frame)?,
            PageSize::Huge2M => ctx.alloc.free_huge(old_frame)?,
            PageSize::Giant1G => unreachable!("rejected above"),
        }
        Ok(true)
    }

    /// Migrates every data page of the process to `target`.  Returns the
    /// number of pages moved.  Page-table pages are *not* moved — this is
    /// the stock-Linux behaviour the paper contrasts with Mitosis.
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn migrate_data(&mut self, pid: Pid, target: SocketId) -> Result<u64, VmError> {
        let mappings: Vec<VirtAddr> = {
            let process = self.process(pid)?;
            let roots = process.address_space().roots().clone();
            mitosis_pt::iter_leaf_mappings(&self.env.store, roots.base())
                .into_iter()
                .map(|m| m.addr)
                .collect()
        };
        let mut moved = 0;
        for addr in mappings {
            if self.migrate_data_page(pid, addr, target)? {
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Migrates the process to another socket, as a NUMA-aware scheduler
    /// would: the home socket changes and, if `migrate_data` is set, data
    /// pages follow.  Page-table pages never move (use the Mitosis
    /// controller for that).
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn migrate_process(
        &mut self,
        pid: Pid,
        target: SocketId,
        migrate_data: bool,
    ) -> Result<u64, VmError> {
        self.process_mut(pid)?.set_home_socket(target);
        if migrate_data {
            self.migrate_data(pid, target)
        } else {
            Ok(0)
        }
    }

    /// Computes the per-socket memory footprint (data and page-table pages)
    /// of a process, including page-table replicas.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn footprint(&self, pid: Pid) -> Result<MemoryFootprint, VmError> {
        let process = self.process(pid)?;
        let sockets = self.machine.sockets();
        let mut footprint = MemoryFootprint {
            data_bytes: vec![0; sockets],
            pagetable_bytes: vec![0; sockets],
        };
        let roots = process.address_space().roots();
        for mapping in mitosis_pt::iter_leaf_mappings(&self.env.store, roots.base()) {
            let socket = self.env.frames.socket_of(mapping.frame);
            footprint.data_bytes[socket.index()] += mapping.size.bytes();
        }
        for root in roots.distinct_roots() {
            let dump = PageTableDump::capture(&self.env.store, &self.env.frames, root);
            for cell in dump.cells() {
                footprint.pagetable_bytes[cell.socket.index()] += cell.table_pages * 4096;
            }
        }
        Ok(footprint)
    }

    /// The page-table root a core on `socket` should load for `pid`
    /// (the `write_cr3` decision, delegated to the PV-Ops backend).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn cr3_for(&self, pid: Pid, socket: SocketId) -> Result<FrameId, VmError> {
        let process = self.process(pid)?;
        Ok(self
            .ops
            .select_root(process.address_space().roots(), socket))
    }

    /// Clones only the state a replay restricted to `sockets` and the
    /// half-open virtual-address `va_ranges` of `pid` can touch: the
    /// page-table subtrees reachable from those sockets' roots
    /// ([`PtStore::clone_reachable`](mitosis_pt::PtStore::clone_reachable)),
    /// the frame metadata of those sockets' frame ranges
    /// ([`FrameTable::clone_ranges`](mitosis_mem::FrameTable::clone_ranges))
    /// and the allocator's bookkeeping shell
    /// ([`FrameAllocator::clone_shell`](mitosis_mem::FrameAllocator::clone_shell)),
    /// plus all the cheap whole-system state (machine, PV-Ops backend,
    /// processes, VMAs, page cache).
    ///
    /// The result is a fraction of a full [`Clone`] on populated systems,
    /// but it is only equivalent for runs that stay within the declared
    /// scope and never demand-fault, allocate or migrate.  Callers (the
    /// grouped replay driver) must prove that up front and fall back to a
    /// full clone — or re-run on one — when the proof fails.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn clone_for_scoped_replay(
        &self,
        pid: Pid,
        sockets: &[SocketId],
        va_ranges: &[(VirtAddr, VirtAddr)],
    ) -> Result<System, VmError> {
        let mut roots = Vec::with_capacity(sockets.len());
        for &socket in sockets {
            let root = self.cr3_for(pid, socket)?;
            if !roots.contains(&root) {
                roots.push(root);
            }
        }
        let space = self.env.alloc.frame_space();
        let frame_ranges: Vec<_> = sockets.iter().map(|s| space.range_of(*s)).collect();
        let env = PtEnv {
            store: self.env.store.clone_reachable(&roots, va_ranges),
            frames: self.env.frames.clone_ranges(&frame_ranges),
            alloc: self.env.alloc.clone_shell(),
            page_cache: self.env.page_cache.clone(),
        };
        Ok(System {
            machine: self.machine.clone(),
            env,
            ops: self.ops.clone(),
            processes: self.processes.clone(),
            config: self.config,
            next_pid: self.next_pid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_mem::PlacementPolicy;
    use mitosis_numa::MachineConfig;

    fn system() -> System {
        System::new(MachineConfig::two_socket_small().build())
    }

    #[test]
    fn create_process_allocates_a_root_on_the_home_socket() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(1)).unwrap();
        let root = sys.process(pid).unwrap().address_space().roots().base();
        assert_eq!(sys.pt_env().frames.socket_of(root), SocketId::new(1));
        assert_eq!(sys.pids(), vec![pid]);
    }

    #[test]
    fn mmap_populate_maps_every_page_with_first_touch_placement() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 64 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        for i in 0..64u64 {
            let t = sys.translate(pid, addr.add(i * 4096)).unwrap().unwrap();
            assert_eq!(
                sys.pt_env().frames.socket_of(t.frame),
                SocketId::new(0),
                "first-touch places data on the faulting socket"
            );
        }
    }

    #[test]
    fn lazy_mmap_faults_on_demand() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys.mmap(pid, 16 * 4096, MmapFlags::lazy()).unwrap();
        assert!(sys.translate(pid, addr).unwrap().is_none());
        let outcome = sys
            .handle_fault(pid, addr.add(4096), SocketId::new(1))
            .unwrap();
        assert!(!outcome.already_mapped);
        assert_eq!(outcome.size, PageSize::Base4K);
        assert_eq!(
            sys.pt_env().frames.socket_of(outcome.frame),
            SocketId::new(1)
        );
        // Faulting again on the same page is spurious.
        let again = sys
            .handle_fault(pid, addr.add(4096), SocketId::new(0))
            .unwrap();
        assert!(again.already_mapped);
    }

    #[test]
    fn fault_outside_any_vma_is_a_segfault() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let err = sys
            .handle_fault(pid, VirtAddr::new(0x1234_5000), SocketId::new(0))
            .unwrap_err();
        assert!(matches!(err, VmError::SegmentationFault { .. }));
    }

    #[test]
    fn thp_backs_aligned_regions_with_huge_pages() {
        let mut sys = system();
        sys.set_thp(ThpMode::Always);
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys
            .mmap(pid, 4 * 1024 * 1024, MmapFlags::populate())
            .unwrap();
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert_eq!(t.size, PageSize::Huge2M);
        // The whole region needed only two huge mappings.
        let dump = sys.page_table_dump(pid).unwrap();
        assert_eq!(dump.total_leaf_ptes(), 2);
    }

    #[test]
    fn thp_falls_back_to_base_pages_under_fragmentation() {
        let mut sys = system();
        sys.set_thp(ThpMode::Always);
        sys.pt_env_mut()
            .alloc
            .set_fragmentation(mitosis_mem::FragmentationModel::with_probability(1.0));
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let addr = sys
            .mmap(pid, 2 * 1024 * 1024, MmapFlags::populate())
            .unwrap();
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert_eq!(t.size, PageSize::Base4K);
    }

    #[test]
    fn interleave_policy_spreads_data_pages() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        sys.process_mut(pid)
            .unwrap()
            .set_data_policy(PlacementPolicy::interleave_all(2));
        let addr = sys.mmap(pid, 8 * 4096, MmapFlags::populate()).unwrap();
        let mut per_socket = [0u64; 2];
        for i in 0..8u64 {
            let t = sys.translate(pid, addr.add(i * 4096)).unwrap().unwrap();
            per_socket[sys.pt_env().frames.socket_of(t.frame).index()] += 1;
        }
        assert_eq!(per_socket, [4, 4]);
    }

    #[test]
    fn fixed_pt_placement_forces_page_tables_onto_one_socket() {
        let mut sys = system();
        sys.set_pt_placement(PtPlacement::Fixed(SocketId::new(1)));
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let _ = sys.mmap(pid, 32 * 4096, MmapFlags::populate()).unwrap();
        let footprint = sys.footprint(pid).unwrap();
        assert_eq!(footprint.pagetable_bytes[0], 0);
        assert!(footprint.pagetable_bytes[1] > 0);
        // Data stayed on the faulting socket.
        assert!(footprint.data_bytes[0] > 0);
        assert_eq!(footprint.data_bytes[1], 0);
    }

    #[test]
    fn munmap_frees_data_frames_and_removes_the_vma() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 16 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        let allocated_before = sys.pt_env().alloc.total_allocated();
        sys.munmap(pid, addr, len).unwrap();
        assert!(sys.translate(pid, addr).unwrap().is_none());
        assert!(sys.pt_env().alloc.total_allocated() < allocated_before);
        assert!(sys.process(pid).unwrap().address_space().vmas().is_empty());
        // Partial munmap is rejected.
        let addr2 = sys.mmap(pid, len, MmapFlags::lazy()).unwrap();
        assert_eq!(sys.munmap(pid, addr2, 4096), Err(VmError::InvalidArgument));
    }

    #[test]
    fn mprotect_downgrades_leaf_flags() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 4 * 4096;
        let addr = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        sys.mprotect(pid, addr, len, Protection::ReadOnly).unwrap();
        let t = sys.translate(pid, addr).unwrap().unwrap();
        assert!(!t.pte.flags().writable);
        assert_eq!(
            sys.process(pid)
                .unwrap()
                .address_space()
                .vmas()
                .find(addr)
                .unwrap()
                .protection(),
            Protection::ReadOnly
        );
    }

    #[test]
    fn process_migration_moves_data_but_not_page_tables() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let len = 64 * 4096;
        let _ = sys.mmap(pid, len, MmapFlags::populate()).unwrap();
        let before = sys.footprint(pid).unwrap();
        assert!(before.data_bytes[0] > 0);
        assert_eq!(before.data_bytes[1], 0);

        let moved = sys.migrate_process(pid, SocketId::new(1), true).unwrap();
        assert_eq!(moved, 64);
        let after = sys.footprint(pid).unwrap();
        assert_eq!(after.data_bytes[0], 0);
        assert!(after.data_bytes[1] > 0);
        // Page tables did not move: still entirely on socket 0.
        assert_eq!(after.pagetable_bytes[1], 0);
        assert_eq!(after.pagetable_bytes[0], before.pagetable_bytes[0]);
        assert_eq!(sys.process(pid).unwrap().home_socket(), SocketId::new(1));
    }

    #[test]
    fn footprint_overhead_is_small_for_base_pages() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let _ = sys.mmap(pid, 512 * 4096, MmapFlags::populate()).unwrap();
        let footprint = sys.footprint(pid).unwrap();
        assert_eq!(footprint.total_data(), 512 * 4096);
        // 1 L1 table per 2 MiB plus the upper levels: well under 1 %.
        assert!(footprint.pagetable_overhead() < 0.01);
    }

    #[test]
    fn cr3_for_uses_the_single_root_without_replication() {
        let mut sys = system();
        let pid = sys.create_process(SocketId::new(0)).unwrap();
        let base = sys.process(pid).unwrap().address_space().roots().base();
        assert_eq!(sys.cr3_for(pid, SocketId::new(0)).unwrap(), base);
        assert_eq!(sys.cr3_for(pid, SocketId::new(1)).unwrap(), base);
    }

    #[test]
    fn unknown_pid_errors() {
        let sys = system();
        assert!(matches!(
            sys.process(Pid::new(99)),
            Err(VmError::NoSuchProcess { .. })
        ));
    }
}
