//! Virtual memory subsystem for the Mitosis reproduction.
//!
//! This crate is the simulator's "Linux memory management": the pieces of the
//! OS whose behaviour creates the problem the paper studies and through which
//! Mitosis operates:
//!
//! * [`Vma`]/[`VmaSet`] — virtual memory areas established by `mmap`;
//! * [`Process`]/[`AddressSpace`] — per-process state: VMAs, page-table
//!   roots, data-placement policy, page-table replication mask;
//! * [`System`] — the kernel: process creation, `mmap`/`munmap`/`mprotect`,
//!   demand paging with first-touch/interleave placement, transparent huge
//!   pages with fragmentation fallback, page-table placement control, and
//!   cross-socket process migration (data pages move, page-tables do not —
//!   exactly the stock-Linux behaviour the paper measures);
//! * [`AutoNuma`] — background data-page migration/balancing, which never
//!   touches page-table pages;
//! * [`Scheduler`] — context switches that load the per-socket page-table
//!   root through the PV-Ops backend (`write_cr3`).
//!
//! The Mitosis mechanism itself (replication/migration of page tables) is
//! implemented in the `mitosis` crate as a [`PvOps`](mitosis_pt::PvOps)
//! backend plus a controller that drives this crate's [`System`].
//!
//! # Example
//!
//! ```
//! use mitosis_numa::{MachineConfig, SocketId};
//! use mitosis_vmm::{MmapFlags, System};
//!
//! let machine = MachineConfig::two_socket_small().build();
//! let mut system = System::new(machine);
//! let pid = system.create_process(SocketId::new(0))?;
//! let addr = system.mmap(pid, 2 * 1024 * 1024, MmapFlags::populate())?;
//! assert!(system.translate(pid, addr)?.is_some());
//! # Ok::<(), mitosis_vmm::VmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod autonuma;
mod config;
mod error;
mod process;
mod scheduler;
mod system;
mod vma;

pub use autonuma::AutoNuma;
pub use config::{PtPlacement, ShootdownMode, ThpMode, VmmConfig};
pub use error::VmError;
pub use process::{AddressSpace, Pid, Process};
pub use scheduler::Scheduler;
pub use system::{FaultOutcome, MemoryFootprint, MmapFlags, System};
pub use vma::{Protection, Vma, VmaSet};
