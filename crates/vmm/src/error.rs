//! Error type of the virtual memory subsystem.

use crate::process::Pid;
use mitosis_mem::MemError;
use mitosis_pt::{PtError, VirtAddr};
use std::error::Error;
use std::fmt;

/// Errors returned by the virtual memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmError {
    /// The process does not exist.
    NoSuchProcess {
        /// Offending process identifier.
        pid: Pid,
    },
    /// The address is not covered by any VMA (a segmentation fault).
    SegmentationFault {
        /// Faulting address.
        addr: VirtAddr,
    },
    /// The requested virtual region overlaps an existing VMA.
    VmaOverlap {
        /// Start of the overlapping request.
        addr: VirtAddr,
    },
    /// The address or length is invalid (zero length, unaligned, ...).
    InvalidArgument,
    /// A page-table operation failed.
    Pt(PtError),
    /// A physical memory operation failed.
    Mem(MemError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchProcess { pid } => write!(f, "no such process: {pid}"),
            VmError::SegmentationFault { addr } => {
                write!(f, "segmentation fault at {addr}")
            }
            VmError::VmaOverlap { addr } => {
                write!(f, "requested region at {addr} overlaps an existing mapping")
            }
            VmError::InvalidArgument => write!(f, "invalid argument"),
            VmError::Pt(err) => write!(f, "page-table error: {err}"),
            VmError::Mem(err) => write!(f, "memory error: {err}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Pt(err) => Some(err),
            VmError::Mem(err) => Some(err),
            _ => None,
        }
    }
}

impl From<PtError> for VmError {
    fn from(err: PtError) -> Self {
        match err {
            PtError::Mem(mem) => VmError::Mem(mem),
            other => VmError::Pt(other),
        }
    }
}

impl From<MemError> for VmError {
    fn from(err: MemError) -> Self {
        VmError::Mem(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_numa::SocketId;

    #[test]
    fn conversions_flatten_nested_memory_errors() {
        let err: VmError = PtError::Mem(MemError::OutOfMemory {
            socket: SocketId::new(0),
        })
        .into();
        assert!(matches!(err, VmError::Mem(_)));
        let err: VmError = PtError::NotMapped {
            addr: VirtAddr::new(0x1000),
        }
        .into();
        assert!(matches!(err, VmError::Pt(_)));
    }

    #[test]
    fn display_and_source() {
        let err = VmError::SegmentationFault {
            addr: VirtAddr::new(0xdead000),
        };
        assert!(err.to_string().contains("segmentation fault"));
        assert!(err.source().is_none());
        let err = VmError::Mem(MemError::MachineOutOfMemory);
        assert!(err.source().is_some());
    }
}
