//! System-wide virtual-memory configuration knobs.

use mitosis_numa::SocketId;

/// Transparent huge page mode (`/sys/kernel/mm/transparent_hugepage/enabled`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ThpMode {
    /// Never back anonymous memory with 2 MiB pages.
    #[default]
    Never,
    /// Back anonymous memory with 2 MiB pages whenever possible (the paper's
    /// "T" configurations).
    Always,
}

impl ThpMode {
    /// Returns `true` if THP is enabled.
    pub fn is_enabled(self) -> bool {
        matches!(self, ThpMode::Always)
    }
}

/// Where page-table pages are allocated.
///
/// The paper modifies Linux to force page-table allocations onto a fixed
/// socket for the placement study (§3.2); stock Linux allocates them local to
/// the faulting thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PtPlacement {
    /// Allocate page-table pages on the socket of the faulting thread
    /// (stock Linux behaviour).
    #[default]
    Local,
    /// Force all page-table pages onto one socket (the paper's analysis
    /// configurations, e.g. `RP-LD`).
    Fixed(SocketId),
}

impl PtPlacement {
    /// Resolves the socket a page-table page should be allocated on, given
    /// the faulting thread's socket.
    pub fn resolve(self, faulting_socket: SocketId) -> SocketId {
        match self {
            PtPlacement::Local => faulting_socket,
            PtPlacement::Fixed(socket) => socket,
        }
    }
}

/// How TLB-consistency work is performed when mappings mutate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShootdownMode {
    /// Every mapping mutation ends in a broadcast full flush of all TLBs
    /// and PTE caches (the historical model, and the default: existing
    /// scenarios stay bit-identical).
    #[default]
    Broadcast,
    /// Mutations accumulate the exact invalidated ranges in a
    /// [`MappingTx`](mitosis_pt::MappingTx) and flush once as a ranged,
    /// ASID-tagged shootdown plan.
    Ranged,
}

impl ShootdownMode {
    /// Returns `true` when mutations should record ranged shootdown work.
    pub fn is_ranged(self) -> bool {
        matches!(self, ShootdownMode::Ranged)
    }
}

/// System-wide virtual-memory configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VmmConfig {
    /// Transparent huge page mode.
    pub thp: ThpMode,
    /// Page-table placement policy.
    pub pt_placement: PtPlacement,
    /// TLB-consistency mode for mapping mutations.
    pub shootdown: ShootdownMode,
}

impl VmmConfig {
    /// Stock configuration: 4 KiB pages, local page-table allocation.
    pub fn stock() -> Self {
        VmmConfig::default()
    }

    /// Configuration with THP enabled.
    pub fn with_thp(mut self) -> Self {
        self.thp = ThpMode::Always;
        self
    }

    /// Configuration forcing page tables onto `socket`.
    pub fn with_fixed_pt_socket(mut self, socket: SocketId) -> Self {
        self.pt_placement = PtPlacement::Fixed(socket);
        self
    }

    /// Configuration recording ranged shootdowns instead of broadcasting.
    pub fn with_ranged_shootdowns(mut self) -> Self {
        self.shootdown = ShootdownMode::Ranged;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thp_mode_flags() {
        assert!(!ThpMode::Never.is_enabled());
        assert!(ThpMode::Always.is_enabled());
        assert_eq!(ThpMode::default(), ThpMode::Never);
    }

    #[test]
    fn pt_placement_resolution() {
        assert_eq!(
            PtPlacement::Local.resolve(SocketId::new(2)),
            SocketId::new(2)
        );
        assert_eq!(
            PtPlacement::Fixed(SocketId::new(1)).resolve(SocketId::new(2)),
            SocketId::new(1)
        );
    }

    #[test]
    fn builder_style_config() {
        let config = VmmConfig::stock()
            .with_thp()
            .with_fixed_pt_socket(SocketId::new(3));
        assert!(config.thp.is_enabled());
        assert_eq!(config.pt_placement, PtPlacement::Fixed(SocketId::new(3)));
        assert_eq!(config.shootdown, ShootdownMode::Broadcast);
        assert!(!config.shootdown.is_ranged());
        assert!(config.with_ranged_shootdowns().shootdown.is_ranged());
    }
}
