//! Context switching and CPU placement.
//!
//! The only scheduler behaviour that matters for the paper is what happens on
//! a context switch: the kernel writes the process' page-table root into CR3
//! and flushes the TLB.  With Mitosis the value written is the *local
//! replica's* root for the socket the core belongs to (paper §5.3); that
//! decision is delegated to the PV-Ops backend via
//! [`System::cr3_for`](crate::System::cr3_for).

use crate::error::VmError;
use crate::process::Pid;
use crate::system::System;
use mitosis_mem::FrameId;
use mitosis_numa::{CoreId, SocketId};
use std::collections::BTreeMap;

/// What a core must do after a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextSwitch {
    /// The page-table root to load into CR3.
    pub cr3: FrameId,
    /// Whether the TLB (and paging-structure caches) must be flushed.
    /// Reloading the same root (same process, same socket) does not flush.
    pub flush_tlb: bool,
}

/// Tracks which process (and which root) every core currently runs.
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    current: BTreeMap<CoreId, (Pid, FrameId)>,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Switches `core` (on `socket`) to run `pid` and returns the CR3 value
    /// plus whether a TLB flush is required.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::NoSuchProcess`] for an unknown pid.
    pub fn context_switch(
        &mut self,
        system: &System,
        core: CoreId,
        socket: SocketId,
        pid: Pid,
    ) -> Result<ContextSwitch, VmError> {
        let cr3 = system.cr3_for(pid, socket)?;
        let flush_tlb = match self.current.get(&core) {
            Some((prev_pid, prev_cr3)) => *prev_pid != pid || *prev_cr3 != cr3,
            None => true,
        };
        self.current.insert(core, (pid, cr3));
        Ok(ContextSwitch { cr3, flush_tlb })
    }

    /// The process currently running on `core`, if any.
    pub fn running_on(&self, core: CoreId) -> Option<Pid> {
        self.current.get(&core).map(|(pid, _)| *pid)
    }

    /// Forgets the assignment of `core` (idle).
    pub fn park(&mut self, core: CoreId) {
        self.current.remove(&core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MmapFlags;
    use mitosis_numa::MachineConfig;

    #[test]
    fn repeated_switches_to_the_same_process_do_not_flush() {
        let machine = MachineConfig::two_socket_small().build();
        let mut system = System::new(machine);
        let pid = system.create_process(SocketId::new(0)).unwrap();
        let _ = system.mmap(pid, 4096, MmapFlags::populate()).unwrap();
        let mut sched = Scheduler::new();
        let core = CoreId::new(0);
        let first = sched
            .context_switch(&system, core, SocketId::new(0), pid)
            .unwrap();
        assert!(first.flush_tlb);
        let second = sched
            .context_switch(&system, core, SocketId::new(0), pid)
            .unwrap();
        assert!(!second.flush_tlb);
        assert_eq!(first.cr3, second.cr3);
        assert_eq!(sched.running_on(core), Some(pid));
    }

    #[test]
    fn switching_processes_flushes() {
        let machine = MachineConfig::two_socket_small().build();
        let mut system = System::new(machine);
        let a = system.create_process(SocketId::new(0)).unwrap();
        let b = system.create_process(SocketId::new(0)).unwrap();
        let mut sched = Scheduler::new();
        let core = CoreId::new(1);
        sched
            .context_switch(&system, core, SocketId::new(0), a)
            .unwrap();
        let switch = sched
            .context_switch(&system, core, SocketId::new(0), b)
            .unwrap();
        assert!(switch.flush_tlb);
        sched.park(core);
        assert_eq!(sched.running_on(core), None);
    }

    #[test]
    fn unknown_process_is_an_error() {
        let machine = MachineConfig::two_socket_small().build();
        let system = System::new(machine);
        let mut sched = Scheduler::new();
        assert!(sched
            .context_switch(&system, CoreId::new(0), SocketId::new(0), Pid::new(42))
            .is_err());
    }
}
