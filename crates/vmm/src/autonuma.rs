//! AutoNUMA-style background data-page migration.
//!
//! Linux's AutoNUMA periodically unmaps pages, observes which socket faults
//! on them next and migrates the data to that socket.  Two behavioural facts
//! matter for the paper:
//!
//! 1. data pages *do* move towards the threads that access them, and
//! 2. page-table pages are **never** migrated (paper §3.1 observation 4).
//!
//! This module models exactly that: data pages are migrated towards their
//! accessors (either a single home socket, or balanced across the sockets a
//! multi-threaded workload runs on) by re-allocating the frame and rewriting
//! the leaf PTE through PV-Ops; page-table pages stay where they were
//! allocated.

use crate::error::VmError;
use crate::process::Pid;
use crate::system::System;
use mitosis_numa::SocketId;
use mitosis_pt::VirtAddr;

/// The AutoNUMA data-page migration daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoNuma {
    /// Maximum number of pages migrated per scan (rate limiting, like
    /// `numa_balancing_scan_size_mb`).
    pub max_pages_per_scan: usize,
}

impl AutoNuma {
    /// Creates a daemon with a generous default scan budget.
    pub fn new() -> Self {
        AutoNuma {
            max_pages_per_scan: usize::MAX,
        }
    }

    /// Limits the number of pages migrated per scan.
    pub fn with_scan_budget(mut self, pages: usize) -> Self {
        self.max_pages_per_scan = pages;
        self
    }

    /// Migrates data pages of `pid` towards its current home socket
    /// (the single-socket / workload-migration scenario).  Returns the number
    /// of pages migrated.
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn scan_toward_home(&self, system: &mut System, pid: Pid) -> Result<u64, VmError> {
        let target = system.process(pid)?.home_socket();
        let candidates = self.remote_pages(system, pid, target)?;
        let mut moved = 0;
        for addr in candidates.into_iter().take(self.max_pages_per_scan) {
            // Migration is best effort, as in Linux: pages that cannot be
            // placed on the target (it is out of memory or too fragmented)
            // are simply skipped.
            match system.migrate_data_page(pid, addr, target) {
                Ok(true) => moved += 1,
                Ok(false) => {}
                Err(VmError::Mem(_)) => {}
                Err(other) => return Err(other),
            }
        }
        Ok(moved)
    }

    /// Balances data pages of `pid` across `sockets`, approximating the
    /// steady state AutoNUMA reaches for a workload whose threads on all
    /// those sockets touch the data (the multi-socket scenario).  Returns
    /// the number of pages migrated.
    ///
    /// # Errors
    ///
    /// Propagates allocation and page-table errors.
    pub fn rebalance(
        &self,
        system: &mut System,
        pid: Pid,
        sockets: &[SocketId],
    ) -> Result<u64, VmError> {
        if sockets.is_empty() {
            return Ok(0);
        }
        let mappings: Vec<(VirtAddr, SocketId)> = {
            let process = system.process(pid)?;
            let roots = process.address_space().roots().clone();
            mitosis_pt::iter_leaf_mappings(&system.pt_env().store, roots.base())
                .into_iter()
                .map(|m| (m.addr, system.pt_env().frames.socket_of(m.frame)))
                .collect()
        };
        // Count current occupancy on the participating sockets.
        let mut count = vec![0u64; system.machine().sockets()];
        for (_, socket) in &mappings {
            count[socket.index()] += 1;
        }
        let participating: u64 = sockets.iter().map(|s| count[s.index()]).sum();
        let stray: u64 = mappings.len() as u64 - participating;
        let target_per_socket = (mappings.len() as u64).div_ceil(sockets.len() as u64);
        let _ = stray;

        let mut moved = 0u64;
        let mut budget = self.max_pages_per_scan;
        // Move pages from over-full sockets (or sockets outside the set) to
        // the most under-full participating socket.
        for (addr, current) in mappings {
            if budget == 0 {
                break;
            }
            let over_full =
                sockets.contains(&current) && count[current.index()] > target_per_socket;
            let outside = !sockets.contains(&current);
            if !(over_full || outside) {
                continue;
            }
            let destination = sockets
                .iter()
                .copied()
                .min_by_key(|s| count[s.index()])
                .expect("sockets is non-empty");
            if destination == current || count[destination.index()] >= target_per_socket {
                continue;
            }
            match system.migrate_data_page(pid, addr, destination) {
                Ok(true) => {
                    count[current.index()] -= 1;
                    count[destination.index()] += 1;
                    moved += 1;
                    budget -= 1;
                }
                Ok(false) => {}
                // Best effort: skip pages the destination cannot take.
                Err(VmError::Mem(_)) => {}
                Err(other) => return Err(other),
            }
        }
        Ok(moved)
    }

    /// Lists the addresses of data pages of `pid` that do not reside on
    /// `target`.
    fn remote_pages(
        &self,
        system: &System,
        pid: Pid,
        target: SocketId,
    ) -> Result<Vec<VirtAddr>, VmError> {
        let process = system.process(pid)?;
        let roots = process.address_space().roots().clone();
        Ok(
            mitosis_pt::iter_leaf_mappings(&system.pt_env().store, roots.base())
                .into_iter()
                .filter(|m| system.pt_env().frames.socket_of(m.frame) != target)
                .map(|m| m.addr)
                .collect(),
        )
    }
}

impl Default for AutoNuma {
    fn default() -> Self {
        AutoNuma::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::MmapFlags;
    use mitosis_numa::MachineConfig;

    fn populated_system() -> (System, Pid, VirtAddr) {
        let machine = MachineConfig::two_socket_small().build();
        let mut system = System::new(machine);
        let pid = system.create_process(SocketId::new(0)).unwrap();
        let addr = system.mmap(pid, 32 * 4096, MmapFlags::populate()).unwrap();
        (system, pid, addr)
    }

    #[test]
    fn scan_toward_home_moves_remote_pages_only() {
        let (mut system, pid, _) = populated_system();
        // Everything is on socket 0 and the process lives there: no movement.
        let moved = AutoNuma::new().scan_toward_home(&mut system, pid).unwrap();
        assert_eq!(moved, 0);
        // After the scheduler moves the process, data follows.
        system
            .migrate_process(pid, SocketId::new(1), false)
            .unwrap();
        let moved = AutoNuma::new().scan_toward_home(&mut system, pid).unwrap();
        assert_eq!(moved, 32);
        let footprint = system.footprint(pid).unwrap();
        assert_eq!(footprint.data_bytes[0], 0);
        // Page tables stayed on socket 0.
        assert!(footprint.pagetable_bytes[0] > 0);
        assert_eq!(footprint.pagetable_bytes[1], 0);
    }

    #[test]
    fn scan_budget_limits_migration_rate() {
        let (mut system, pid, _) = populated_system();
        system
            .migrate_process(pid, SocketId::new(1), false)
            .unwrap();
        let daemon = AutoNuma::new().with_scan_budget(10);
        assert_eq!(daemon.scan_toward_home(&mut system, pid).unwrap(), 10);
        assert_eq!(daemon.scan_toward_home(&mut system, pid).unwrap(), 10);
        assert_eq!(daemon.scan_toward_home(&mut system, pid).unwrap(), 10);
        assert_eq!(daemon.scan_toward_home(&mut system, pid).unwrap(), 2);
        assert_eq!(daemon.scan_toward_home(&mut system, pid).unwrap(), 0);
    }

    #[test]
    fn rebalance_spreads_first_touch_data_across_sockets() {
        let (mut system, pid, _) = populated_system();
        let before = system.footprint(pid).unwrap();
        assert_eq!(before.data_bytes[1], 0);
        let moved = AutoNuma::new()
            .rebalance(&mut system, pid, &[SocketId::new(0), SocketId::new(1)])
            .unwrap();
        assert!(moved > 0);
        let after = system.footprint(pid).unwrap();
        assert_eq!(after.data_bytes[0], after.data_bytes[1]);
    }

    #[test]
    fn rebalance_with_no_sockets_is_a_no_op() {
        let (mut system, pid, _) = populated_system();
        assert_eq!(AutoNuma::new().rebalance(&mut system, pid, &[]).unwrap(), 0);
    }
}
