//! Per-socket reserved page caches for page-table allocations.
//!
//! Page-table replication requires *strict* allocation: a replica for socket
//! `s` is useless unless it is physically on socket `s`.  Strict allocation
//! can fail when a socket's memory is exhausted, so the paper reserves a
//! per-socket pool of frames for page-table pages, sized through a sysctl
//! (§5.1).  This module implements that reserve.

use crate::alloc::FrameAllocator;
use crate::error::MemError;
use crate::frame::FrameId;
use mitosis_numa::SocketId;

/// Per-socket reserve of frames dedicated to page-table pages.
///
/// # Example
///
/// ```
/// use mitosis_numa::{MachineConfig, SocketId};
/// use mitosis_mem::{FrameAllocator, PageCache};
///
/// let machine = MachineConfig::two_socket_small().build();
/// let mut alloc = FrameAllocator::new(&machine);
/// let mut cache = PageCache::new(2, 16);
/// cache.refill(&mut alloc)?;
/// let frame = cache.alloc_pagetable_frame(&mut alloc, SocketId::new(1))?;
/// assert_eq!(alloc.frame_space().socket_of(frame), SocketId::new(1));
/// # Ok::<(), mitosis_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PageCache {
    reserves: Vec<Vec<FrameId>>,
    target_per_socket: usize,
}

impl PageCache {
    /// Creates a page cache for `sockets` sockets with a per-socket target
    /// reserve of `target_per_socket` frames (the sysctl knob).
    pub fn new(sockets: usize, target_per_socket: usize) -> Self {
        PageCache {
            reserves: vec![Vec::new(); sockets],
            target_per_socket,
        }
    }

    /// Changes the per-socket reserve target.  Takes effect on the next
    /// [`Self::refill`].
    pub fn set_target(&mut self, target_per_socket: usize) {
        self.target_per_socket = target_per_socket;
    }

    /// The configured per-socket reserve target.
    pub fn target(&self) -> usize {
        self.target_per_socket
    }

    /// Number of reserved frames currently held for `socket`.
    pub fn reserved(&self, socket: SocketId) -> usize {
        self.reserves[socket.index()].len()
    }

    /// Tops up every socket's reserve to the configured target.
    ///
    /// # Errors
    ///
    /// Returns the first strict-allocation failure encountered; reserves
    /// filled before the failure are kept.
    pub fn refill(&mut self, alloc: &mut FrameAllocator) -> Result<(), MemError> {
        for s in 0..self.reserves.len() {
            let socket = SocketId::new(s as u16);
            while self.reserves[s].len() < self.target_per_socket {
                let frame = alloc.alloc_on(socket)?;
                self.reserves[s].push(frame);
            }
        }
        Ok(())
    }

    /// Allocates a frame for a page-table page that should live on `socket`.
    ///
    /// Tries strict allocation first and falls back to the socket's reserve,
    /// mirroring the paper's design where the reserve exists to absorb strict
    /// allocation failures.  If the reserve is also empty, the allocation
    /// spills to another socket as stock Linux would (the resulting
    /// page-table page is then simply remote).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::PageCacheEmpty`] if strict allocation, the
    /// reserve and the machine-wide fallback all fail.
    pub fn alloc_pagetable_frame(
        &mut self,
        alloc: &mut FrameAllocator,
        socket: SocketId,
    ) -> Result<FrameId, MemError> {
        if let Ok(frame) = alloc.alloc_on(socket) {
            return Ok(frame);
        }
        if let Some(frame) = self.reserves[socket.index()].pop() {
            return Ok(frame);
        }
        alloc
            .alloc_preferring(socket)
            .map_err(|_| MemError::PageCacheEmpty { socket })
    }

    /// Returns a no-longer-needed page-table frame to the socket's reserve if
    /// below target, otherwise frees it back to the allocator.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors if the frame has to be freed and is not
    /// currently allocated.
    pub fn release_pagetable_frame(
        &mut self,
        alloc: &mut FrameAllocator,
        frame: FrameId,
    ) -> Result<(), MemError> {
        let socket = alloc.frame_space().socket_of(frame);
        let reserve = &mut self.reserves[socket.index()];
        if reserve.len() < self.target_per_socket {
            reserve.push(frame);
            Ok(())
        } else {
            alloc.free(frame)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameSpace;

    #[test]
    fn refill_reaches_the_target_on_every_socket() {
        let mut alloc = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(2, 64));
        let mut cache = PageCache::new(2, 8);
        cache.refill(&mut alloc).unwrap();
        assert_eq!(cache.reserved(SocketId::new(0)), 8);
        assert_eq!(cache.reserved(SocketId::new(1)), 8);
        assert_eq!(alloc.total_allocated(), 16);
    }

    #[test]
    fn reserve_absorbs_strict_allocation_failure() {
        let mut alloc = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(1, 4));
        let mut cache = PageCache::new(1, 2);
        cache.refill(&mut alloc).unwrap();
        // Exhaust the socket.
        while alloc.alloc_on(SocketId::new(0)).is_ok() {}
        // Strict allocation now fails, but the reserve serves the request.
        let frame = cache
            .alloc_pagetable_frame(&mut alloc, SocketId::new(0))
            .unwrap();
        assert_eq!(alloc.frame_space().socket_of(frame), SocketId::new(0));
        assert_eq!(cache.reserved(SocketId::new(0)), 1);
        // Drain the reserve and verify the error.
        let _ = cache
            .alloc_pagetable_frame(&mut alloc, SocketId::new(0))
            .unwrap();
        assert_eq!(
            cache.alloc_pagetable_frame(&mut alloc, SocketId::new(0)),
            Err(MemError::PageCacheEmpty {
                socket: SocketId::new(0)
            })
        );
    }

    #[test]
    fn released_frames_top_up_the_reserve_then_go_back_to_the_allocator() {
        let mut alloc = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(1, 64));
        let mut cache = PageCache::new(1, 1);
        let a = cache
            .alloc_pagetable_frame(&mut alloc, SocketId::new(0))
            .unwrap();
        let b = cache
            .alloc_pagetable_frame(&mut alloc, SocketId::new(0))
            .unwrap();
        cache.release_pagetable_frame(&mut alloc, a).unwrap();
        assert_eq!(cache.reserved(SocketId::new(0)), 1);
        cache.release_pagetable_frame(&mut alloc, b).unwrap();
        assert_eq!(cache.reserved(SocketId::new(0)), 1);
        assert!(!alloc.is_allocated(b));
        assert!(alloc.is_allocated(a));
    }

    #[test]
    fn set_target_changes_refill_behaviour() {
        let mut alloc = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(1, 64));
        let mut cache = PageCache::new(1, 0);
        cache.refill(&mut alloc).unwrap();
        assert_eq!(cache.reserved(SocketId::new(0)), 0);
        cache.set_target(4);
        assert_eq!(cache.target(), 4);
        cache.refill(&mut alloc).unwrap();
        assert_eq!(cache.reserved(SocketId::new(0)), 4);
    }
}
