//! Physical memory management substrate for the Mitosis reproduction.
//!
//! This crate plays the role of the Linux buddy allocator plus the pieces of
//! the physical-memory bookkeeping that Mitosis relies on:
//!
//! * [`FrameSpace`] — the machine's physical address space split into
//!   per-socket ranges of 4 KiB frames (`FrameId` ↦ socket).
//! * [`FrameAllocator`] — per-socket frame allocation with support for 2 MiB
//!   huge frames, strict ("this socket or fail") and policy-driven requests,
//!   and an external-fragmentation model that makes huge-frame allocation
//!   fail as the machine ages (paper §8.2, Figure 11).
//! * [`PlacementPolicy`] — first-touch, interleave, fixed and preferred data
//!   placement, mirroring Linux/numactl allocation policies.
//! * [`FrameTable`] — per-frame metadata (`struct page` in Linux), including
//!   the circular replica list Mitosis threads through page-table pages
//!   (paper §5.2, Figure 8).
//! * [`PageCache`] — per-socket reserved pools of frames for page-table
//!   allocations, sized through a sysctl-like knob (paper §5.1).
//!
//! # Example
//!
//! ```
//! use mitosis_numa::MachineConfig;
//! use mitosis_mem::{FrameAllocator, PlacementPolicy};
//! use mitosis_numa::SocketId;
//!
//! let machine = MachineConfig::two_socket_small().build();
//! let mut alloc = FrameAllocator::new(&machine);
//! let frame = alloc.alloc_on(SocketId::new(1))?;
//! assert_eq!(alloc.frame_space().socket_of(frame), SocketId::new(1));
//! # Ok::<(), mitosis_mem::MemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alloc;
mod error;
mod fragmentation;
mod frame;
mod meta;
mod page_cache;
mod policy;
mod refcount;

pub use alloc::{AllocStats, FrameAllocator};
pub use error::MemError;
pub use fragmentation::FragmentationModel;
pub use frame::{
    FrameId, FrameRange, FrameSpace, BASE_PAGE_SIZE, FRAMES_PER_HUGE_PAGE, HUGE_PAGE_SIZE,
};
pub use meta::{FrameKind, FrameTable, PageMeta};
pub use page_cache::PageCache;
pub use policy::{InterleaveState, PlacementPolicy, PolicyEngine};
pub use refcount::CowRefCounts;
