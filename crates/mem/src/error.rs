//! Error type for physical memory operations.

use mitosis_numa::SocketId;
use std::error::Error;
use std::fmt;

/// Errors returned by the physical memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The requested socket has no free frame left.
    OutOfMemory {
        /// Socket whose memory is exhausted.
        socket: SocketId,
    },
    /// No socket in the machine has a free frame left.
    MachineOutOfMemory,
    /// A 2 MiB-aligned contiguous block could not be found on the socket,
    /// either because memory is exhausted or because external fragmentation
    /// prevents it.
    HugeAllocationFailed {
        /// Socket on which the huge allocation was attempted.
        socket: SocketId,
    },
    /// The frame is not currently allocated (double free or stray free).
    NotAllocated {
        /// Raw frame number of the offending frame.
        pfn: u64,
    },
    /// The per-socket page cache for page-table frames is empty and strict
    /// allocation failed.
    PageCacheEmpty {
        /// Socket whose reserve is empty.
        socket: SocketId,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { socket } => {
                write!(f, "out of memory on {socket}")
            }
            MemError::MachineOutOfMemory => write!(f, "out of memory on every socket"),
            MemError::HugeAllocationFailed { socket } => {
                write!(f, "huge page allocation failed on {socket}")
            }
            MemError::NotAllocated { pfn } => {
                write!(f, "frame {pfn:#x} is not allocated")
            }
            MemError::PageCacheEmpty { socket } => {
                write!(f, "page-table page cache empty on {socket}")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let messages = [
            MemError::OutOfMemory {
                socket: SocketId::new(1),
            }
            .to_string(),
            MemError::MachineOutOfMemory.to_string(),
            MemError::HugeAllocationFailed {
                socket: SocketId::new(0),
            }
            .to_string(),
            MemError::NotAllocated { pfn: 0x42 }.to_string(),
            MemError::PageCacheEmpty {
                socket: SocketId::new(2),
            }
            .to_string(),
        ];
        for msg in messages {
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MemError>();
    }
}
