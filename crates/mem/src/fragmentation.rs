//! External-fragmentation model.
//!
//! The paper's Figure 11 evaluates Mitosis with transparent huge pages under
//! *heavy memory fragmentation*: as a machine ages, physically contiguous
//! 2 MiB regions become scarce and THP allocations fall back to 4 KiB pages,
//! re-exposing the NUMA page-walk overheads.  We do not simulate the
//! byte-level layout of a fragmented physical memory; instead this model makes
//! huge-frame allocations fail with a configurable probability, which is the
//! observable effect fragmentation has on the allocator.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// Probability model for huge-page allocation failures caused by external
/// fragmentation.
///
/// # Example
///
/// ```
/// use mitosis_mem::FragmentationModel;
///
/// let mut pristine = FragmentationModel::none();
/// assert!(!pristine.huge_allocation_fails());
///
/// let mut heavy = FragmentationModel::heavy();
/// let failures = (0..1000).filter(|_| heavy.huge_allocation_fails()).count();
/// assert!(failures > 800);
/// ```
#[derive(Debug, Clone)]
pub struct FragmentationModel {
    failure_probability: f64,
    rng: StdRng,
}

impl FragmentationModel {
    /// A pristine machine: huge allocations always succeed (given memory).
    pub fn none() -> Self {
        FragmentationModel::with_probability(0.0)
    }

    /// Heavy fragmentation as used for the paper's Figure 11: ~95 % of huge
    /// allocations fail and fall back to base pages.
    pub fn heavy() -> Self {
        FragmentationModel::with_probability(0.95)
    }

    /// Creates a model with an explicit failure probability in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not within `[0, 1]`.
    pub fn with_probability(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "fragmentation probability must be within [0, 1]"
        );
        FragmentationModel {
            failure_probability: probability,
            rng: StdRng::seed_from_u64(0x4d49544f53495321),
        }
    }

    /// Overrides the random seed (for reproducible experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// The configured failure probability.
    pub fn failure_probability(&self) -> f64 {
        self.failure_probability
    }

    /// Draws whether the next huge-frame allocation fails due to
    /// fragmentation.
    pub fn huge_allocation_fails(&mut self) -> bool {
        if self.failure_probability <= 0.0 {
            return false;
        }
        if self.failure_probability >= 1.0 {
            return true;
        }
        self.rng.random::<f64>() < self.failure_probability
    }
}

impl Default for FragmentationModel {
    fn default() -> Self {
        FragmentationModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_fragmentation_never_fails() {
        let mut model = FragmentationModel::none();
        assert!((0..100).all(|_| !model.huge_allocation_fails()));
    }

    #[test]
    fn full_fragmentation_always_fails() {
        let mut model = FragmentationModel::with_probability(1.0);
        assert!((0..100).all(|_| model.huge_allocation_fails()));
    }

    #[test]
    fn heavy_fragmentation_fails_mostly() {
        let mut model = FragmentationModel::heavy();
        let failures = (0..10_000)
            .filter(|_| model.huge_allocation_fails())
            .count();
        assert!(
            (9_000..=10_000).contains(&failures),
            "failures = {failures}"
        );
    }

    #[test]
    fn seeded_models_are_reproducible() {
        let mut a = FragmentationModel::with_probability(0.5).with_seed(7);
        let mut b = FragmentationModel::with_probability(0.5).with_seed(7);
        let draws_a: Vec<bool> = (0..64).map(|_| a.huge_allocation_fails()).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.huge_allocation_fails()).collect();
        assert_eq!(draws_a, draws_b);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn invalid_probability_panics() {
        let _ = FragmentationModel::with_probability(1.5);
    }
}
