//! Physical frames and the machine's frame space.

use mitosis_numa::{Machine, SocketId};
use std::fmt;

/// Size of a base (4 KiB) page/frame in bytes.
pub const BASE_PAGE_SIZE: u64 = 4096;
/// Size of a huge (2 MiB) page in bytes.
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// Number of base frames backing one huge page.
pub const FRAMES_PER_HUGE_PAGE: u64 = HUGE_PAGE_SIZE / BASE_PAGE_SIZE;

/// A physical frame number (4 KiB granularity), global across the machine.
///
/// Frame numbers are dense: socket `s` owns the contiguous range
/// `[s * frames_per_socket, (s + 1) * frames_per_socket)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// Creates a frame identifier from a raw frame number.
    pub const fn new(pfn: u64) -> Self {
        FrameId(pfn)
    }

    /// Returns the raw physical frame number.
    pub const fn pfn(self) -> u64 {
        self.0
    }

    /// Returns the physical byte address of the start of the frame.
    pub const fn base_address(self) -> u64 {
        self.0 * BASE_PAGE_SIZE
    }

    /// Returns the frame `offset` frames after this one.
    pub const fn offset(self, offset: u64) -> FrameId {
        FrameId(self.0 + offset)
    }

    /// Returns `true` if this frame is aligned to a huge-page boundary.
    pub const fn is_huge_aligned(self) -> bool {
        self.0.is_multiple_of(FRAMES_PER_HUGE_PAGE)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// A contiguous, half-open range of frames `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRange {
    /// First frame of the range.
    pub start: FrameId,
    /// One past the last frame of the range.
    pub end: FrameId,
}

impl FrameRange {
    /// Creates a frame range.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: FrameId, end: FrameId) -> Self {
        assert!(
            start.pfn() <= end.pfn(),
            "frame range start must not exceed end"
        );
        FrameRange { start, end }
    }

    /// Number of frames in the range.
    pub const fn len(&self) -> u64 {
        self.end.pfn() - self.start.pfn()
    }

    /// Returns `true` if the range is empty.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `frame` falls within the range.
    pub const fn contains(&self, frame: FrameId) -> bool {
        frame.pfn() >= self.start.pfn() && frame.pfn() < self.end.pfn()
    }

    /// Iterates over the frames of the range.
    pub fn iter(&self) -> impl Iterator<Item = FrameId> {
        (self.start.pfn()..self.end.pfn()).map(FrameId::new)
    }
}

/// The machine's physical frame space: which socket owns which frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSpace {
    frames_per_socket: u64,
    sockets: usize,
    /// `log2(frames_per_socket)` when that count is a power of two (every
    /// machine with power-of-two memory sizes): `socket_of` — on the
    /// per-access simulator path — becomes a shift instead of a division.
    socket_shift: Option<u32>,
}

impl FrameSpace {
    /// Derives the frame space from a machine description.
    pub fn new(machine: &Machine) -> Self {
        FrameSpace::with_frames_per_socket(
            machine.sockets(),
            machine.memory_per_socket() / BASE_PAGE_SIZE,
        )
    }

    /// Creates a frame space with an explicit per-socket frame count
    /// (useful for tests).
    pub fn with_frames_per_socket(sockets: usize, frames_per_socket: u64) -> Self {
        assert!(sockets > 0 && frames_per_socket > 0);
        FrameSpace {
            frames_per_socket,
            sockets,
            socket_shift: frames_per_socket
                .is_power_of_two()
                .then(|| frames_per_socket.trailing_zeros()),
        }
    }

    /// Number of sockets covered by this frame space.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of frames attached to each socket.
    pub fn frames_per_socket(&self) -> u64 {
        self.frames_per_socket
    }

    /// Total number of frames in the machine.
    pub fn total_frames(&self) -> u64 {
        self.frames_per_socket * self.sockets as u64
    }

    /// Returns the socket whose memory controller serves `frame`.
    ///
    /// # Panics
    ///
    /// Panics if `frame` lies outside the frame space.
    #[inline]
    pub fn socket_of(&self, frame: FrameId) -> SocketId {
        let socket = match self.socket_shift {
            Some(shift) => frame.pfn() >> shift,
            None => frame.pfn() / self.frames_per_socket,
        };
        assert!(
            (socket as usize) < self.sockets,
            "frame {frame} outside of physical memory"
        );
        SocketId::new(socket as u16)
    }

    /// Returns the frame range owned by `socket`.
    pub fn range_of(&self, socket: SocketId) -> FrameRange {
        let start = socket.index() as u64 * self.frames_per_socket;
        FrameRange::new(
            FrameId::new(start),
            FrameId::new(start + self.frames_per_socket),
        )
    }

    /// Returns `true` if `frame` is a valid frame of this machine.
    pub fn contains(&self, frame: FrameId) -> bool {
        frame.pfn() < self.total_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_numa::MachineConfig;

    #[test]
    fn frame_address_and_alignment() {
        let f = FrameId::new(512);
        assert_eq!(f.base_address(), 512 * 4096);
        assert!(f.is_huge_aligned());
        assert!(!f.offset(1).is_huge_aligned());
    }

    #[test]
    fn socket_ownership_is_contiguous() {
        let space = FrameSpace::with_frames_per_socket(4, 1000);
        assert_eq!(space.socket_of(FrameId::new(0)), SocketId::new(0));
        assert_eq!(space.socket_of(FrameId::new(999)), SocketId::new(0));
        assert_eq!(space.socket_of(FrameId::new(1000)), SocketId::new(1));
        assert_eq!(space.socket_of(FrameId::new(3999)), SocketId::new(3));
        assert_eq!(space.total_frames(), 4000);
    }

    #[test]
    #[should_panic(expected = "outside of physical memory")]
    fn out_of_range_frame_panics() {
        let space = FrameSpace::with_frames_per_socket(2, 10);
        let _ = space.socket_of(FrameId::new(20));
    }

    #[test]
    fn range_of_socket() {
        let space = FrameSpace::with_frames_per_socket(2, 10);
        let range = space.range_of(SocketId::new(1));
        assert_eq!(range.start, FrameId::new(10));
        assert_eq!(range.end, FrameId::new(20));
        assert_eq!(range.len(), 10);
        assert!(range.contains(FrameId::new(15)));
        assert!(!range.contains(FrameId::new(20)));
        assert_eq!(range.iter().count(), 10);
    }

    #[test]
    fn frame_space_from_machine() {
        let machine = MachineConfig::two_socket_small().build();
        let space = FrameSpace::new(&machine);
        assert_eq!(space.sockets(), 2);
        assert_eq!(space.frames_per_socket(), (4u64 << 30) / 4096);
    }

    #[test]
    #[should_panic(expected = "start must not exceed end")]
    fn invalid_range_panics() {
        let _ = FrameRange::new(FrameId::new(5), FrameId::new(1));
    }
}
