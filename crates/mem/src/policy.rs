//! Data-page placement policies.
//!
//! These mirror the Linux/numactl allocation policies used throughout the
//! paper's evaluation matrix (Tables 2 and 3): first-touch (the default),
//! interleave, and explicit binding to a socket.  The policy decides *which
//! socket* a freshly faulted page should come from; the
//! [`FrameAllocator`](crate::FrameAllocator) then performs the allocation.

use crate::alloc::FrameAllocator;
use crate::error::MemError;
use crate::frame::FrameId;
use mitosis_numa::{NodeMask, SocketId};

/// A data-page placement policy, as selectable through `numactl` / `mbind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Allocate on the socket of the thread that first touches the page
    /// (Linux's default policy).
    #[default]
    FirstTouch,
    /// Round-robin pages across the sockets of the mask
    /// (`numactl --interleave`).
    Interleave(NodeMask),
    /// Allocate strictly on one socket (`numactl --membind`); allocation
    /// fails if that socket is out of memory.
    Bind(SocketId),
    /// Prefer one socket but fall back to others (`numactl --preferred`).
    Preferred(SocketId),
}

impl PlacementPolicy {
    /// Convenience constructor for interleaving over all sockets of an
    /// `n`-socket machine.
    pub fn interleave_all(sockets: usize) -> Self {
        PlacementPolicy::Interleave(NodeMask::all(sockets))
    }
}

/// Mutable state needed by the interleave policy (the round-robin cursor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterleaveState {
    next: usize,
}

/// Applies a [`PlacementPolicy`] to pick sockets and allocate frames.
///
/// # Example
///
/// ```
/// use mitosis_numa::{MachineConfig, SocketId};
/// use mitosis_mem::{FrameAllocator, PlacementPolicy, PolicyEngine};
///
/// let machine = MachineConfig::two_socket_small().build();
/// let mut alloc = FrameAllocator::new(&machine);
/// let mut engine = PolicyEngine::new(PlacementPolicy::interleave_all(2));
/// let a = engine.alloc_data(&mut alloc, SocketId::new(0))?;
/// let b = engine.alloc_data(&mut alloc, SocketId::new(0))?;
/// assert_ne!(
///     alloc.frame_space().socket_of(a),
///     alloc.frame_space().socket_of(b),
/// );
/// # Ok::<(), mitosis_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    policy: PlacementPolicy,
    interleave: InterleaveState,
}

impl PolicyEngine {
    /// Creates an engine for the given policy.
    pub fn new(policy: PlacementPolicy) -> Self {
        PolicyEngine {
            policy,
            interleave: InterleaveState::default(),
        }
    }

    /// The policy this engine applies.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Replaces the policy (keeps the interleave cursor).
    pub fn set_policy(&mut self, policy: PlacementPolicy) {
        self.policy = policy;
    }

    /// Decides which socket the next data page should be placed on, given the
    /// socket of the faulting thread.
    pub fn choose_socket(&mut self, faulting_socket: SocketId) -> SocketId {
        match self.policy {
            PlacementPolicy::FirstTouch => faulting_socket,
            PlacementPolicy::Bind(socket) | PlacementPolicy::Preferred(socket) => socket,
            PlacementPolicy::Interleave(mask) => {
                let sockets: Vec<SocketId> = mask.iter().collect();
                if sockets.is_empty() {
                    return faulting_socket;
                }
                let socket = sockets[self.interleave.next % sockets.len()];
                self.interleave.next = (self.interleave.next + 1) % sockets.len();
                socket
            }
        }
    }

    /// Chooses a socket and allocates one data frame according to the policy.
    ///
    /// # Errors
    ///
    /// Propagates allocator errors; `Bind` is strict while the other policies
    /// fall back to any socket with free memory.
    pub fn alloc_data(
        &mut self,
        alloc: &mut FrameAllocator,
        faulting_socket: SocketId,
    ) -> Result<FrameId, MemError> {
        let target = self.choose_socket(faulting_socket);
        match self.policy {
            PlacementPolicy::Bind(_) => alloc.alloc_on(target),
            _ => alloc.alloc_preferring(target),
        }
    }

    /// Chooses a socket and allocates a 2 MiB huge frame according to the
    /// policy.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::HugeAllocationFailed`] if the chosen socket cannot
    /// supply a huge frame; the caller (THP logic) decides whether to fall
    /// back to base pages.
    pub fn alloc_huge_data(
        &mut self,
        alloc: &mut FrameAllocator,
        faulting_socket: SocketId,
    ) -> Result<FrameId, MemError> {
        let target = self.choose_socket(faulting_socket);
        alloc.alloc_huge_on(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameSpace;

    fn alloc() -> FrameAllocator {
        FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(4, 4096))
    }

    #[test]
    fn first_touch_allocates_on_faulting_socket() {
        let mut a = alloc();
        let mut engine = PolicyEngine::new(PlacementPolicy::FirstTouch);
        for s in 0..4u16 {
            let frame = engine.alloc_data(&mut a, SocketId::new(s)).unwrap();
            assert_eq!(a.frame_space().socket_of(frame), SocketId::new(s));
        }
    }

    #[test]
    fn interleave_round_robins_across_the_mask() {
        let mut a = alloc();
        let mask = NodeMask::from_sockets([SocketId::new(1), SocketId::new(3)]);
        let mut engine = PolicyEngine::new(PlacementPolicy::Interleave(mask));
        let sockets: Vec<usize> = (0..6)
            .map(|_| {
                let f = engine.alloc_data(&mut a, SocketId::new(0)).unwrap();
                a.frame_space().socket_of(f).index()
            })
            .collect();
        assert_eq!(sockets, vec![1, 3, 1, 3, 1, 3]);
    }

    #[test]
    fn bind_is_strict() {
        let mut a = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(2, 2));
        let mut engine = PolicyEngine::new(PlacementPolicy::Bind(SocketId::new(1)));
        assert!(engine.alloc_data(&mut a, SocketId::new(0)).is_ok());
        assert!(engine.alloc_data(&mut a, SocketId::new(0)).is_ok());
        assert_eq!(
            engine.alloc_data(&mut a, SocketId::new(0)),
            Err(MemError::OutOfMemory {
                socket: SocketId::new(1)
            })
        );
    }

    #[test]
    fn preferred_falls_back_when_full() {
        let mut a = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(2, 2));
        let mut engine = PolicyEngine::new(PlacementPolicy::Preferred(SocketId::new(1)));
        let _ = engine.alloc_data(&mut a, SocketId::new(0)).unwrap();
        let _ = engine.alloc_data(&mut a, SocketId::new(0)).unwrap();
        let spill = engine.alloc_data(&mut a, SocketId::new(0)).unwrap();
        assert_eq!(a.frame_space().socket_of(spill), SocketId::new(0));
    }

    #[test]
    fn empty_interleave_mask_falls_back_to_first_touch() {
        let mut engine = PolicyEngine::new(PlacementPolicy::Interleave(NodeMask::EMPTY));
        assert_eq!(engine.choose_socket(SocketId::new(2)), SocketId::new(2));
    }

    #[test]
    fn huge_allocation_respects_policy() {
        let mut a = alloc();
        let mut engine = PolicyEngine::new(PlacementPolicy::Bind(SocketId::new(2)));
        let frame = engine.alloc_huge_data(&mut a, SocketId::new(0)).unwrap();
        assert_eq!(a.frame_space().socket_of(frame), SocketId::new(2));
        assert!(frame.is_huge_aligned());
    }
}
