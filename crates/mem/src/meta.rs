//! Per-frame metadata — the simulator's `struct page`.
//!
//! Linux keeps a `struct page` for every physical frame; Mitosis augments it
//! with a pointer that threads all replicas of a page-table page into a
//! circular linked list (paper §5.2, Figure 8).  That list is what allows an
//! update intercepted at the PV-Ops layer to reach every replica in 2N memory
//! references instead of walking N page-tables.
//!
//! The table is backed by a slot slab plus a two-level directory indexed by
//! frame number — the same handle trick `PtStore` uses for page-table pages —
//! instead of a hash map.  Lookups hash nothing, replica-ring hops are two
//! array indexations, and because the directory is ordered by frame number
//! the table can be *range-sliced*: partial replay snapshots clone only the
//! frame ranges a lane group can touch via [`FrameTable::clone_ranges`].

use crate::frame::{FrameId, FrameRange, FrameSpace};
use mitosis_numa::SocketId;

/// What a physical frame is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// An application data frame.
    Data,
    /// A page-table page at the given level (1 = leaf/PTE level, 4 = root).
    PageTable {
        /// Radix-tree level of the page-table page (1..=4).
        level: u8,
    },
}

/// Metadata kept for one allocated physical frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMeta {
    kind: FrameKind,
    /// Next frame in the circular list of replicas of the same logical
    /// page-table page.  `None` when the page is not replicated.
    replica_next: Option<FrameId>,
}

impl PageMeta {
    /// Creates metadata for a freshly allocated frame.
    pub fn new(kind: FrameKind) -> Self {
        PageMeta {
            kind,
            replica_next: None,
        }
    }

    /// The frame's current use.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// The next replica in the circular list, if the page is replicated.
    pub fn replica_next(&self) -> Option<FrameId> {
        self.replica_next
    }
}

/// Frames per directory chunk (and the shift that selects the chunk).
const DIR_SHIFT: u32 = 12;
const CHUNK_FRAMES: usize = 1 << DIR_SHIFT;
/// Directory sentinel: "this frame has no slot".
const NO_SLOT: u32 = u32::MAX;

/// The machine-wide table of per-frame metadata.
///
/// Only allocated frames have entries; on a half-terabyte machine eagerly
/// materialising 128 M `struct page`s would be wasteful for a simulator.
/// Entries live in a slab (`slots`) reached through a two-level directory
/// (`dir[pfn >> 12][pfn & 0xfff]`), so lookup, insert and remove are O(1)
/// without hashing and iteration runs in frame-number order.
///
/// # Example
///
/// ```
/// use mitosis_mem::{FrameId, FrameKind, FrameSpace, FrameTable};
///
/// let space = FrameSpace::with_frames_per_socket(2, 1024);
/// let mut table = FrameTable::new(space);
/// table.insert(FrameId::new(3), FrameKind::PageTable { level: 1 });
/// assert_eq!(table.kind(FrameId::new(3)), Some(FrameKind::PageTable { level: 1 }));
/// ```
#[derive(Debug, Clone)]
pub struct FrameTable {
    space: FrameSpace,
    /// Metadata slab; freed slots are kept on `free` and identified by
    /// `NO_SLOT` directory entries, so a free slot's contents are stale and
    /// never read.
    slots: Vec<PageMeta>,
    free: Vec<u32>,
    dir: Vec<Option<Box<[u32; CHUNK_FRAMES]>>>,
    len: usize,
}

impl FrameTable {
    /// Creates an empty frame table over the given frame space.
    pub fn new(space: FrameSpace) -> Self {
        FrameTable {
            space,
            slots: Vec::new(),
            free: Vec::new(),
            dir: Vec::new(),
            len: 0,
        }
    }

    /// The frame space this table describes.
    pub fn frame_space(&self) -> &FrameSpace {
        &self.space
    }

    fn slot_of(&self, frame: FrameId) -> Option<u32> {
        let chunk = (frame.pfn() >> DIR_SHIFT) as usize;
        let slot = *self
            .dir
            .get(chunk)?
            .as_ref()?
            .get(frame.pfn() as usize & (CHUNK_FRAMES - 1))?;
        (slot != NO_SLOT).then_some(slot)
    }

    fn dir_entry_mut(&mut self, frame: FrameId) -> &mut u32 {
        let chunk = (frame.pfn() >> DIR_SHIFT) as usize;
        if chunk >= self.dir.len() {
            self.dir.resize(chunk + 1, None);
        }
        let chunk = self.dir[chunk].get_or_insert_with(|| Box::new([NO_SLOT; CHUNK_FRAMES]));
        &mut chunk[frame.pfn() as usize & (CHUNK_FRAMES - 1)]
    }

    /// Places `meta` for `frame`, creating or replacing its slot.
    fn insert_meta(&mut self, frame: FrameId, meta: PageMeta) {
        match self.slot_of(frame) {
            Some(slot) => self.slots[slot as usize] = meta,
            None => {
                let slot = match self.free.pop() {
                    Some(slot) => {
                        self.slots[slot as usize] = meta;
                        slot
                    }
                    None => {
                        self.slots.push(meta);
                        (self.slots.len() - 1) as u32
                    }
                };
                *self.dir_entry_mut(frame) = slot;
                self.len += 1;
            }
        }
    }

    /// Records metadata for a newly allocated frame, replacing any previous
    /// entry.
    pub fn insert(&mut self, frame: FrameId, kind: FrameKind) {
        self.insert_meta(frame, PageMeta::new(kind));
    }

    /// Removes the metadata of a freed frame and returns it.
    pub fn remove(&mut self, frame: FrameId) -> Option<PageMeta> {
        let slot = self.slot_of(frame)?;
        *self.dir_entry_mut(frame) = NO_SLOT;
        self.free.push(slot);
        self.len -= 1;
        Some(self.slots[slot as usize].clone())
    }

    /// Returns the metadata of a frame, if the frame is tracked.
    pub fn get(&self, frame: FrameId) -> Option<&PageMeta> {
        self.slot_of(frame).map(|s| &self.slots[s as usize])
    }

    fn get_mut(&mut self, frame: FrameId) -> Option<&mut PageMeta> {
        self.slot_of(frame).map(|s| &mut self.slots[s as usize])
    }

    /// Returns the use of a frame, if tracked.
    pub fn kind(&self, frame: FrameId) -> Option<FrameKind> {
        self.get(frame).map(|m| m.kind)
    }

    /// Returns the socket that owns a frame (derived from the frame space).
    pub fn socket_of(&self, frame: FrameId) -> SocketId {
        self.space.socket_of(frame)
    }

    /// Number of tracked frames.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no frame is tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over tracked frames in `range`, in frame-number order.
    pub fn iter_range(&self, range: FrameRange) -> impl Iterator<Item = (FrameId, &PageMeta)> {
        let start = range.start.pfn();
        let end = range.end.pfn();
        (start >> DIR_SHIFT..=end.saturating_sub(1) >> DIR_SHIFT)
            .filter_map(move |chunk| {
                let entries = self.dir.get(chunk as usize)?.as_ref()?;
                Some((chunk, entries))
            })
            .flat_map(move |(chunk, entries)| {
                entries
                    .iter()
                    .enumerate()
                    .filter(|(_, slot)| **slot != NO_SLOT)
                    .map(move |(i, slot)| {
                        (
                            FrameId::new((chunk << DIR_SHIFT) + i as u64),
                            &self.slots[*slot as usize],
                        )
                    })
                    .filter(move |(frame, _)| frame.pfn() >= start && frame.pfn() < end)
            })
    }

    /// Clones only the entries whose frames fall in one of `ranges` — the
    /// partial-snapshot path: a lane group that provably touches only a few
    /// frame ranges gets a table holding just those, at a cost proportional
    /// to the slice instead of the whole machine.
    ///
    /// Replica links are copied as-is; ring members outside `ranges` are
    /// simply absent from the slice, so ring walks on a sliced table are only
    /// meaningful for rings fully contained in the cloned ranges.  Partial
    /// replay snapshots guarantee this by construction: runs that could
    /// consult a ring (demand faults, replication events) fall back to a full
    /// clone.
    pub fn clone_ranges(&self, ranges: &[FrameRange]) -> FrameTable {
        let mut out = FrameTable::new(self.space.clone());
        for range in ranges {
            for (frame, meta) in self.iter_range(*range) {
                out.insert_meta(frame, meta.clone());
            }
        }
        out
    }

    /// Number of tracked frames of a given kind on a given socket.
    pub fn count_on_socket(&self, socket: SocketId, kind: FrameKind) -> usize {
        self.iter_range(self.space.range_of(socket))
            .filter(|(_, meta)| meta.kind == kind)
            .count()
    }

    // --- Replica ring management (paper §5.2, Figure 8) -------------------

    /// Links `frames` into a circular replica list.  Each frame's
    /// `replica_next` points to the next frame, and the last points back to
    /// the first.  A single frame forms a self-loop, which is treated as
    /// "not replicated" by [`Self::replicas_of`].
    ///
    /// # Panics
    ///
    /// Panics if `frames` is empty or if any frame is untracked.
    pub fn link_replicas(&mut self, frames: &[FrameId]) {
        assert!(!frames.is_empty(), "cannot link an empty replica set");
        for (i, &frame) in frames.iter().enumerate() {
            let next = frames[(i + 1) % frames.len()];
            let meta = self.get_mut(frame).expect("replica frame must be tracked");
            meta.replica_next = if frames.len() == 1 { None } else { Some(next) };
        }
    }

    /// Removes `frame` from its replica ring, patching the ring around it.
    /// Returns the remaining ring members (excluding `frame`).
    pub fn unlink_replica(&mut self, frame: FrameId) -> Vec<FrameId> {
        let ring = self.replicas_of(frame);
        let remaining: Vec<FrameId> = ring.into_iter().filter(|f| *f != frame).collect();
        if let Some(meta) = self.get_mut(frame) {
            meta.replica_next = None;
        }
        if !remaining.is_empty() {
            self.link_replicas(&remaining);
        }
        remaining
    }

    /// Returns every member of `frame`'s replica ring, starting with `frame`
    /// itself.  A non-replicated frame yields just `[frame]`.
    pub fn replicas_of(&self, frame: FrameId) -> Vec<FrameId> {
        let mut out = vec![frame];
        let mut cursor = frame;
        while let Some(next) = self.get(cursor).and_then(|m| m.replica_next) {
            if next == frame {
                break;
            }
            out.push(next);
            cursor = next;
            assert!(
                out.len() <= 64,
                "replica ring longer than the maximum socket count; corrupted ring?"
            );
        }
        out
    }

    /// Returns the replica of `frame` that lives on `socket`, if any.
    pub fn replica_on_socket(&self, frame: FrameId, socket: SocketId) -> Option<FrameId> {
        self.replicas_of(frame)
            .into_iter()
            .find(|f| self.space.socket_of(*f) == socket)
    }

    /// Returns `true` if `frame` participates in a replica ring of more than
    /// one page.
    pub fn is_replicated(&self, frame: FrameId) -> bool {
        self.get(frame).and_then(|m| m.replica_next).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> FrameTable {
        FrameTable::new(FrameSpace::with_frames_per_socket(4, 1000))
    }

    #[test]
    fn insert_get_remove() {
        let mut t = table();
        t.insert(FrameId::new(5), FrameKind::Data);
        assert_eq!(t.kind(FrameId::new(5)), Some(FrameKind::Data));
        assert_eq!(t.len(), 1);
        let meta = t.remove(FrameId::new(5)).unwrap();
        assert_eq!(meta.kind(), FrameKind::Data);
        assert!(t.is_empty());
        assert_eq!(t.kind(FrameId::new(5)), None);
    }

    #[test]
    fn reinsert_resets_replica_link() {
        let mut t = table();
        let frames = [FrameId::new(1), FrameId::new(1001)];
        for &f in &frames {
            t.insert(f, FrameKind::PageTable { level: 1 });
        }
        t.link_replicas(&frames);
        assert!(t.is_replicated(frames[0]));
        // Replacing an entry behaves like a fresh map insert: the old
        // metadata — including the ring link — is discarded.
        t.insert(frames[0], FrameKind::PageTable { level: 1 });
        assert!(!t.is_replicated(frames[0]));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn slot_reuse_after_remove() {
        let mut t = table();
        for pfn in 0..100 {
            t.insert(FrameId::new(pfn), FrameKind::Data);
        }
        for pfn in 0..50 {
            t.remove(FrameId::new(pfn));
        }
        assert_eq!(t.len(), 50);
        for pfn in 2000..2050 {
            t.insert(FrameId::new(pfn), FrameKind::PageTable { level: 2 });
        }
        assert_eq!(t.len(), 100);
        for pfn in 50..100 {
            assert_eq!(t.kind(FrameId::new(pfn)), Some(FrameKind::Data));
        }
        for pfn in 2000..2050 {
            assert_eq!(
                t.kind(FrameId::new(pfn)),
                Some(FrameKind::PageTable { level: 2 })
            );
        }
    }

    #[test]
    fn clone_ranges_slices_by_frame_number() {
        let mut t = table();
        for pfn in [0u64, 500, 999, 1000, 1500, 2500, 3999] {
            t.insert(FrameId::new(pfn), FrameKind::Data);
        }
        let space = t.frame_space().clone();
        let slice = t.clone_ranges(&[space.range_of(SocketId::new(1))]);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice.kind(FrameId::new(1000)), Some(FrameKind::Data));
        assert_eq!(slice.kind(FrameId::new(1500)), Some(FrameKind::Data));
        assert_eq!(slice.kind(FrameId::new(999)), None);
        assert_eq!(slice.kind(FrameId::new(2500)), None);

        let both = t.clone_ranges(&[
            space.range_of(SocketId::new(0)),
            space.range_of(SocketId::new(3)),
        ]);
        assert_eq!(both.len(), 4);
        assert_eq!(both.kind(FrameId::new(3999)), Some(FrameKind::Data));
    }

    #[test]
    fn clone_ranges_preserves_replica_links_inside_the_slice() {
        let mut t = table();
        let frames = [FrameId::new(10), FrameId::new(20)];
        for &f in &frames {
            t.insert(f, FrameKind::PageTable { level: 2 });
        }
        t.link_replicas(&frames);
        let slice = t.clone_ranges(&[FrameRange::new(FrameId::new(0), FrameId::new(100))]);
        assert!(slice.is_replicated(frames[0]));
        assert_eq!(slice.replicas_of(frames[0]).len(), 2);
    }

    #[test]
    fn replica_ring_links_all_members() {
        let mut t = table();
        // One page-table page replica per socket: frames 10, 1010, 2010, 3010.
        let frames: Vec<FrameId> = (0..4).map(|s| FrameId::new(s * 1000 + 10)).collect();
        for &f in &frames {
            t.insert(f, FrameKind::PageTable { level: 2 });
        }
        t.link_replicas(&frames);
        for &f in &frames {
            assert!(t.is_replicated(f));
            let ring = t.replicas_of(f);
            assert_eq!(ring.len(), 4);
            assert_eq!(ring[0], f);
        }
        assert_eq!(
            t.replica_on_socket(frames[0], SocketId::new(2)),
            Some(frames[2])
        );
    }

    #[test]
    fn single_frame_ring_is_not_replicated() {
        let mut t = table();
        t.insert(FrameId::new(7), FrameKind::PageTable { level: 1 });
        t.link_replicas(&[FrameId::new(7)]);
        assert!(!t.is_replicated(FrameId::new(7)));
        assert_eq!(t.replicas_of(FrameId::new(7)), vec![FrameId::new(7)]);
    }

    #[test]
    fn unlink_patches_the_ring() {
        let mut t = table();
        let frames: Vec<FrameId> = (0..3).map(|s| FrameId::new(s * 1000 + 1)).collect();
        for &f in &frames {
            t.insert(f, FrameKind::PageTable { level: 1 });
        }
        t.link_replicas(&frames);
        let mut remaining = t.unlink_replica(frames[1]);
        remaining.sort();
        assert_eq!(remaining, vec![frames[0], frames[2]]);
        assert!(!t.is_replicated(frames[1]));
        assert_eq!(t.replicas_of(frames[0]).len(), 2);
        assert_eq!(
            t.replica_on_socket(frames[0], SocketId::new(1)),
            None,
            "socket 1 replica was unlinked"
        );
    }

    #[test]
    fn count_on_socket_filters_by_kind_and_socket() {
        let mut t = table();
        t.insert(FrameId::new(0), FrameKind::Data);
        t.insert(FrameId::new(1), FrameKind::PageTable { level: 1 });
        t.insert(FrameId::new(1001), FrameKind::PageTable { level: 1 });
        assert_eq!(
            t.count_on_socket(SocketId::new(0), FrameKind::PageTable { level: 1 }),
            1
        );
        assert_eq!(
            t.count_on_socket(SocketId::new(1), FrameKind::PageTable { level: 1 }),
            1
        );
        assert_eq!(t.count_on_socket(SocketId::new(0), FrameKind::Data), 1);
    }

    #[test]
    #[should_panic(expected = "cannot link an empty replica set")]
    fn linking_empty_set_panics() {
        let mut t = table();
        t.link_replicas(&[]);
    }
}
