//! Copy-on-write frame sharing counts.
//!
//! After a fork, parent and child map the same data frames read-only; each
//! shared frame carries a share count here.  A frame absent from the table
//! is exclusively owned (the overwhelmingly common case), so the table only
//! ever holds the currently-shared frames.  Backed by a `BTreeMap` so
//! iteration order — and therefore any replay that walks the table — is
//! deterministic.

use crate::frame::FrameId;
use std::collections::BTreeMap;

/// Share counts for copy-on-write frames.
///
/// Only frames shared by more than one mapping appear in the table; the
/// count is the number of mappings referencing the frame.  Dropping to one
/// reference removes the entry (the frame is exclusive again).
#[derive(Debug, Clone, Default)]
pub struct CowRefCounts {
    shared: BTreeMap<u64, u32>,
}

impl CowRefCounts {
    /// Creates an empty table (every frame exclusively owned).
    pub fn new() -> Self {
        CowRefCounts::default()
    }

    /// Returns the number of mappings referencing `frame` (1 when the frame
    /// is not shared).
    pub fn references(&self, frame: FrameId) -> u32 {
        self.shared.get(&frame.pfn()).copied().unwrap_or(1)
    }

    /// Returns `true` when `frame` is mapped by more than one owner.
    pub fn is_shared(&self, frame: FrameId) -> bool {
        self.shared.contains_key(&frame.pfn())
    }

    /// Records one additional mapping of `frame` (fork sharing a frame
    /// between parent and child).
    pub fn share(&mut self, frame: FrameId) {
        *self.shared.entry(frame.pfn()).or_insert(1) += 1;
    }

    /// Drops one mapping of `frame`; returns `true` when the caller held
    /// the last reference and now owns the frame exclusively (and may free
    /// or write it in place).
    pub fn release(&mut self, frame: FrameId) -> bool {
        match self.shared.get_mut(&frame.pfn()) {
            None => true,
            Some(count) if *count <= 2 => {
                self.shared.remove(&frame.pfn());
                false
            }
            Some(count) => {
                *count -= 1;
                false
            }
        }
    }

    /// Number of currently shared frames.
    pub fn shared_frames(&self) -> usize {
        self.shared.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unshared_frames_are_exclusive() {
        let counts = CowRefCounts::new();
        assert_eq!(counts.references(FrameId::new(5)), 1);
        assert!(!counts.is_shared(FrameId::new(5)));
        assert_eq!(counts.shared_frames(), 0);
    }

    #[test]
    fn share_and_release_round_trip() {
        let mut counts = CowRefCounts::new();
        let frame = FrameId::new(9);
        counts.share(frame);
        assert_eq!(counts.references(frame), 2);
        assert!(counts.is_shared(frame));
        // First release: the other owner keeps the frame.
        assert!(!counts.release(frame));
        assert!(!counts.is_shared(frame));
        assert_eq!(counts.references(frame), 1);
        // Now exclusive: releasing reports last-reference.
        assert!(counts.release(frame));
    }

    #[test]
    fn many_owners_count_down_one_at_a_time() {
        let mut counts = CowRefCounts::new();
        let frame = FrameId::new(3);
        counts.share(frame);
        counts.share(frame);
        assert_eq!(counts.references(frame), 3);
        assert!(!counts.release(frame));
        assert_eq!(counts.references(frame), 2);
        assert!(!counts.release(frame));
        assert_eq!(counts.references(frame), 1);
        assert!(counts.release(frame));
    }
}
