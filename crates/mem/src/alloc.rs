//! Per-socket physical frame allocator.
//!
//! The allocator stands in for the Linux buddy allocator.  Each socket has its
//! own pool of frames; requests either name a socket explicitly ("strict"
//! allocation, the mode page-table replication uses) or go through a
//! [`PlacementPolicy`](crate::PlacementPolicy) via
//! [`PolicyEngine`](crate::PolicyEngine).

use crate::error::MemError;
use crate::fragmentation::FragmentationModel;
use crate::frame::{FrameId, FrameSpace, FRAMES_PER_HUGE_PAGE};
use mitosis_numa::{Machine, SocketId};
use std::collections::BTreeSet;

/// Per-socket allocation state.
#[derive(Debug, Clone)]
struct SocketPool {
    /// Next never-allocated frame (bump pointer within the socket's range).
    next: u64,
    /// End of the socket's range (exclusive).
    end: u64,
    /// Frames returned by `free` that can be reused for 4 KiB allocations.
    free_list: Vec<FrameId>,
    /// Number of frames currently allocated.
    allocated: u64,
    /// High-water mark of allocated frames.
    peak_allocated: u64,
}

impl SocketPool {
    fn free_frames(&self) -> u64 {
        (self.end - self.next) + self.free_list.len() as u64
    }
}

/// Allocation statistics for one socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Frames currently allocated on the socket.
    pub allocated_frames: u64,
    /// Peak number of simultaneously allocated frames.
    pub peak_allocated_frames: u64,
    /// Frames still available on the socket.
    pub free_frames: u64,
}

/// Per-socket physical frame allocator with huge-frame support and an
/// external-fragmentation model.
///
/// # Example
///
/// ```
/// use mitosis_numa::{MachineConfig, SocketId};
/// use mitosis_mem::FrameAllocator;
///
/// let machine = MachineConfig::two_socket_small().build();
/// let mut alloc = FrameAllocator::new(&machine);
/// let on_zero = alloc.alloc_on(SocketId::new(0))?;
/// let on_one = alloc.alloc_on(SocketId::new(1))?;
/// assert_ne!(on_zero, on_one);
/// alloc.free(on_zero)?;
/// # Ok::<(), mitosis_mem::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    space: FrameSpace,
    pools: Vec<SocketPool>,
    allocated: BTreeSet<FrameId>,
    fragmentation: FragmentationModel,
}

impl FrameAllocator {
    /// Creates an allocator covering the machine's physical memory.
    pub fn new(machine: &Machine) -> Self {
        FrameAllocator::with_frame_space(FrameSpace::new(machine))
    }

    /// Creates an allocator over an explicit frame space (useful for tests).
    pub fn with_frame_space(space: FrameSpace) -> Self {
        let pools = (0..space.sockets())
            .map(|s| {
                let range = space.range_of(SocketId::new(s as u16));
                SocketPool {
                    next: range.start.pfn(),
                    end: range.end.pfn(),
                    free_list: Vec::new(),
                    allocated: 0,
                    peak_allocated: 0,
                }
            })
            .collect();
        FrameAllocator {
            space,
            pools,
            allocated: BTreeSet::new(),
            fragmentation: FragmentationModel::none(),
        }
    }

    /// Installs an external-fragmentation model (affects huge allocations).
    pub fn set_fragmentation(&mut self, model: FragmentationModel) {
        self.fragmentation = model;
    }

    /// Clones the allocator's per-socket bookkeeping (bump pointers, free
    /// lists, counters, fragmentation model) but **not** the per-frame
    /// `allocated` membership set, which dominates clone cost on populated
    /// systems (one entry per allocated 4 KiB frame).
    ///
    /// The shell still serves fresh allocations correctly — the bump
    /// pointers, free lists and counters ([`Self::total_allocated`],
    /// [`Self::stats`]) are intact — but [`Self::is_allocated`] reports
    /// `false` (and freeing fails) for frames allocated before the clone.
    /// Partial replay snapshots use this when
    /// the shardability analysis proves the run cannot fault: a run that
    /// never allocates or frees never consults the membership set, and any
    /// unexpected fault is caught afterwards by the demand-fault check and
    /// re-run on a full clone.
    pub fn clone_shell(&self) -> FrameAllocator {
        FrameAllocator {
            space: self.space.clone(),
            pools: self.pools.clone(),
            allocated: BTreeSet::new(),
            fragmentation: self.fragmentation.clone(),
        }
    }

    /// The frame space this allocator manages.
    pub fn frame_space(&self) -> &FrameSpace {
        &self.space
    }

    /// Allocates one 4 KiB frame on exactly the given socket.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if the socket has no free frame.
    pub fn alloc_on(&mut self, socket: SocketId) -> Result<FrameId, MemError> {
        let pool = self
            .pools
            .get_mut(socket.index())
            .ok_or(MemError::OutOfMemory { socket })?;
        let frame = if let Some(frame) = pool.free_list.pop() {
            frame
        } else if pool.next < pool.end {
            let frame = FrameId::new(pool.next);
            pool.next += 1;
            frame
        } else {
            return Err(MemError::OutOfMemory { socket });
        };
        pool.allocated += 1;
        pool.peak_allocated = pool.peak_allocated.max(pool.allocated);
        self.allocated.insert(frame);
        Ok(frame)
    }

    /// Allocates one 4 KiB frame on the given socket, falling back to the
    /// other sockets in index order if it is full.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::MachineOutOfMemory`] if every socket is full.
    pub fn alloc_preferring(&mut self, socket: SocketId) -> Result<FrameId, MemError> {
        if let Ok(frame) = self.alloc_on(socket) {
            return Ok(frame);
        }
        for s in 0..self.space.sockets() {
            if s == socket.index() {
                continue;
            }
            if let Ok(frame) = self.alloc_on(SocketId::new(s as u16)) {
                return Ok(frame);
            }
        }
        Err(MemError::MachineOutOfMemory)
    }

    /// Allocates a 2 MiB-aligned run of 512 contiguous frames on the given
    /// socket, returning the first frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::HugeAllocationFailed`] if the socket cannot supply
    /// a contiguous aligned run, either because it is out of memory or
    /// because the fragmentation model rejects the request.
    pub fn alloc_huge_on(&mut self, socket: SocketId) -> Result<FrameId, MemError> {
        if self.fragmentation.huge_allocation_fails() {
            return Err(MemError::HugeAllocationFailed { socket });
        }
        let pool = self
            .pools
            .get_mut(socket.index())
            .ok_or(MemError::HugeAllocationFailed { socket })?;
        // Huge allocations are carved from the never-allocated region only;
        // the free list holds individual 4 KiB frames which we do not try to
        // coalesce (the fragmentation model covers that behaviour).
        let aligned = pool.next.div_ceil(FRAMES_PER_HUGE_PAGE) * FRAMES_PER_HUGE_PAGE;
        if aligned + FRAMES_PER_HUGE_PAGE > pool.end {
            return Err(MemError::HugeAllocationFailed { socket });
        }
        // Frames skipped for alignment go to the free list.
        for pfn in pool.next..aligned {
            pool.free_list.push(FrameId::new(pfn));
        }
        pool.next = aligned + FRAMES_PER_HUGE_PAGE;
        pool.allocated += FRAMES_PER_HUGE_PAGE;
        pool.peak_allocated = pool.peak_allocated.max(pool.allocated);
        let first = FrameId::new(aligned);
        for i in 0..FRAMES_PER_HUGE_PAGE {
            self.allocated.insert(first.offset(i));
        }
        Ok(first)
    }

    /// Frees a previously allocated 4 KiB frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotAllocated`] if the frame is not currently
    /// allocated.
    pub fn free(&mut self, frame: FrameId) -> Result<(), MemError> {
        if !self.allocated.remove(&frame) {
            return Err(MemError::NotAllocated { pfn: frame.pfn() });
        }
        let socket = self.space.socket_of(frame);
        let pool = &mut self.pools[socket.index()];
        pool.free_list.push(frame);
        pool.allocated -= 1;
        Ok(())
    }

    /// Frees a 2 MiB run previously returned by [`Self::alloc_huge_on`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotAllocated`] if any frame of the run is not
    /// currently allocated.
    pub fn free_huge(&mut self, first: FrameId) -> Result<(), MemError> {
        for i in 0..FRAMES_PER_HUGE_PAGE {
            self.free(first.offset(i))?;
        }
        Ok(())
    }

    /// Returns `true` if `frame` is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        self.allocated.contains(&frame)
    }

    /// Number of frames currently allocated across the whole machine.
    pub fn total_allocated(&self) -> u64 {
        self.pools.iter().map(|p| p.allocated).sum()
    }

    /// Allocation statistics for one socket.
    pub fn stats(&self, socket: SocketId) -> AllocStats {
        let pool = &self.pools[socket.index()];
        AllocStats {
            allocated_frames: pool.allocated,
            peak_allocated_frames: pool.peak_allocated,
            free_frames: pool.free_frames(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_allocator() -> FrameAllocator {
        FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(2, 2048))
    }

    #[test]
    fn allocations_land_on_the_requested_socket() {
        let mut alloc = small_allocator();
        for _ in 0..16 {
            let f0 = alloc.alloc_on(SocketId::new(0)).unwrap();
            let f1 = alloc.alloc_on(SocketId::new(1)).unwrap();
            assert_eq!(alloc.frame_space().socket_of(f0), SocketId::new(0));
            assert_eq!(alloc.frame_space().socket_of(f1), SocketId::new(1));
        }
        assert_eq!(alloc.total_allocated(), 32);
    }

    #[test]
    fn strict_allocation_fails_when_socket_is_full() {
        let mut alloc = FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(2, 4));
        for _ in 0..4 {
            alloc.alloc_on(SocketId::new(0)).unwrap();
        }
        assert_eq!(
            alloc.alloc_on(SocketId::new(0)),
            Err(MemError::OutOfMemory {
                socket: SocketId::new(0)
            })
        );
        // Preferring allocation falls over to socket 1.
        let fallback = alloc.alloc_preferring(SocketId::new(0)).unwrap();
        assert_eq!(alloc.frame_space().socket_of(fallback), SocketId::new(1));
    }

    #[test]
    fn freed_frames_are_reused() {
        let mut alloc = small_allocator();
        let f = alloc.alloc_on(SocketId::new(0)).unwrap();
        alloc.free(f).unwrap();
        assert!(!alloc.is_allocated(f));
        let g = alloc.alloc_on(SocketId::new(0)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn double_free_is_an_error() {
        let mut alloc = small_allocator();
        let f = alloc.alloc_on(SocketId::new(0)).unwrap();
        alloc.free(f).unwrap();
        assert_eq!(alloc.free(f), Err(MemError::NotAllocated { pfn: f.pfn() }));
    }

    #[test]
    fn huge_allocations_are_aligned_and_contiguous() {
        let mut alloc = small_allocator();
        // Misalign the bump pointer first.
        let _ = alloc.alloc_on(SocketId::new(0)).unwrap();
        let huge = alloc.alloc_huge_on(SocketId::new(0)).unwrap();
        assert!(huge.is_huge_aligned());
        for i in 0..FRAMES_PER_HUGE_PAGE {
            assert!(alloc.is_allocated(huge.offset(i)));
        }
        alloc.free_huge(huge).unwrap();
        for i in 0..FRAMES_PER_HUGE_PAGE {
            assert!(!alloc.is_allocated(huge.offset(i)));
        }
    }

    #[test]
    fn huge_allocation_fails_under_full_fragmentation() {
        let mut alloc = small_allocator();
        alloc.set_fragmentation(FragmentationModel::with_probability(1.0));
        assert_eq!(
            alloc.alloc_huge_on(SocketId::new(0)),
            Err(MemError::HugeAllocationFailed {
                socket: SocketId::new(0)
            })
        );
        // Base-page allocation still succeeds.
        assert!(alloc.alloc_on(SocketId::new(0)).is_ok());
    }

    #[test]
    fn huge_allocation_fails_when_not_enough_contiguous_memory() {
        let mut alloc =
            FrameAllocator::with_frame_space(FrameSpace::with_frames_per_socket(1, 100));
        assert!(alloc.alloc_huge_on(SocketId::new(0)).is_err());
    }

    #[test]
    fn stats_track_allocated_peak_and_free() {
        let mut alloc = small_allocator();
        let f = alloc.alloc_on(SocketId::new(0)).unwrap();
        let g = alloc.alloc_on(SocketId::new(0)).unwrap();
        alloc.free(f).unwrap();
        let stats = alloc.stats(SocketId::new(0));
        assert_eq!(stats.allocated_frames, 1);
        assert_eq!(stats.peak_allocated_frames, 2);
        assert_eq!(stats.free_frames, 2048 - 1);
        let _ = g;
    }
}
