//! Throughput of live generation vs. trace replay vs. parallel replay.
//!
//! Live generation pays the access-pattern RNG on every access; replay
//! reads a pre-captured lane; a [`ReplaySession`] owns the persistent
//! worker pool and the snapshot cache that grouped replay rides.  This
//! bench quantifies all of it so regressions in the trace hot path
//! (varint decode, cursor dispatch), the session's cache, and the pool
//! are visible.
//!
//! Cold vs. warm matters here: a *cold* measurement constructs a fresh
//! `ReplaySession` inside the timed closure (every call pays setup-event
//! reconstruction and, for grouped requests, worker spawn), while a
//! *warm* measurement reuses one session created outside the timing loop
//! (the snapshot cache and the pool threads persist across calls — the
//! intended steady-state usage).  `lane_groups/serial` stays cold and
//! `lane_groups/grouped` runs warm: the flipped comparison the regression
//! gate enforces prices exactly the work the session removes.

use criterion::{criterion_group, criterion_main, Criterion};
use mitosis_numa::SocketId;
use mitosis_pt::VirtAddr;
use mitosis_sim::{ExecutionEngine, PhaseChange, PhaseSchedule, SimParams};
use mitosis_trace::{
    capture_engine_run, capture_engine_run_dynamic, ReplayRequest, ReplaySession, SnapshotMode,
    Trace,
};
use mitosis_vmm::{MmapFlags, System};
use mitosis_workloads::suite;
use std::time::Duration;

const ACCESSES: u64 = 20_000;

fn params() -> SimParams {
    SimParams::quick_test().with_accesses(ACCESSES)
}

/// A cold serial replay: fresh session, setup re-executed — the cost the
/// legacy `replay_trace` entry point paid on every call.
fn cold_serial(trace: &Trace, params: &SimParams) -> mitosis_trace::ReplayOutcome {
    ReplaySession::new(params)
        .replay(trace, &ReplayRequest::new())
        .expect("serial replay")
        .outcome
}

fn bench_single(c: &mut Criterion) {
    let params = params();
    let spec = suite::gups();
    let scaled = params.scale_workload(&spec);
    let captured = capture_engine_run(&spec, &params, &[SocketId::new(0)]).expect("capture gups");
    let trace = captured.trace;

    let mut group = c.benchmark_group("trace_replay/single");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("live_generation", |b| {
        b.iter(|| {
            let mut system = System::new(params.machine());
            let pid = system.create_process(SocketId::new(0)).expect("process");
            let region = system
                .mmap(pid, scaled.footprint(), MmapFlags::lazy().without_thp())
                .expect("mmap");
            ExecutionEngine::populate(
                &mut system,
                pid,
                region,
                scaled.footprint(),
                scaled.init(),
                &[SocketId::new(0)],
            )
            .expect("populate");
            let mut engine = ExecutionEngine::new(&system);
            let threads = ExecutionEngine::one_thread_per_socket(&system, &[SocketId::new(0)]);
            engine
                .run(&mut system, pid, &scaled, region, &threads, &params)
                .expect("run")
        });
    });

    group.bench_function("trace_replay", |b| {
        b.iter(|| cold_serial(&trace, &params));
    });

    group.bench_function("decode_from_bytes", |b| {
        let bytes = trace.to_bytes().expect("encode");
        b.iter(|| Trace::from_bytes(&bytes).expect("decode"));
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let params = params();
    let traces: Vec<Trace> = [
        suite::gups(),
        suite::btree(),
        suite::memcached(),
        suite::redis(),
    ]
    .iter()
    .map(|spec| {
        capture_engine_run(spec, &params, &[SocketId::new(0)])
            .expect("capture")
            .trace
    })
    .collect();

    let mut group = c.benchmark_group("trace_replay/batch4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    // One warm session for the whole batch family: batch replays never hit
    // the snapshot cache (each trace differs), but they do reuse the pool.
    let mut session = ReplaySession::new(&params);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            session
                .replay_batch(&traces, &ReplayRequest::new())
                .expect("sequential")
        });
    });

    // Fixed worker count: a host-core-derived count would change the bench
    // id between runners (unbaselinable) and silently degrade to fewer
    // workers on small hosts.
    let grouped = ReplayRequest::new().grouped(4);
    group.bench_function("parallel", |b| {
        b.iter(|| session.replay_batch(&traces, &grouped).expect("parallel"));
    });
    group.finish();
}

/// Lane-granular sharding of a single 4-lane trace: the remaining lever
/// for single-trace replay latency on many-core hosts.  `serial` is cold
/// (the legacy per-call cost); `lane_parallel` is the steady-state warm
/// session the new API recommends.
fn bench_lane_parallel(c: &mut Criterion) {
    let params = params();
    let sockets: Vec<SocketId> = (0..4).map(SocketId::new).collect();
    let trace = capture_engine_run(&suite::memcached(), &params, &sockets)
        .expect("capture 4-lane memcached")
        .trace;

    let mut group = c.benchmark_group("trace_replay/lane4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("serial", |b| {
        b.iter(|| cold_serial(&trace, &params));
    });

    // Fixed worker count, as in bench_lane_groups: keeps the bench id and
    // the shard decision host-independent.
    let request = ReplayRequest::new().grouped(4);
    let mut session = ReplaySession::new(&params);
    session.replay(&trace, &request).expect("warm the session");
    group.bench_function("lane_parallel", |b| {
        b.iter(|| {
            let report = session
                .replay(&trace, &request)
                .expect("lane-parallel replay");
            assert!(report.sharded(), "4 distinct-socket premapped lanes shard");
            report
        });
    });
    group.finish();
}

/// Per-socket lane groups on a multi-thread-per-socket capture (8 lanes,
/// 2 per socket): the shape the old per-lane driver always replayed
/// serially.  Cold serial whole-trace replay vs. warm grouped session —
/// the comparison the regression gate keeps flipped (grouped < serial).
///
/// The measured phase is kept shorter than the setup (full-footprint
/// populate across four sockets): that is the regime the session's
/// amortisation targets — on a single-core runner the grouped win comes
/// entirely from the removed prepare and the scoped clones, while the
/// measured replay work itself cannot shrink below serial.
fn bench_lane_groups(c: &mut Criterion) {
    let params = SimParams::quick_test()
        .with_accesses(ACCESSES / 4)
        .with_threads_per_socket(2);
    let captured = mitosis_trace::capture_multisocket_scenario(
        &suite::memcached(),
        mitosis_sim::MultiSocketConfig::first_touch(),
        &params,
    )
    .expect("capture 8-lane multisocket memcached");
    let trace = captured.trace;
    assert_eq!(trace.lanes.len(), 8, "two lanes per socket");

    let mut group = c.benchmark_group("trace_replay/lane_groups");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("serial", |b| {
        b.iter(|| cold_serial(&trace, &params));
    });

    // Fixed worker count: the shard decision (and the bench name the
    // regression gate keys on) must not depend on the host's core count.
    let request = ReplayRequest::new().grouped(4);
    let mut session = ReplaySession::new(&params);
    session.replay(&trace, &request).expect("warm the session");
    group.bench_function("grouped", |b| {
        b.iter(|| {
            let report = session.replay(&trace, &request).expect("lane-group replay");
            assert!(report.sharded(), "8-lane premapped capture must shard");
            report
        });
    });
    group.finish();
}

/// Snapshot-based lane-group replay: proves grouped replay no longer pays
/// the setup reconstruction once **per worker group**.
///
/// The trace is deliberately setup-heavy (full-footprint populate, a short
/// measured phase), so per-group re-setup would dominate grouped wall
/// time.  `prepare_once` prices the one setup execution; `clone` prices
/// the per-group snapshot copy that replaced it; `grouped` is the full
/// cold driver (one prepare + one clone per group per call).  With the old
/// re-setup-per-worker driver, `grouped` carried ~`groups ×
/// prepare_once`; now it carries `prepare_once + groups × clone`, and
/// `clone` is the number that stays flat as setup size grows.
fn bench_lane_groups_snapshot(c: &mut Criterion) {
    // Short measured phase over the standard footprint: setup-dominated.
    let params = SimParams::quick_test()
        .with_accesses(2_000)
        .with_threads_per_socket(2);
    let captured = mitosis_trace::capture_multisocket_scenario(
        &suite::memcached(),
        mitosis_sim::MultiSocketConfig::first_touch(),
        &params,
    )
    .expect("capture 8-lane multisocket memcached");
    let trace = captured.trace;
    assert_eq!(trace.lanes.len(), 8, "two lanes per socket");

    let mut group = c.benchmark_group("trace_replay/lane_groups_snapshot");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("prepare_once", |b| {
        b.iter(|| {
            mitosis_trace::prepare_replay(&trace, &params, mitosis_trace::ReplayOptions::default())
                .expect("prepare")
        });
    });

    let snapshot =
        mitosis_trace::prepare_replay(&trace, &params, mitosis_trace::ReplayOptions::default())
            .expect("prepare");
    group.bench_function("clone", |b| {
        b.iter(|| snapshot.clone());
    });

    // Cold on purpose (fresh session per call): this family prices the
    // one-prepare-plus-clone-per-group shape, not the warm cache.
    let request = ReplayRequest::new().grouped(4);
    group.bench_function("grouped", |b| {
        b.iter(|| {
            let report = ReplaySession::new(&params)
                .replay(&trace, &request)
                .expect("lane-group replay");
            assert!(report.sharded(), "8-lane premapped capture must shard");
            report
        });
    });
    group.finish();
}

/// The session's two levers in isolation: pool warm-up and snapshot
/// scope.  `cold_session` pays prepare + worker spawn on every call;
/// `warm_full` reuses the session (cached snapshot, live pool threads)
/// but deep-copies the whole prepared system per group; `warm_partial`
/// additionally slices each clone to the frame/VA scope its lane group
/// can touch.
fn bench_pool(c: &mut Criterion) {
    let params = params().with_threads_per_socket(2);
    let captured = mitosis_trace::capture_multisocket_scenario(
        &suite::memcached(),
        mitosis_sim::MultiSocketConfig::first_touch(),
        &params,
    )
    .expect("capture 8-lane multisocket memcached");
    let trace = captured.trace;
    assert_eq!(trace.lanes.len(), 8, "two lanes per socket");

    let mut group = c.benchmark_group("trace_replay/pool");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("cold_session", |b| {
        b.iter(|| {
            ReplaySession::new(&params)
                .replay(&trace, &ReplayRequest::new().grouped(4))
                .expect("cold grouped replay")
        });
    });

    let full = ReplayRequest::new()
        .grouped(4)
        .snapshots(SnapshotMode::Full);
    let mut full_session = ReplaySession::new(&params);
    full_session
        .replay(&trace, &full)
        .expect("warm the session");
    let spawned = full_session.threads_spawned();
    group.bench_function("warm_full", |b| {
        b.iter(|| full_session.replay(&trace, &full).expect("warm full-clone"));
    });
    assert_eq!(
        full_session.threads_spawned(),
        spawned,
        "a warm session must never respawn workers"
    );

    let partial = ReplayRequest::new()
        .grouped(4)
        .snapshots(SnapshotMode::Partial);
    let mut partial_session = ReplaySession::new(&params);
    partial_session
        .replay(&trace, &partial)
        .expect("warm the session");
    group.bench_function("warm_partial", |b| {
        b.iter(|| {
            partial_session
                .replay(&trace, &partial)
                .expect("warm partial-clone")
        });
    });
    group.finish();
}

/// Fork/CoW fault storms and mmap churn through the replay path, plus the
/// modelled-shootdown-work comparison the regression gate keys on.
///
/// Churn traces (v6) carry mapping-mutation markers, which defeat the
/// premapped-coverage proof, so grouped requests fall back to the serial
/// path — cold serial replay *is* the representative cost here, and the
/// two timing benches price it for the two new scenario shapes.
///
/// The non-timing metrics report `ShootdownStats::entries_invalidated`
/// from live churn runs in each [`ShootdownMode`]: the consistency
/// layer's raison d'être is that ranged ASID-tagged plans invalidate
/// strictly fewer TLB entries than broadcast full flushes on a
/// churn-heavy run, and `scripts/bench_gate` enforces that relation on
/// every CI run (the counters are deterministic, so they baseline like
/// timings with a tight tolerance).
fn bench_churn(c: &mut Criterion) {
    // Region churn addresses mirror tests/churn_scenarios.rs: the first
    // mmap of a capture lands at MMAP_BASE, and the scaled footprint is
    // at least 64 MiB, so these offsets are always in-region.
    const REGION_BASE: u64 = 0x2000_0000_0000;
    const CHURN_BASE: u64 = 0x7000_0000_0000;
    let params = SimParams::quick_test().with_accesses(4_000);
    let sockets: Vec<SocketId> = (0..2).map(SocketId::new).collect();

    let fork_schedule = PhaseSchedule::new()
        .at(1_000, PhaseChange::Fork)
        .at(2_000, PhaseChange::Fork);
    let churn_schedule = PhaseSchedule::new()
        .at(
            500,
            PhaseChange::MmapAt {
                addr: VirtAddr::new(CHURN_BASE),
                length: 64 << 12,
            },
        )
        .at(
            1_200,
            PhaseChange::MunmapAt {
                addr: VirtAddr::new(CHURN_BASE + (16 << 12)),
                length: 32 << 12,
            },
        )
        .at(
            1_800,
            PhaseChange::MunmapAt {
                addr: VirtAddr::new(REGION_BASE),
                length: 4 << 20,
            },
        )
        .at(
            1_800,
            // Lazily re-mapped at the same boundary: later accesses
            // demand-fault instead of segfaulting into the hole.
            PhaseChange::MmapAt {
                addr: VirtAddr::new(REGION_BASE),
                length: 4 << 20,
            },
        )
        .at(
            2_400,
            PhaseChange::PromoteHuge {
                addr: VirtAddr::new(REGION_BASE + (8 << 20)),
            },
        )
        .at(
            3_200,
            PhaseChange::DemoteHuge {
                addr: VirtAddr::new(REGION_BASE + (8 << 20)),
            },
        );

    let cow_trace = capture_engine_run_dynamic(&suite::gups(), &params, &sockets, &fork_schedule)
        .expect("capture fork/CoW storm")
        .trace;
    let churn_trace =
        capture_engine_run_dynamic(&suite::gups(), &params, &sockets, &churn_schedule)
            .expect("capture mmap churn")
            .trace;

    let mut group = c.benchmark_group("trace_replay/churn");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("cow_storm_replay", |b| {
        b.iter(|| cold_serial(&cow_trace, &params));
    });
    group.bench_function("mmap_churn_replay", |b| {
        b.iter(|| cold_serial(&churn_trace, &params));
    });
    group.finish();

    // Modelled shootdown work of the live churn run, per mode.  Driven
    // through the engine directly (capture does not expose the engine's
    // counters); deterministic for fixed params.
    let shootdown_entries = |params: &SimParams| -> u64 {
        let mut mitosis = mitosis::Mitosis::new();
        let mut system = mitosis.install(params.machine());
        system.set_shootdown_mode(params.shootdown_mode);
        let pid = system.create_process(sockets[0]).expect("process");
        let spec = params.scale_workload(&suite::gups());
        let region = system
            .mmap(pid, spec.footprint(), MmapFlags::populate())
            .expect("mmap");
        let threads = ExecutionEngine::one_thread_per_socket(&system, &sockets);
        let mut engine = ExecutionEngine::new(&system);
        engine
            .run_dynamic(
                &mut system,
                &mut mitosis,
                pid,
                &spec,
                region,
                &threads,
                params,
                &churn_schedule,
            )
            .expect("churn run");
        engine.last_shootdowns().entries_invalidated
    };
    criterion::report_metric(
        "trace_replay/churn/shootdown_entries_broadcast",
        shootdown_entries(&params) as f64,
    );
    criterion::report_metric(
        "trace_replay/churn/shootdown_entries_ranged",
        shootdown_entries(&params.clone().with_ranged_shootdowns()) as f64,
    );
}

/// Plain translation-throughput figures — accesses/second for live
/// generation vs. trace replay — for the README "Performance" table.
fn report_throughput(_c: &mut Criterion) {
    let params = params();
    let spec = suite::gups();
    let scaled = params.scale_workload(&spec);
    let captured = capture_engine_run(&spec, &params, &[SocketId::new(0)]).expect("capture gups");

    let run_live = || {
        let mut system = System::new(params.machine());
        let pid = system.create_process(SocketId::new(0)).expect("process");
        let region = system
            .mmap(pid, scaled.footprint(), MmapFlags::lazy().without_thp())
            .expect("mmap");
        ExecutionEngine::populate(
            &mut system,
            pid,
            region,
            scaled.footprint(),
            scaled.init(),
            &[SocketId::new(0)],
        )
        .expect("populate");
        let mut engine = ExecutionEngine::new(&system);
        let threads = ExecutionEngine::one_thread_per_socket(&system, &[SocketId::new(0)]);
        engine
            .run(&mut system, pid, &scaled, region, &threads, &params)
            .expect("run")
    };

    // One round suffices for the CI smoke step; five for quotable numbers.
    let quick = std::env::var("MITOSIS_BENCH_QUICK").is_ok_and(|v| !v.is_empty());
    let rounds: u32 = if quick { 1 } else { 5 };
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        criterion::black_box(run_live());
    }
    let live = (rounds as u64 * ACCESSES) as f64 / start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    for _ in 0..rounds {
        criterion::black_box(cold_serial(&captured.trace, &params));
    }
    let replay = (rounds as u64 * ACCESSES) as f64 / start.elapsed().as_secs_f64();

    println!(
        "trace_replay/throughput    live: {:.2} M accesses/s    replay: {:.2} M accesses/s",
        live / 1e6,
        replay / 1e6
    );
}

criterion_group!(
    trace_replay,
    bench_single,
    bench_batch,
    bench_lane_parallel,
    bench_lane_groups,
    bench_lane_groups_snapshot,
    bench_pool,
    bench_churn,
    report_throughput
);
criterion_main!(trace_replay);
