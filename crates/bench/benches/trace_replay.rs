//! Throughput of live generation vs. trace replay vs. parallel replay.
//!
//! Live generation pays the access-pattern RNG on every access; replay
//! reads a pre-captured lane; the parallel driver shards a batch of traces
//! across worker threads.  This bench quantifies all three so regressions
//! in the trace hot path (varint decode, cursor dispatch) and the scaling
//! of the parallel driver are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use mitosis_numa::SocketId;
use mitosis_sim::{ExecutionEngine, SimParams};
use mitosis_trace::{
    capture_engine_run, replay_parallel, replay_parallel_lanes, replay_sequential, replay_trace,
    Trace,
};
use mitosis_vmm::{MmapFlags, System};
use mitosis_workloads::suite;
use std::time::Duration;

const ACCESSES: u64 = 20_000;

fn params() -> SimParams {
    SimParams::quick_test().with_accesses(ACCESSES)
}

fn bench_single(c: &mut Criterion) {
    let params = params();
    let spec = suite::gups();
    let scaled = params.scale_workload(&spec);
    let captured = capture_engine_run(&spec, &params, &[SocketId::new(0)]).expect("capture gups");
    let trace = captured.trace;

    let mut group = c.benchmark_group("trace_replay/single");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("live_generation", |b| {
        b.iter(|| {
            let mut system = System::new(params.machine());
            let pid = system.create_process(SocketId::new(0)).expect("process");
            let region = system
                .mmap(pid, scaled.footprint(), MmapFlags::lazy().without_thp())
                .expect("mmap");
            ExecutionEngine::populate(
                &mut system,
                pid,
                region,
                scaled.footprint(),
                scaled.init(),
                &[SocketId::new(0)],
            )
            .expect("populate");
            let mut engine = ExecutionEngine::new(&system);
            let threads = ExecutionEngine::one_thread_per_socket(&system, &[SocketId::new(0)]);
            engine
                .run(&mut system, pid, &scaled, region, &threads, &params)
                .expect("run")
        });
    });

    group.bench_function("trace_replay", |b| {
        b.iter(|| replay_trace(&trace, &params).expect("replay"));
    });

    group.bench_function("decode_from_bytes", |b| {
        let bytes = trace.to_bytes().expect("encode");
        b.iter(|| Trace::from_bytes(&bytes).expect("decode"));
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let params = params();
    let traces: Vec<Trace> = [
        suite::gups(),
        suite::btree(),
        suite::memcached(),
        suite::redis(),
    ]
    .iter()
    .map(|spec| {
        capture_engine_run(spec, &params, &[SocketId::new(0)])
            .expect("capture")
            .trace
    })
    .collect();

    let mut group = c.benchmark_group("trace_replay/batch4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("sequential", |b| {
        b.iter(|| replay_sequential(&traces, &params).expect("sequential"));
    });

    // Fixed worker count: a host-core-derived count would change the bench
    // id between runners (unbaselinable) and silently degrade to fewer
    // workers on small hosts.
    group.bench_function("parallel", |b| {
        b.iter(|| replay_parallel(&traces, &params, 4).expect("parallel"));
    });
    group.finish();
}

/// Lane-granular sharding of a single 4-lane trace: the remaining lever
/// for single-trace replay latency on many-core hosts.
fn bench_lane_parallel(c: &mut Criterion) {
    let params = params();
    let sockets: Vec<SocketId> = (0..4).map(SocketId::new).collect();
    let trace = capture_engine_run(&suite::memcached(), &params, &sockets)
        .expect("capture 4-lane memcached")
        .trace;

    let mut group = c.benchmark_group("trace_replay/lane4");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("serial", |b| {
        b.iter(|| replay_trace(&trace, &params).expect("serial replay"));
    });

    // Fixed worker count, as in bench_lane_groups: keeps the bench id and
    // the shard decision host-independent.
    group.bench_function("lane_parallel", |b| {
        b.iter(|| {
            let report = replay_parallel_lanes(&trace, &params, 4).expect("lane-parallel replay");
            assert!(report.sharded(), "4 distinct-socket premapped lanes shard");
            report
        });
    });
    group.finish();
}

/// Per-socket lane groups on a multi-thread-per-socket capture (8 lanes,
/// 2 per socket): the shape the old per-lane driver always replayed
/// serially.  Serial whole-trace replay vs. grouped parallel replay.
fn bench_lane_groups(c: &mut Criterion) {
    let params = params().with_threads_per_socket(2);
    let captured = mitosis_trace::capture_multisocket_scenario(
        &suite::memcached(),
        mitosis_sim::MultiSocketConfig::first_touch(),
        &params,
    )
    .expect("capture 8-lane multisocket memcached");
    let trace = captured.trace;
    assert_eq!(trace.lanes.len(), 8, "two lanes per socket");

    let mut group = c.benchmark_group("trace_replay/lane_groups");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("serial", |b| {
        b.iter(|| replay_trace(&trace, &params).expect("serial replay"));
    });

    // Fixed worker count: the shard decision (and the bench name the
    // regression gate keys on) must not depend on the host's core count.
    group.bench_function("grouped", |b| {
        b.iter(|| {
            let report = replay_parallel_lanes(&trace, &params, 4).expect("lane-group replay");
            assert!(report.sharded(), "8-lane premapped capture must shard");
            report
        });
    });
    group.finish();
}

/// Snapshot-based lane-group replay: proves grouped replay no longer pays
/// the setup reconstruction once **per worker group**.
///
/// The trace is deliberately setup-heavy (full-footprint populate, a short
/// measured phase), so per-group re-setup would dominate grouped wall
/// time.  `prepare_once` prices the one setup execution; `clone` prices
/// the per-group snapshot copy that replaced it; `grouped` is the full
/// driver (one prepare + one clone per group).  With the old
/// re-setup-per-worker driver, `grouped` carried ~`groups ×
/// prepare_once`; now it carries `prepare_once + groups × clone`, and
/// `clone` is the number that stays flat as setup size grows.
fn bench_lane_groups_snapshot(c: &mut Criterion) {
    // Short measured phase over the standard footprint: setup-dominated.
    let params = SimParams::quick_test()
        .with_accesses(2_000)
        .with_threads_per_socket(2);
    let captured = mitosis_trace::capture_multisocket_scenario(
        &suite::memcached(),
        mitosis_sim::MultiSocketConfig::first_touch(),
        &params,
    )
    .expect("capture 8-lane multisocket memcached");
    let trace = captured.trace;
    assert_eq!(trace.lanes.len(), 8, "two lanes per socket");

    let mut group = c.benchmark_group("trace_replay/lane_groups_snapshot");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    group.bench_function("prepare_once", |b| {
        b.iter(|| {
            mitosis_trace::prepare_replay(&trace, &params, mitosis_trace::ReplayOptions::default())
                .expect("prepare")
        });
    });

    let snapshot =
        mitosis_trace::prepare_replay(&trace, &params, mitosis_trace::ReplayOptions::default())
            .expect("prepare");
    group.bench_function("clone", |b| {
        b.iter(|| snapshot.clone());
    });

    // Fixed worker count, as in bench_lane_groups: host-independent id.
    group.bench_function("grouped", |b| {
        b.iter(|| {
            let report = replay_parallel_lanes(&trace, &params, 4).expect("lane-group replay");
            assert!(report.sharded(), "8-lane premapped capture must shard");
            report
        });
    });
    group.finish();
}

/// Plain translation-throughput figures — accesses/second for live
/// generation vs. trace replay — for the README "Performance" table.
fn report_throughput(_c: &mut Criterion) {
    let params = params();
    let spec = suite::gups();
    let scaled = params.scale_workload(&spec);
    let captured = capture_engine_run(&spec, &params, &[SocketId::new(0)]).expect("capture gups");

    let run_live = || {
        let mut system = System::new(params.machine());
        let pid = system.create_process(SocketId::new(0)).expect("process");
        let region = system
            .mmap(pid, scaled.footprint(), MmapFlags::lazy().without_thp())
            .expect("mmap");
        ExecutionEngine::populate(
            &mut system,
            pid,
            region,
            scaled.footprint(),
            scaled.init(),
            &[SocketId::new(0)],
        )
        .expect("populate");
        let mut engine = ExecutionEngine::new(&system);
        let threads = ExecutionEngine::one_thread_per_socket(&system, &[SocketId::new(0)]);
        engine
            .run(&mut system, pid, &scaled, region, &threads, &params)
            .expect("run")
    };

    // One round suffices for the CI smoke step; five for quotable numbers.
    let quick = std::env::var("MITOSIS_BENCH_QUICK").is_ok_and(|v| !v.is_empty());
    let rounds: u32 = if quick { 1 } else { 5 };
    let start = std::time::Instant::now();
    for _ in 0..rounds {
        criterion::black_box(run_live());
    }
    let live = (rounds as u64 * ACCESSES) as f64 / start.elapsed().as_secs_f64();

    let start = std::time::Instant::now();
    for _ in 0..rounds {
        criterion::black_box(replay_trace(&captured.trace, &params).expect("replay"));
    }
    let replay = (rounds as u64 * ACCESSES) as f64 / start.elapsed().as_secs_f64();

    println!(
        "trace_replay/throughput    live: {:.2} M accesses/s    replay: {:.2} M accesses/s",
        live / 1e6,
        replay / 1e6
    );
}

criterion_group!(
    trace_replay,
    bench_single,
    bench_batch,
    bench_lane_parallel,
    bench_lane_groups,
    bench_lane_groups_snapshot,
    report_throughput
);
criterion_main!(trace_replay);
