//! Figure 3: processed page-table dump for a multi-socket workload
//! (Memcached, 4 KiB pages, first-touch allocation, AutoNUMA disabled).
//!
//! For every page-table level and socket the dump reports the number of
//! page-table pages, the distribution of their valid entries across target
//! sockets, and the fraction of entries pointing to remote memory.

use mitosis_bench::{harness_params, print_header};
use mitosis_sim::ExecutionEngine;
use mitosis_sim::{MultiSocketConfig, SimParams};
use mitosis_vmm::{MmapFlags, System};
use mitosis_workloads::suite;

fn main() {
    let params: SimParams = harness_params();
    print_header(
        "Figure 3",
        "per-level page-table placement dump for Memcached (first-touch, 4 KiB)",
    );

    let config = MultiSocketConfig::first_touch();
    let spec = params.scale_workload(&suite::memcached());
    let machine = params.machine();
    let sockets: Vec<_> = machine.socket_ids().collect();
    let mut system = System::new(machine);
    let pid = system.create_process(sockets[0]).expect("process creation");
    let region = system
        .mmap(pid, spec.footprint(), MmapFlags::lazy())
        .expect("mmap");
    ExecutionEngine::populate(
        &mut system,
        pid,
        region,
        spec.footprint(),
        spec.init(),
        &sockets,
    )
    .expect("populate");

    let dump = system.page_table_dump(pid).expect("page-table dump");
    println!(
        "\nconfiguration: {} ({} GiB scaled footprint)",
        config,
        spec.footprint() >> 30
    );
    println!("{}", dump.to_paper_format());
    println!(
        "total page-table pages: {} ({} KiB); leaf PTEs per socket: {:?}",
        dump.total_pages(),
        dump.total_bytes() / 1024,
        dump.leaf_ptes_per_socket(),
    );
    println!("\npaper reference: L1 pages spread ~evenly, 67-75% of pointers remote");
}
