//! Figure 9: multi-socket scenario with and without Mitosis.
//!
//! Six workloads x six configurations (`F, F+M, F-A, F-A+M, I, I+M`), for
//! 4 KiB pages (Figure 9a) and 2 MiB transparent huge pages (Figure 9b).
//! Runtimes are normalized to the 4 KiB first-touch (`F`) configuration of
//! each workload, as in the paper.

use mitosis_bench::{harness_params, print_header, print_normalized, print_speedup};
use mitosis_sim::{
    format_normalized_table, MultiSocketConfig, MultiSocketScenario, ScenarioResult,
};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params();
    print_header(
        "Figure 9 (and Table 3)",
        "multi-socket scenario: F/F+M/F-A/F-A+M/I/I+M, 4 KiB (9a) and 2 MiB (9b)",
    );

    for spec in suite::multi_socket_suite() {
        let mut results: Vec<ScenarioResult> = Vec::new();
        for thp in [false, true] {
            for config in MultiSocketConfig::figure9(thp) {
                let result = MultiSocketScenario::run(&spec, config, &params)
                    .unwrap_or_else(|err| panic!("{} {config} failed: {err}", spec.name()));
                results.push(result);
            }
        }
        // Normalise everything (including THP rows) to the 4 KiB `F` bar.
        let baseline_label = format!("{} F", spec.name());
        let rows = format_normalized_table(&results, &baseline_label);
        print_normalized(spec.name(), &rows);
        // Speedups within each box (non-Mitosis vs Mitosis pairs).
        for pair in results.chunks(2) {
            if let [base, mitosis] = pair {
                print_speedup(
                    &mitosis.label,
                    base.metrics.total_cycles,
                    mitosis.metrics.total_cycles,
                );
            }
        }
    }
    println!(
        "\npaper reference: Mitosis improves 4 KiB runs by 1.02x-1.34x (best: Canneal) and \
         2 MiB runs by up to 1.14x, and never slows a workload down"
    );
}
