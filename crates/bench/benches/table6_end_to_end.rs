//! Table 6: end-to-end overhead of running with the Mitosis kernel when
//! replication brings no benefit (single-socket LP-LD runs of GUPS and
//! Redis, including the allocation/initialisation phase).
//!
//! In the paper the overhead is below 0.5%.  In the simulator the equivalent
//! question is whether the Mitosis PV-Ops backend (with replication off)
//! produces the same cycle counts as the native backend.

use mitosis_bench::{harness_params, print_header};
use mitosis_sim::{MigrationConfig, MigrationRun, WorkloadMigrationScenario};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params();
    print_header(
        "Table 6",
        "end-to-end overhead with Mitosis compiled in but idle (LP-LD)",
    );
    println!(
        "\n{:<12} {:>20} {:>20} {:>10}",
        "workload", "native cycles", "mitosis-idle cycles", "overhead"
    );

    for spec in [suite::gups(), suite::redis()] {
        // Native kernel.
        let native = WorkloadMigrationScenario::run(
            &spec,
            MigrationRun::new(MigrationConfig::LpLd),
            &params,
        )
        .expect("native run");
        // Mitosis kernel with replication never requested: the scenario
        // installs the Mitosis backend for "+M" runs, so emulate an idle
        // Mitosis kernel by requesting migration to the socket the process
        // already lives on (a no-op repair).
        let idle = WorkloadMigrationScenario::run(
            &spec,
            MigrationRun::new(MigrationConfig::LpLd).with_mitosis(),
            &params,
        )
        .expect("mitosis-idle run");
        let overhead = idle.metrics.total_cycles as f64 / native.metrics.total_cycles as f64 - 1.0;
        println!(
            "{:<12} {:>20} {:>20} {:>9.2}%",
            spec.name(),
            native.metrics.total_cycles,
            idle.metrics.total_cycles,
            overhead * 100.0
        );
    }
    println!("\npaper reference: 0.46% (GUPS) and 0.37% (Redis) end-to-end overhead");
}
