//! Figure 10: workload-migration scenario with Mitosis page-table migration.
//!
//! Eight workloads x three bars (`LP-LD`, `RPI-LD`, `RPI-LD+M`), for 4 KiB
//! pages (10a) and 2 MiB transparent huge pages (10b); everything normalized
//! to the 4 KiB `LP-LD` bar of each workload.

use mitosis_bench::{harness_params, print_header, print_normalized, print_speedup};
use mitosis_sim::{
    format_normalized_table, MigrationRun, ScenarioResult, WorkloadMigrationScenario,
};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params();
    print_header(
        "Figure 10",
        "workload migration: LP-LD / RPI-LD / RPI-LD+M, 4 KiB (10a) and 2 MiB (10b)",
    );

    for spec in suite::migration_suite() {
        let mut results: Vec<ScenarioResult> = Vec::new();
        for thp in [false, true] {
            for run in MigrationRun::figure10(thp) {
                let result = WorkloadMigrationScenario::run(&spec, run, &params)
                    .unwrap_or_else(|err| panic!("{} {run} failed: {err}", spec.name()));
                results.push(result);
            }
        }
        let baseline_label = format!("{} LP-LD", spec.name());
        let rows = format_normalized_table(&results, &baseline_label);
        print_normalized(spec.name(), &rows);
        // Speedup of the +M bar over the RPI-LD bar within each page size.
        for chunk in results.chunks(3) {
            if let [_, broken, repaired] = chunk {
                print_speedup(
                    &repaired.label,
                    broken.metrics.total_cycles,
                    repaired.metrics.total_cycles,
                );
            }
        }
    }
    println!(
        "\npaper reference: remote page tables cost 1.4x-3.2x with 4 KiB pages (GUPS worst) and \
         up to 2.3x with 2 MiB pages; Mitosis restores baseline performance in every case"
    );
}
