//! Figure 4: percentage of remote leaf PTEs as observed from each socket for
//! the six multi-socket workloads (first-touch, 4 KiB pages).

use mitosis_bench::{harness_params, print_header, print_remote_leaf_fractions};
use mitosis_sim::{MultiSocketConfig, MultiSocketScenario};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params();
    print_header(
        "Figure 4",
        "% remote leaf PTEs per observing socket, multi-socket workloads",
    );
    println!();

    for spec in suite::multi_socket_suite() {
        let result = MultiSocketScenario::run(&spec, MultiSocketConfig::first_touch(), &params)
            .unwrap_or_else(|err| panic!("{} failed: {err}", spec.name()));
        print_remote_leaf_fractions(&result);
    }
    println!(
        "\npaper reference: most sockets observe 60-99% remote leaf PTEs; \
         single-thread-initialised workloads (Graph500) are skewed towards one socket"
    );
}
