//! Figure 6: normalized runtime of the eight workload-migration workloads
//! under all seven placement configurations of Table 2 (4 KiB pages).
//!
//! The baseline is `LP-LD` (page tables and data local, idle system); the
//! other configurations place page tables and/or data remotely, optionally
//! with an interfering memory hog on the remote socket.

use mitosis_bench::{harness_params, print_header, print_normalized};
use mitosis_sim::{
    format_normalized_table, MigrationConfig, MigrationRun, WorkloadMigrationScenario,
};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params();
    print_header(
        "Figure 6 (and Table 2)",
        "workload-migration placement study, 4 KiB pages, normalized to LP-LD",
    );
    println!(
        "\nTable 2 configurations: {:?}",
        MigrationConfig::all().map(|c| c.label())
    );

    for spec in suite::migration_suite() {
        let results: Vec<_> = MigrationConfig::all()
            .into_iter()
            .map(|config| {
                WorkloadMigrationScenario::run(&spec, MigrationRun::new(config), &params)
                    .unwrap_or_else(|err| panic!("{} {config} failed: {err}", spec.name()))
            })
            .collect();
        let baseline_label = results[0].label.clone();
        let rows = format_normalized_table(&results, &baseline_label);
        print_normalized(spec.name(), &rows);
    }
    println!(
        "\npaper reference: LP-RD ≈ 3x, RP-LD/RPI-LD ≈ 3.3x, RP-RD/RPI-RDI ≈ 3.6x slowdown, \
         with up to 90% of cycles in page walks for the walk-heaviest workloads"
    );
}
