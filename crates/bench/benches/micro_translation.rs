//! Micro-benchmarks (ablation) of the core mechanisms: TLB hits, local vs.
//! remote page walks, native vs. replicated PTE updates and whole-tree
//! replication.
//!
//! These are not paper figures; they quantify the design choices called out
//! in DESIGN.md (2N-reference eager updates, replica-ring lookups, walk cost
//! asymmetry) and guard against performance regressions in the simulator
//! itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mitosis::{replicate_tree, MitosisPvOps};
use mitosis_mem::FrameKind;
use mitosis_mmu::{Mmu, PteCacheSet};
use mitosis_numa::{CoreId, MachineConfig, NodeMask, SocketId};
use mitosis_pt::{
    Mapper, NativePvOps, PageSize, PtEnv, Pte, PteFlags, PvOps, ReplicationSpec, VirtAddr,
};
use std::time::Duration;

/// Builds a native page table with `pages` 4 KiB mappings on socket 0.
fn build_tree(pages: u64) -> (PtEnv, mitosis_pt::PtRoots, Vec<VirtAddr>) {
    let machine = MachineConfig::paper_testbed_scaled().build();
    let mut env = PtEnv::new(&machine);
    let mut ops = NativePvOps::new();
    let mut ctx = env.context();
    let roots = Mapper::create_roots(
        &mut ops,
        &mut ctx,
        SocketId::new(0),
        ReplicationSpec::none(),
    )
    .expect("roots");
    let mapper = Mapper::new(&roots);
    let mut addrs = Vec::new();
    for i in 0..pages {
        let addr = VirtAddr::new(0x10_0000_0000 + i * 4096);
        let data = ctx.alloc.alloc_on(SocketId::new(0)).expect("data frame");
        ctx.frames.insert(data, FrameKind::Data);
        mapper
            .map(
                &mut ops,
                &mut ctx,
                addr,
                data,
                PageSize::Base4K,
                PteFlags::user_data(),
                SocketId::new(0),
                ReplicationSpec::none(),
            )
            .expect("map");
        addrs.push(addr);
    }
    (env, roots, addrs)
}

fn bench_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/translation");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let machine = MachineConfig::paper_testbed_scaled().build();
    let cost = machine.cost_model().clone();
    let (mut env, roots, addrs) = build_tree(4096);

    group.bench_function("tlb_hit", |b| {
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        let mut caches = PteCacheSet::for_machine(&machine);
        // Warm the TLB with one address.
        let addr = addrs[0];
        mmu.access(
            addr,
            false,
            roots.base(),
            &mut env.store,
            &env.frames,
            &cost,
            caches.socket(SocketId::new(0)),
        );
        b.iter(|| {
            mmu.access(
                addr,
                false,
                roots.base(),
                &mut env.store,
                &env.frames,
                &cost,
                caches.socket(SocketId::new(0)),
            )
        });
    });

    for (label, socket) in [("walk_local_socket", 0u16), ("walk_remote_socket", 1u16)] {
        group.bench_function(label, |b| {
            let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(socket));
            let mut caches = PteCacheSet::with_capacity(machine.sockets(), 4);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % addrs.len();
                mmu.access(
                    addrs[i],
                    false,
                    roots.base(),
                    &mut env.store,
                    &env.frames,
                    &cost,
                    caches.socket(SocketId::new(socket)),
                )
            });
        });
    }
    group.finish();
}

fn bench_pte_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/set_pte");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let machine = MachineConfig::paper_testbed().build();

    group.bench_function("native", |b| {
        let mut env = PtEnv::new(&machine);
        let mut ops = NativePvOps::new();
        let mut ctx = env.context();
        let table = ops
            .alloc_table(
                &mut ctx,
                mitosis_pt::Level::L1,
                SocketId::new(0),
                &ReplicationSpec::none(),
            )
            .expect("table");
        let data = ctx.alloc.alloc_on(SocketId::new(0)).expect("frame");
        let pte = Pte::new(data, PteFlags::user_data());
        let mut index = 0usize;
        b.iter(|| {
            index = (index + 1) % 512;
            ops.set_pte(&mut ctx, table, index, pte);
        });
    });

    group.bench_function("mitosis_4way", |b| {
        let mut env = PtEnv::new(&machine);
        let mut ops = MitosisPvOps::new();
        let repl = ReplicationSpec::all_sockets(4);
        let mut ctx = env.context();
        let table = ops
            .alloc_table(&mut ctx, mitosis_pt::Level::L1, SocketId::new(0), &repl)
            .expect("table");
        let data = ctx.alloc.alloc_on(SocketId::new(0)).expect("frame");
        let pte = Pte::new(data, PteFlags::user_data());
        let mut index = 0usize;
        b.iter(|| {
            index = (index + 1) % 512;
            ops.set_pte(&mut ctx, table, index, pte);
        });
    });
    group.finish();
}

/// Translation throughput under a GUPS-like uniform-random pattern with an
/// L3-sized PTE-line cache — the miss-heavy case the O(1) eviction rewrite
/// targets (the old implementation scanned the whole cache per miss).
/// Reports both ns/access (Criterion) and accesses/second (println).
fn bench_translation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/translation_throughput");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let machine = MachineConfig::paper_testbed_scaled().build();
    let cost = machine.cost_model().clone();
    // Enough mappings that the page-table-line working set (~25 000 lines)
    // exceeds the L3-sized cache (~18 000 lines): uniform-random access
    // then evicts on most walks, exactly the GUPS regime where the old
    // full-scan eviction collapsed.  The CI smoke step (quick mode) only
    // needs the path exercised, not the full-size working set.
    let quick = std::env::var("MITOSIS_BENCH_QUICK").is_ok_and(|v| !v.is_empty());
    let (mut env, roots, addrs) = build_tree(if quick { 20_000 } else { 200_000 });

    group.bench_function("random_4k_walks", |b| {
        let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
        // L3-sized cache, as the execution engine uses it.
        let mut caches = PteCacheSet::for_machine(&machine);
        let mut state = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            // xorshift64: deterministic uniform-random page selection.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = addrs[(state % addrs.len() as u64) as usize];
            mmu.access(
                addr,
                false,
                roots.base(),
                &mut env.store,
                &env.frames,
                &cost,
                caches.socket(SocketId::new(0)),
            )
        });
    });
    group.finish();

    // Plain accesses/second figure for the README "Performance" table.
    // In quick (CI smoke) mode the sample is shrunk to match the clamped
    // criterion budgets — the step exists to catch breakage, not to time.
    let accesses: u64 = if quick { 100_000 } else { 2_000_000 };
    let mut mmu = Mmu::new(CoreId::new(0), SocketId::new(0));
    let mut caches = PteCacheSet::for_machine(&machine);
    let mut state = 0x9E3779B97F4A7C15u64;
    let start = std::time::Instant::now();
    for _ in 0..accesses {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let addr = addrs[(state % addrs.len() as u64) as usize];
        criterion::black_box(mmu.access(
            addr,
            false,
            roots.base(),
            &mut env.store,
            &env.frames,
            &cost,
            caches.socket(SocketId::new(0)),
        ));
    }
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "micro/translation_throughput/random_4k_walks     {:.2} M accesses/s",
        accesses as f64 / elapsed / 1e6
    );
}

fn bench_tree_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/replicate_tree");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("4096_pages_to_4_sockets", |b| {
        b.iter_batched(
            || build_tree(4096),
            |(mut env, roots, _)| {
                let mut ctx = env.context();
                replicate_tree(&mut ctx, &roots, NodeMask::all(4)).expect("replicate");
                env
            },
            BatchSize::PerIteration,
        );
    });
    group.finish();
}

criterion_group!(
    micro,
    bench_walks,
    bench_translation_throughput,
    bench_pte_updates,
    bench_tree_replication
);
criterion_main!(micro);
