//! Figure 1: the paper's overview figure.
//!
//! Top tables: percentage of local/remote leaf PTEs per socket for a
//! multi-socket workload (Canneal) and for a single-socket workload after
//! migration (GUPS).  Bottom graphs: normalized runtime without and with
//! Mitosis for both scenarios (1.34x and 3.24x improvements in the paper).

use mitosis_bench::{harness_params, print_header, print_remote_leaf_fractions, print_speedup};
use mitosis_sim::{
    format_normalized_table, MigrationConfig, MigrationRun, MultiSocketConfig, MultiSocketScenario,
    WorkloadMigrationScenario,
};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params();
    print_header(
        "Figure 1",
        "page-table locality and Mitosis speedups for the two scenarios",
    );

    // --- Multi-socket scenario: Canneal, first-touch ---------------------
    println!("\n[top left] % remote leaf PTEs per socket, Canneal (first-touch):");
    let canneal = suite::canneal();
    let base = MultiSocketScenario::run(&canneal, MultiSocketConfig::first_touch(), &params)
        .expect("multi-socket baseline run");
    print_remote_leaf_fractions(&base);

    let with_mitosis = MultiSocketScenario::run(
        &canneal,
        MultiSocketConfig::first_touch().with_mitosis(),
        &params,
    )
    .expect("multi-socket Mitosis run");

    println!("\n[bottom left] Canneal normalized runtime (first-touch):");
    let rows = format_normalized_table(&[base.clone(), with_mitosis.clone()], &base.label);
    for row in &rows {
        println!("  {:<24} {:>7.3}", row.label, row.normalized_runtime);
    }
    print_speedup(
        "Canneal (multi-socket)",
        base.metrics.total_cycles,
        with_mitosis.metrics.total_cycles,
    );

    // --- Workload-migration scenario: GUPS -------------------------------
    println!("\n[top right] % remote leaf PTEs per socket, GUPS after migration (RPI-LD):");
    let gups = suite::gups();
    let local =
        WorkloadMigrationScenario::run(&gups, MigrationRun::new(MigrationConfig::LpLd), &params)
            .expect("GUPS local run");
    let remote =
        WorkloadMigrationScenario::run(&gups, MigrationRun::new(MigrationConfig::RpiLd), &params)
            .expect("GUPS remote-PT run");
    let repaired = WorkloadMigrationScenario::run(
        &gups,
        MigrationRun::new(MigrationConfig::RpiLd).with_mitosis(),
        &params,
    )
    .expect("GUPS Mitosis run");
    print_remote_leaf_fractions(&remote);

    println!("\n[bottom right] GUPS normalized runtime (workload migration):");
    let rows = format_normalized_table(
        &[local.clone(), remote.clone(), repaired.clone()],
        &local.label,
    );
    for row in &rows {
        println!("  {:<24} {:>7.3}", row.label, row.normalized_runtime);
    }
    print_speedup(
        "GUPS (migration)",
        remote.metrics.total_cycles,
        repaired.metrics.total_cycles,
    );
    println!("\npaper reference: Canneal 1.34x, GUPS 3.24x");
}
