//! Table 4: memory-footprint overhead of page-table replication.
//!
//! The analytic model assumes 4-level x86-64 paging over a compact address
//! space; the table reports total memory consumption relative to the
//! single-page-table baseline for 1 MB .. 16 TB footprints and 1 .. 16
//! replicas.  The harness additionally cross-checks the model against the
//! simulator's measured footprint for a small process.

use mitosis::{format_footprint, OverheadEntry};
use mitosis_bench::print_header;
use mitosis_numa::{MachineConfig, SocketId, GIB};
use mitosis_vmm::MmapFlags;

fn main() {
    print_header(
        "Table 4",
        "memory footprint overhead of Mitosis page-table replication",
    );

    println!(
        "\n{:<12} {:>10} | {:>7} {:>7} {:>7} {:>7} {:>7}",
        "Footprint", "PT size", "x1", "x2", "x4", "x8", "x16"
    );
    for footprint in OverheadEntry::paper_footprints() {
        let pt = OverheadEntry::compute(footprint, 1).page_table_bytes;
        let factors: Vec<String> = OverheadEntry::paper_replica_counts()
            .iter()
            .map(|r| {
                format!(
                    "{:.3}",
                    OverheadEntry::compute(footprint, *r).overhead_factor
                )
            })
            .collect();
        println!(
            "{:<12} {:>10} | {}",
            format_footprint(footprint),
            format!("{:.2} MB", pt as f64 / (1024.0 * 1024.0)),
            factors
                .iter()
                .map(|f| format!("{f:>7}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    // Cross-check against the simulator: replicate a real process 4 ways and
    // measure the page-table bytes the system actually allocated.
    let machine = MachineConfig::paper_testbed_scaled().build();
    let mut mitosis = mitosis::Mitosis::new();
    let mut system = mitosis.install(machine);
    let pid = system.create_process(SocketId::new(0)).expect("process");
    let footprint = GIB;
    let _ = system
        .mmap(pid, footprint, MmapFlags::populate())
        .expect("mmap");
    let single = system.footprint(pid).expect("footprint");
    mitosis
        .enable_for_process(&mut system, pid, None)
        .expect("replication");
    let replicated = system.footprint(pid).expect("footprint");
    println!(
        "\nmeasured cross-check (1 GiB process, 4 replicas): page tables {} KiB -> {} KiB, \
         total overhead {:.3} (model: {:.3})",
        single.total_pagetables() / 1024,
        replicated.total_pagetables() / 1024,
        (replicated.total_data() + replicated.total_pagetables()) as f64
            / (single.total_data() + single.total_pagetables()) as f64,
        OverheadEntry::compute(footprint, 4).overhead_factor,
    );
    println!("\npaper reference: 0.6% extra memory on the 4-socket machine, 2.9% with 16 replicas");
}
