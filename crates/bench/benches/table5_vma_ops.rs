//! Table 5: runtime overhead of virtual-memory operations (`mmap`,
//! `mprotect`, `munmap`) with 4-way page-table replication, relative to no
//! replication.
//!
//! The paper measures the syscall cycles on 4 KiB, 8 MiB and 4 GiB regions;
//! the simulator measures the wall-clock time of the equivalent operations,
//! whose dominant cost is likewise the number of page-table entry writes
//! (4x with 4-way replication).  The largest region is scaled to 256 MiB to
//! keep Criterion iteration times reasonable.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mitosis::Mitosis;
use mitosis_numa::{MachineConfig, SocketId};
use mitosis_vmm::{MmapFlags, Pid, Protection, System};
use std::time::Duration;

const REGION_SIZES: [(&str, u64); 3] = [
    ("4KiB", 4096),
    ("8MiB", 8 * 1024 * 1024),
    ("256MiB", 256 * 1024 * 1024),
];

/// Builds a system with or without 4-way replication enabled for a fresh
/// process, returning the system and pid.
fn build(replicated: bool) -> (System, Pid) {
    let machine = MachineConfig::paper_testbed_scaled().build();
    let mut mitosis = Mitosis::new();
    let mut system = if replicated {
        mitosis.install(machine)
    } else {
        System::new(machine)
    };
    let pid = system.create_process(SocketId::new(0)).expect("process");
    if replicated {
        mitosis
            .enable_for_process(&mut system, pid, None)
            .expect("enable replication");
    }
    (system, pid)
}

fn bench_vma_ops(c: &mut Criterion) {
    for (size_label, size) in REGION_SIZES {
        let mut group = c.benchmark_group(format!("table5/{size_label}"));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(1));

        for (mode, replicated) in [("native", false), ("mitosis-4way", true)] {
            group.bench_function(format!("mmap_populate/{mode}"), |b| {
                b.iter_batched(
                    || build(replicated),
                    |(mut system, pid)| {
                        let addr = system
                            .mmap(pid, size, MmapFlags::populate().without_thp())
                            .expect("mmap");
                        (system, addr)
                    },
                    BatchSize::PerIteration,
                );
            });

            group.bench_function(format!("mprotect/{mode}"), |b| {
                b.iter_batched(
                    || {
                        let (mut system, pid) = build(replicated);
                        let addr = system
                            .mmap(pid, size, MmapFlags::populate().without_thp())
                            .expect("mmap");
                        (system, pid, addr)
                    },
                    |(mut system, pid, addr)| {
                        system
                            .mprotect(pid, addr, size, Protection::ReadOnly)
                            .expect("mprotect");
                        system
                    },
                    BatchSize::PerIteration,
                );
            });

            group.bench_function(format!("munmap/{mode}"), |b| {
                b.iter_batched(
                    || {
                        let (mut system, pid) = build(replicated);
                        let addr = system
                            .mmap(pid, size, MmapFlags::populate().without_thp())
                            .expect("mmap");
                        (system, pid, addr)
                    },
                    |(mut system, pid, addr)| {
                        system.munmap(pid, addr, size).expect("munmap");
                        system
                    },
                    BatchSize::PerIteration,
                );
            });
        }
        group.finish();
    }
}

criterion_group!(table5, bench_vma_ops);
criterion_main!(table5);
