//! Figure 11: workload-migration scenario with 2 MiB pages under heavy
//! memory fragmentation (GUPS, Redis, XSBench).
//!
//! Under fragmentation most transparent-huge-page allocations fail and the
//! workloads fall back to 4 KiB pages, re-exposing the NUMA page-walk
//! overheads that Mitosis removes.

use mitosis_bench::{harness_params, print_header, print_normalized, print_speedup};
use mitosis_sim::{format_normalized_table, MigrationRun, WorkloadMigrationScenario};
use mitosis_workloads::suite;

fn main() {
    let params = harness_params().with_heavy_fragmentation();
    print_header(
        "Figure 11",
        "migration scenario, THP under heavy fragmentation (TLP-LD / TRPI-LD / TRPI-LD+M)",
    );

    // Migration-scenario footprints from Table 1 (85 / 75 / 64 GB).
    let workloads = [
        suite::xsbench().with_footprint(85 * mitosis_numa::GIB),
        suite::redis(),
        suite::gups(),
    ];
    for spec in workloads {
        let results: Vec<_> = MigrationRun::figure10(true)
            .into_iter()
            .map(|run| {
                WorkloadMigrationScenario::run(&spec, run, &params)
                    .unwrap_or_else(|err| panic!("{} {run} failed: {err}", spec.name()))
            })
            .collect();
        let baseline_label = results[0].label.clone();
        let rows = format_normalized_table(&results, &baseline_label);
        print_normalized(spec.name(), &rows);
        print_speedup(
            &results[2].label,
            results[1].metrics.total_cycles,
            results[2].metrics.total_cycles,
        );
    }
    println!(
        "\npaper reference: with fragmentation the TRPI-LD bars degrade to 1.08x (XSBench), \
         1.70x (Redis) and 2.73x (GUPS), and Mitosis recovers the loss"
    );
}
