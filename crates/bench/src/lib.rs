//! Shared helpers for the figure and table harnesses.
//!
//! Each benchmark target in `benches/` regenerates one figure or table of
//! the Mitosis paper (see DESIGN.md for the experiment index).  The targets
//! are ordinary `main` programs (`harness = false`) that print a text version
//! of the figure, except for the micro-benchmarks which use Criterion.
//!
//! Run a single harness with, for example:
//!
//! ```text
//! cargo bench -p mitosis-bench --bench fig09_multisocket
//! ```
//!
//! The `MITOSIS_SIM_ACCESSES` environment variable scales the measured
//! access count (default 60 000 per thread) to trade precision for run time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mitosis_sim::{NormalizedRow, ScenarioResult, SimParams};

/// Parameters used by all figure harnesses.
pub fn harness_params() -> SimParams {
    SimParams::new()
}

/// Prints the standard harness header for one figure/table.
pub fn print_header(id: &str, title: &str) {
    println!();
    println!("=================================================================");
    println!("{id}: {title}");
    println!("=================================================================");
}

/// Prints a normalized-runtime table in the paper's bar-chart layout.
pub fn print_normalized(workload: &str, rows: &[NormalizedRow]) {
    println!("\n--- {workload} ---");
    println!(
        "{:<24} {:>18} {:>15}",
        "config", "normalized runtime", "walk fraction"
    );
    for row in rows {
        println!(
            "{:<24} {:>18.3} {:>14.1}%",
            row.label,
            row.normalized_runtime,
            row.walk_fraction * 100.0
        );
    }
}

/// Prints the per-socket remote-leaf-PTE percentages (Figures 1 and 4).
pub fn print_remote_leaf_fractions(result: &ScenarioResult) {
    let cells: Vec<String> = result
        .remote_leaf_fractions
        .iter()
        .enumerate()
        .map(|(s, f)| format!("socket{}: {:>5.1}%", s, f * 100.0))
        .collect();
    println!("{:<24} {}", result.label, cells.join("  "));
}

/// Prints the speedup annotation the paper places above Mitosis bars.
pub fn print_speedup(label: &str, baseline_cycles: u64, mitosis_cycles: u64) {
    if mitosis_cycles == 0 {
        return;
    }
    println!(
        "{:<24} speedup with Mitosis: {:.2}x",
        label,
        baseline_cycles as f64 / mitosis_cycles as f64
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_params_use_the_paper_machine() {
        let params = harness_params();
        assert_eq!(params.machine().sockets(), 4);
    }

    #[test]
    fn printing_helpers_do_not_panic() {
        print_header("Figure 0", "smoke test");
        print_normalized(
            "GUPS",
            &[NormalizedRow {
                label: "LP-LD".into(),
                normalized_runtime: 1.0,
                walk_fraction: 0.5,
            }],
        );
        print_speedup("GUPS", 200, 100);
        print_speedup("GUPS", 200, 0);
    }
}
