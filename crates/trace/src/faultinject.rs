//! Deterministic fault injection for resilience testing.
//!
//! A [`FaultPlan`] decides — reproducibly, from a seed — where faults
//! strike: I/O errors and short reads while decoding a trace, bit flips in
//! the bytes read, injected panics and delays in parallel replay workers.
//! Decisions are pure functions of `(seed, site, index)`, so the same plan
//! injects the same faults regardless of call order, thread timing or how
//! many other sites consulted the plan in between; a failure found under
//! `MITOSIS_FAULT_SEED=7` reproduces under `MITOSIS_FAULT_SEED=7`.
//!
//! Nothing is injected unless asked: the disabled plan (the default, and
//! the result of [`FaultPlan::from_env`] with no `MITOSIS_FAULT_*`
//! variables set) answers "no fault" from a single branch, which keeps the
//! production paths that consult it effectively free.
//!
//! Wiring:
//! * [`FaultyReader`]/[`FaultyWriter`] wrap any `Read`/`Write` and inject
//!   the I/O-level faults; [`TraceReader::with_faults`] /
//!   [`TraceWriter::with_faults`](crate::TraceWriter::with_faults) build
//!   codecs over them directly.
//! * The parallel lane driver consults the process-wide
//!   [`env_plan`] for worker panics and delays (see
//!   [`replay_parallel_lanes`](crate::replay_parallel_lanes)); injected
//!   worker faults exercise the catch-unwind/retry/serial-degradation
//!   machinery end to end.
//!
//! Every injected fault is counted on the observer (`fault.*` counters),
//! so an observed run shows exactly which faults fired.

use crate::format::{TraceError, TraceMeta, TraceReader, TraceWriter};
use mitosis_sim::Observer;
use std::io::{self, Read, Write};
use std::sync::OnceLock;
use std::time::Duration;

/// Seed of the deterministic fault stream.
pub const ENV_FAULT_SEED: &str = "MITOSIS_FAULT_SEED";
/// Probability (0–1) of an injected I/O error per read call.
pub const ENV_FAULT_READ_IO: &str = "MITOSIS_FAULT_READ_IO";
/// Probability (0–1) of a flipped bit per byte read.
pub const ENV_FAULT_FLIP: &str = "MITOSIS_FAULT_FLIP";
/// Probability (0–1) of a spurious end-of-file per read call.
pub const ENV_FAULT_TRUNCATE: &str = "MITOSIS_FAULT_TRUNCATE";
/// Probability (0–1) of an injected I/O error per write call.
pub const ENV_FAULT_WRITE_IO: &str = "MITOSIS_FAULT_WRITE_IO";
/// Probability (0–1) that a lane-group worker attempt panics.
pub const ENV_FAULT_WORKER_PANIC: &str = "MITOSIS_FAULT_WORKER_PANIC";
/// Probability (0–1) that a lane-group worker is delayed before running.
pub const ENV_FAULT_WORKER_SLOW: &str = "MITOSIS_FAULT_WORKER_SLOW";
/// Delay in milliseconds for a slow worker (default 10).
pub const ENV_FAULT_WORKER_SLOW_MS: &str = "MITOSIS_FAULT_WORKER_SLOW_MS";

// Decision domains: every fault site hashes with its own constant so the
// per-site decision streams are independent.
const SITE_READ_IO: u64 = 1;
const SITE_TRUNCATE: u64 = 2;
const SITE_FLIP: u64 = 3;
const SITE_WRITE_IO: u64 = 4;
const SITE_WORKER_PANIC: u64 = 5;
const SITE_WORKER_SLOW: u64 = 6;

/// A seeded, deterministic fault-injection plan.
///
/// Copyable value type: adaptors and drivers embed it by value.  All
/// probabilities are clamped to `[0, 1]`; a plan with every probability at
/// zero is *disabled* and injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    read_io: f64,
    flip: f64,
    truncate: f64,
    write_io: f64,
    worker_panic: f64,
    worker_slow: f64,
    slow_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::disabled()
    }
}

impl FaultPlan {
    /// The plan that injects nothing (every probability zero).
    pub const fn disabled() -> Self {
        FaultPlan {
            seed: 0,
            read_io: 0.0,
            flip: 0.0,
            truncate: 0.0,
            write_io: 0.0,
            worker_panic: 0.0,
            worker_slow: 0.0,
            slow_ms: 10,
        }
    }

    /// A plan seeded with `seed` and no faults enabled yet; chain the
    /// `with_*` builders to arm specific fault classes.
    pub const fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::disabled()
        }
    }

    /// Arms injected I/O errors on reads with the given per-call
    /// probability.
    pub fn with_read_io(mut self, probability: f64) -> Self {
        self.read_io = probability.clamp(0.0, 1.0);
        self
    }

    /// Arms bit flips with the given per-byte probability.
    pub fn with_flip(mut self, probability: f64) -> Self {
        self.flip = probability.clamp(0.0, 1.0);
        self
    }

    /// Arms spurious end-of-file with the given per-call probability.
    pub fn with_truncate(mut self, probability: f64) -> Self {
        self.truncate = probability.clamp(0.0, 1.0);
        self
    }

    /// Arms injected I/O errors on writes with the given per-call
    /// probability.
    pub fn with_write_io(mut self, probability: f64) -> Self {
        self.write_io = probability.clamp(0.0, 1.0);
        self
    }

    /// Arms injected panics in lane-group workers with the given
    /// per-attempt probability.  The decision is keyed on `(group,
    /// attempt)`, so a group that panics on its first attempt may succeed
    /// on a retry under a probabilistic seed (and always re-panics under
    /// probability 1).
    pub fn with_worker_panic(mut self, probability: f64) -> Self {
        self.worker_panic = probability.clamp(0.0, 1.0);
        self
    }

    /// Arms injected delays in lane-group workers.
    pub fn with_worker_slow(mut self, probability: f64, delay: Duration) -> Self {
        self.worker_slow = probability.clamp(0.0, 1.0);
        self.slow_ms = delay.as_millis() as u64;
        self
    }

    /// Builds the plan the `MITOSIS_FAULT_*` environment variables
    /// describe; with none set, the disabled plan.
    pub fn from_env() -> Self {
        fn prob(name: &str) -> f64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<f64>().ok())
                .map_or(0.0, |p| p.clamp(0.0, 1.0))
        }
        let slow_ms = std::env::var(ENV_FAULT_WORKER_SLOW_MS)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(10);
        FaultPlan {
            seed: std::env::var(ENV_FAULT_SEED)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0),
            read_io: prob(ENV_FAULT_READ_IO),
            flip: prob(ENV_FAULT_FLIP),
            truncate: prob(ENV_FAULT_TRUNCATE),
            write_io: prob(ENV_FAULT_WRITE_IO),
            worker_panic: prob(ENV_FAULT_WORKER_PANIC),
            worker_slow: prob(ENV_FAULT_WORKER_SLOW),
            slow_ms,
        }
    }

    /// Whether any fault class is armed.  The hot-path check production
    /// code performs before consulting specific decisions.
    pub fn is_enabled(&self) -> bool {
        self.read_io > 0.0
            || self.flip > 0.0
            || self.truncate > 0.0
            || self.write_io > 0.0
            || self.worker_panic > 0.0
            || self.worker_slow > 0.0
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform value in `[0, 1)` for decision `(site, index)` — a
    /// splitmix64-style hash, so decisions are order-independent.
    fn chance(&self, site: u64, index: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(site.wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add(index.wrapping_mul(0xd1b54a32d192ed03));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fault decision for the `op`-th read call, if any.
    fn read_fault(&self, op: u64) -> Option<ReadFault> {
        if self.read_io > 0.0 && self.chance(SITE_READ_IO, op) < self.read_io {
            return Some(ReadFault::Io);
        }
        if self.truncate > 0.0 && self.chance(SITE_TRUNCATE, op) < self.truncate {
            return Some(ReadFault::Truncate);
        }
        None
    }

    /// XOR mask for the byte at stream offset `index`; 0 = no flip.
    fn flip_mask(&self, index: u64) -> u8 {
        if self.flip > 0.0 && self.chance(SITE_FLIP, index) < self.flip {
            // Derive the flipped bit from the same decision stream.
            // mitosis-lint: allow(truncating-cast-in-encoding, reason = "chance() is in [0,1) so the operand is a float in [0,8), not a wire value; the cast picks a bit index")
            1 << ((self.chance(SITE_FLIP, index.wrapping_add(1) << 32) * 8.0) as u32 & 7)
        } else {
            0
        }
    }

    /// Whether the `op`-th write call fails.
    fn write_fault(&self, op: u64) -> bool {
        self.write_io > 0.0 && self.chance(SITE_WRITE_IO, op) < self.write_io
    }

    /// Whether lane-group worker `group` panics on its `attempt`-th try.
    pub fn worker_panics(&self, group: usize, attempt: u32) -> bool {
        self.worker_panic > 0.0
            && self.chance(SITE_WORKER_PANIC, ((group as u64) << 32) | attempt as u64)
                < self.worker_panic
    }

    /// The delay injected into lane-group worker `group`, if any.
    pub fn worker_delay(&self, group: usize) -> Option<Duration> {
        (self.worker_slow > 0.0 && self.chance(SITE_WORKER_SLOW, group as u64) < self.worker_slow)
            .then(|| Duration::from_millis(self.slow_ms))
    }

    /// Wraps `source` in a fault-injecting reader driven by this plan.
    pub fn reader<R: Read>(&self, source: R, observer: &Observer) -> FaultyReader<R> {
        FaultyReader {
            inner: source,
            plan: *self,
            observer: observer.clone(),
            ops: 0,
            offset: 0,
            injected: 0,
        }
    }

    /// Wraps `sink` in a fault-injecting writer driven by this plan.
    pub fn writer<W: Write>(&self, sink: W, observer: &Observer) -> FaultyWriter<W> {
        FaultyWriter {
            inner: sink,
            plan: *self,
            observer: observer.clone(),
            ops: 0,
            injected: 0,
        }
    }
}

/// What a read call was made to do instead of reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadFault {
    /// Fail with an I/O error.
    Io,
    /// Report a spurious end-of-file (reads 0 bytes).
    Truncate,
}

/// The process-wide plan described by the `MITOSIS_FAULT_*` environment,
/// parsed once.  This is what the parallel replay driver consults for
/// worker faults; with no variables set it is the disabled plan and the
/// consultation is one boolean check.
pub fn env_plan() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(FaultPlan::from_env)
}

/// A `Read` adaptor injecting the plan's I/O faults: per-call errors and
/// spurious EOFs, per-byte bit flips.  Every injection is recorded on the
/// observer (`fault.read_io`, `fault.truncate`, `fault.bit_flip`).
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    observer: Observer,
    ops: u64,
    offset: u64,
    injected: u64,
}

impl<R> FaultyReader<R> {
    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let op = self.ops;
        self.ops += 1;
        match self.plan.read_fault(op) {
            Some(ReadFault::Io) => {
                self.injected += 1;
                self.observer.counter("fault.read_io", 1);
                return Err(io::Error::other("injected read fault"));
            }
            Some(ReadFault::Truncate) => {
                self.injected += 1;
                self.observer.counter("fault.truncate", 1);
                return Ok(0);
            }
            None => {}
        }
        let n = self.inner.read(buf)?;
        if self.plan.flip > 0.0 {
            for (i, byte) in buf[..n].iter_mut().enumerate() {
                let mask = self.plan.flip_mask(self.offset + i as u64);
                if mask != 0 {
                    *byte ^= mask;
                    self.injected += 1;
                    self.observer.counter("fault.bit_flip", 1);
                }
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// A `Write` adaptor injecting per-call I/O errors (`fault.write_io`).
pub struct FaultyWriter<W> {
    inner: W,
    plan: FaultPlan,
    observer: Observer,
    ops: u64,
    injected: u64,
}

impl<W> FaultyWriter<W> {
    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let op = self.ops;
        self.ops += 1;
        if self.plan.write_fault(op) {
            self.injected += 1;
            self.observer.counter("fault.write_io", 1);
            return Err(io::Error::other("injected write fault"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<R: Read> TraceReader<FaultyReader<R>> {
    /// Opens a trace over a fault-injecting source: every byte the codec
    /// reads passes through `plan`'s I/O fault decisions.  Injected faults
    /// surface as ordinary [`TraceError`]s — this constructor is how the
    /// resilience tests prove the decode path never panics and never
    /// silently accepts corrupted data.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceReader::new`], plus whatever faults the
    /// plan injects into the header bytes.
    pub fn with_faults(
        source: R,
        plan: &FaultPlan,
        observer: &Observer,
    ) -> Result<Self, TraceError> {
        TraceReader::new(plan.reader(source, observer))
    }
}

impl<W: Write> TraceWriter<FaultyWriter<W>> {
    /// Starts a trace over a fault-injecting sink (the write-side
    /// counterpart of [`TraceReader::with_faults`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceWriter::new`], plus whatever faults the
    /// plan injects into the header writes.
    pub fn with_faults(
        sink: W,
        meta: &TraceMeta,
        plan: &FaultPlan,
        observer: &Observer,
    ) -> Result<Self, TraceError> {
        TraceWriter::new(plan.writer(sink, observer), meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_order_independent() {
        let plan = FaultPlan::seeded(42).with_read_io(0.3).with_flip(0.1);
        let forward: Vec<bool> = (0..100).map(|i| plan.read_fault(i).is_some()).collect();
        let backward: Vec<bool> = (0..100)
            .rev()
            .map(|i| plan.read_fault(i).is_some())
            .collect();
        let reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, reversed, "decisions must not depend on order");
        assert!(
            forward.iter().filter(|hit| **hit).count() > 10,
            "a 0.3 probability over 100 ops should fire often"
        );
        // A different seed gives a different stream.
        let other = FaultPlan::seeded(43).with_read_io(0.3);
        let shifted: Vec<bool> = (0..100).map(|i| other.read_fault(i).is_some()).collect();
        assert_ne!(forward, shifted);
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_enabled());
        for i in 0..1000 {
            assert!(plan.read_fault(i).is_none());
            assert_eq!(plan.flip_mask(i), 0);
            assert!(!plan.write_fault(i));
            assert!(!plan.worker_panics(i as usize, 0));
            assert!(plan.worker_delay(i as usize).is_none());
        }
    }

    #[test]
    fn faulty_reader_flips_and_fails_deterministically() {
        let data: Vec<u8> = (0..255).collect();
        let run = |plan: &FaultPlan| -> (io::Result<Vec<u8>>, u64) {
            let observer = Observer::none();
            let mut reader = plan.reader(data.as_slice(), &observer);
            let mut out = Vec::new();
            let result = reader.read_to_end(&mut out).map(|_| out);
            (result, reader.injected())
        };
        let plan = FaultPlan::seeded(7).with_flip(0.05);
        let (first, injected_first) = run(&plan);
        let (second, injected_second) = run(&plan);
        assert_eq!(first.unwrap(), second.unwrap(), "flips must reproduce");
        assert_eq!(injected_first, injected_second);
        assert!(injected_first > 0, "a 5% flip rate over 255 bytes");

        let failing = FaultPlan::seeded(7).with_read_io(1.0);
        let (result, injected) = run(&failing);
        assert!(result.is_err());
        assert_eq!(injected, 1, "the first read call already fails");
    }

    #[test]
    fn worker_panic_decisions_vary_by_attempt() {
        // Keyed on (group, attempt): under a mid-range probability some
        // group that panics on attempt 0 must succeed on a later attempt —
        // that is what makes bounded retries meaningful.
        let plan = FaultPlan::seeded(3).with_worker_panic(0.5);
        let recovers = (0..64).any(|group| {
            plan.worker_panics(group, 0)
                && !(0..3).all(|attempt| plan.worker_panics(group, attempt))
        });
        assert!(recovers);
        // And probability 1 always panics, on every attempt.
        let always = FaultPlan::seeded(3).with_worker_panic(1.0);
        assert!((0..8).all(|g| (0..4).all(|a| always.worker_panics(g, a))));
    }

    #[test]
    fn env_parsing_clamps_and_defaults() {
        // from_env with nothing set: disabled (the test environment must
        // not leak MITOSIS_FAULT_* into unit tests; CI sets them only for
        // the dedicated resilience leg which runs integration tests).
        if std::env::var(ENV_FAULT_SEED).is_err() && std::env::var(ENV_FAULT_READ_IO).is_err() {
            assert!(!FaultPlan::from_env().is_enabled());
        }
        let plan = FaultPlan::seeded(1).with_read_io(7.5).with_flip(-2.0);
        assert!(plan.is_enabled());
        assert!(plan.read_fault(0).is_some(), "clamped to probability 1");
        assert_eq!(plan.flip_mask(0), 0, "clamped to probability 0");
    }
}
