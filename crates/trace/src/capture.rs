//! Trace capture: turning live access streams and scenario setups into
//! replayable [`Trace`] artifacts.
//!
//! Three capture granularities are provided:
//!
//! * [`RecordingSource`] wraps any [`AccessSource`] and tees every access it
//!   hands out into a buffer — the building block for capturing whatever
//!   actually fed the engine;
//! * [`capture_engine_run`], [`capture_migration_scenario`] and
//!   [`capture_multisocket_scenario`] run a full experiment (the scenario
//!   captures mirror `mitosis-sim`'s runners, including their setup events)
//!   while recording it, returning both the live metrics and the trace
//!   whose replay reproduces them bit-for-bit;
//! * [`capture_engine_run_dynamic`] additionally threads a
//!   [`PhaseSchedule`] of mid-run phase-change events through the run and
//!   records each fired event as a mid-lane marker at the exact access
//!   index, so the dynamic run replays bit-identically too.

use crate::format::{socket_index_u16, Trace, TraceError, TraceEvent, TraceLane, TraceMeta};
use crate::replay::ReplayError;
use mitosis::Mitosis;
use mitosis_mem::{FragmentationModel, PlacementPolicy};
use mitosis_numa::{Interference, NodeMask, SocketId};
use mitosis_sim::{
    ExecutionEngine, MigrationRun, MultiSocketConfig, PhaseChange, PhaseEvent, PhaseSchedule,
    RunMetrics, SimParams, ThreadPlacement,
};
use mitosis_vmm::{AutoNuma, MmapFlags, PtPlacement, System, ThpMode};
use mitosis_workloads::{Access, AccessSource, AccessStream, InitPattern, WorkloadSpec};

/// An [`AccessSource`] adaptor that records every access it forwards.
#[derive(Debug, Clone)]
pub struct RecordingSource<S> {
    inner: S,
    recorded: Vec<Access>,
}

impl<S: AccessSource> RecordingSource<S> {
    /// Wraps `inner`, recording everything it produces.
    pub fn new(inner: S) -> Self {
        RecordingSource {
            inner,
            recorded: Vec::new(),
        }
    }

    /// The accesses forwarded so far.
    pub fn recorded(&self) -> &[Access] {
        &self.recorded
    }

    /// Consumes the adaptor, returning the recorded accesses.
    pub fn into_recorded(self) -> Vec<Access> {
        self.recorded
    }
}

impl<S: AccessSource> AccessSource for RecordingSource<S> {
    fn next_access(&mut self) -> Access {
        let access = self.inner.next_access();
        self.recorded.push(access);
        access
    }
}

/// Captures `accesses` accesses of `spec`'s deterministic stream under
/// `seed` into a lane for a thread on `socket`, without running the engine.
pub fn capture_stream(spec: &WorkloadSpec, seed: u64, socket: u16, accesses: u64) -> TraceLane {
    let mut stream = AccessStream::new(spec, seed);
    let mut lane = TraceLane::new(socket);
    lane.accesses = (0..accesses).map(|_| stream.next_access()).collect();
    lane
}

/// A capture that also ran the experiment live.
#[derive(Debug, Clone)]
pub struct CapturedRun {
    /// The replayable trace.
    pub trace: Trace,
    /// Metrics of the live run that produced the trace; replaying the trace
    /// reproduces exactly these.
    pub live_metrics: RunMetrics,
}

fn socket_mask(sockets: &[SocketId]) -> u64 {
    sockets.iter().fold(0u64, |mask, s| mask | 1 << s.index())
}

/// The mid-lane marker a fired phase change is recorded as; `staggered` is
/// set when the change carried a per-thread filter (the marker then lands
/// only in the targeted lane).
///
/// [`crate::replay`] inverts this mapping to rebuild the
/// [`PhaseSchedule`] from the decoded lanes.
///
/// # Errors
///
/// Returns [`TraceError::UnencodableSocket`] when a target socket does not
/// fit the wire format's `u16` socket field.
///
/// # Panics
///
/// Panics if `staggered` is requested for a change that does not support a
/// thread filter (see
/// [`PhaseChange::supports_thread_filter`]); [`PhaseSchedule`] makes such
/// events unrepresentable, so a panic here means the schedule was built by
/// other means.
pub fn trace_event_of_change(
    change: PhaseChange,
    staggered: bool,
) -> Result<TraceEvent, TraceError> {
    assert!(
        !staggered || change.supports_thread_filter(),
        "{change:?} cannot be staggered"
    );
    Ok(match change {
        PhaseChange::MigrateData { target } => TraceEvent::MigrateData {
            socket: socket_index_u16(target)?,
            staggered,
        },
        PhaseChange::MigratePageTable { target } => TraceEvent::MigratePageTable {
            socket: socket_index_u16(target)?,
        },
        PhaseChange::SetReplicas { sockets } => TraceEvent::Replicate {
            sockets: sockets.bits(),
        },
        PhaseChange::AutoNumaRebalance { sockets } => TraceEvent::AutoNumaRebalance {
            sockets: sockets.bits(),
            staggered,
        },
        PhaseChange::SetInterference { sockets } => TraceEvent::Interference {
            sockets: sockets.bits(),
            staggered,
        },
        PhaseChange::Fork => TraceEvent::Fork,
        PhaseChange::MmapAt { addr, length } => TraceEvent::MmapAt {
            addr: addr.as_u64(),
            len: length,
        },
        PhaseChange::MunmapAt { addr, length } => TraceEvent::MunmapAt {
            addr: addr.as_u64(),
            len: length,
        },
        PhaseChange::PromoteHuge { addr } => TraceEvent::PromoteHuge {
            addr: addr.as_u64(),
        },
        PhaseChange::DemoteHuge { addr } => TraceEvent::DemoteHuge {
            addr: addr.as_u64(),
        },
    })
}

#[allow(clippy::too_many_arguments)]
fn run_and_record(
    system: &mut System,
    mitosis: &mut Mitosis,
    pid: mitosis_vmm::Pid,
    spec: &WorkloadSpec,
    region: mitosis_pt::VirtAddr,
    threads: &[ThreadPlacement],
    params: &SimParams,
    schedule: &PhaseSchedule,
) -> Result<(RunMetrics, Vec<TraceLane>), ReplayError> {
    if let Some(event) = schedule
        .events()
        .iter()
        .find(|e| e.thread.is_some_and(|t| t >= threads.len()))
    {
        // An unobservable event cannot land in any lane, so the trace
        // could not reproduce the run: reject the capture up front.
        return Err(ReplayError::Mismatch(format!(
            "phase event at access {} targets thread {} but the capture runs {} threads",
            event.at_access,
            // Infallible: the `find` predicate above only matches events
            // whose `thread` is `Some` (is_some_and).
            event.thread.expect("filtered event"),
            threads.len()
        )));
    }
    let mut sources: Vec<RecordingSource<AccessStream>> =
        ExecutionEngine::thread_streams(spec, params, threads.len())
            .into_iter()
            .map(RecordingSource::new)
            .collect();
    let mut engine = ExecutionEngine::new(system);
    let metrics = engine.run_with_sources_dynamic(
        system,
        mitosis,
        pid,
        spec,
        region,
        threads,
        params.accesses_per_thread,
        &mut sources,
        schedule,
    )?;
    // Global phase changes fire at the same access boundary on every
    // thread, so every lane carries their markers — replay cross-checks
    // them as an integrity guard.  Staggered (thread-filtered) changes are
    // observed by one thread only and land in that thread's lane alone;
    // the lanes of a staggered capture legitimately disagree (format v4).
    // Events scheduled beyond the run clamp to its end, exactly as the
    // engine fired them.
    let marker_of = |event: &PhaseEvent| -> Result<(u64, TraceEvent), TraceError> {
        Ok((
            event.at_access.min(params.accesses_per_thread),
            trace_event_of_change(event.change, event.thread.is_some())?,
        ))
    };
    let mut lanes = Vec::with_capacity(threads.len());
    for (index, (placement, source)) in threads.iter().zip(sources).enumerate() {
        lanes.push(TraceLane {
            socket: socket_index_u16(placement.socket)?,
            accesses: source.into_recorded(),
            events: schedule
                .events()
                .iter()
                .filter(|event| event.thread.is_none() || event.thread == Some(index))
                .map(marker_of)
                .collect::<Result<_, _>>()?,
        });
    }
    Ok((metrics, lanes))
}

/// Runs `spec` live with one thread per socket in `sockets` (the
/// engine-level experiment shape) while capturing it.
///
/// The returned trace records the full setup — process creation, the lazy
/// mmap, first-touch population — so [`replay_trace`](crate::replay_trace)
/// can reconstruct the run from nothing but the trace and `params`.
///
/// # Errors
///
/// Propagates VM errors from setup and the measured run.
pub fn capture_engine_run(
    spec: &WorkloadSpec,
    params: &SimParams,
    sockets: &[SocketId],
) -> Result<CapturedRun, ReplayError> {
    capture_engine_run_dynamic(spec, params, sockets, &PhaseSchedule::new())
}

/// [`capture_engine_run`] with a schedule of mid-run phase-change events.
///
/// The engine applies the schedule at its access-count boundaries during
/// the measured phase; every fired event lands in each lane as a mid-lane
/// marker at the exact access index, so
/// [`replay_trace`](crate::replay_trace) re-applies it at the same boundary
/// and the replayed metrics stay bit-identical.  When the schedule contains
/// page-table operations (replica add/drop, page-table migration), the
/// capture installs the Mitosis backend and records that as a setup event.
///
/// # Errors
///
/// Propagates VM and Mitosis errors from setup, the measured run and event
/// application.
pub fn capture_engine_run_dynamic(
    spec: &WorkloadSpec,
    params: &SimParams,
    sockets: &[SocketId],
    schedule: &PhaseSchedule,
) -> Result<CapturedRun, ReplayError> {
    assert!(!sockets.is_empty(), "capture needs at least one socket");
    let scaled = params.scale_workload(spec);
    let needs_mitosis = schedule.events().iter().any(|event| {
        matches!(
            event.change,
            PhaseChange::MigratePageTable { .. } | PhaseChange::SetReplicas { .. }
        )
    });
    let mut mitosis = Mitosis::new();
    let mut events = Vec::new();
    let mut system = if needs_mitosis {
        events.push(TraceEvent::InstallMitosis);
        mitosis.install(params.machine())
    } else {
        System::new(params.machine())
    };
    if let Some(probability) = params.fragmentation {
        system
            .pt_env_mut()
            .alloc
            .set_fragmentation(FragmentationModel::with_probability(probability));
    }
    system.set_shootdown_mode(params.shootdown_mode);

    let home = sockets[0];
    let pid = system.create_process(home)?;
    events.push(TraceEvent::CreateProcess {
        socket: socket_index_u16(home)?,
    });

    let region = system.mmap(pid, scaled.footprint(), MmapFlags::lazy().without_thp())?;
    events.push(TraceEvent::Mmap {
        len: scaled.footprint(),
        populate: false,
        thp: false,
    });

    // The Populate event records a socket *bitmask*, which replay expands
    // into the distinct sockets in ascending order — so the live populate
    // must run in exactly that canonical order, or parallel first-touch
    // chunking would land on different sockets than the replay reconstructs
    // (duplicate or unsorted `sockets` lists would silently break
    // bit-identical replay).  Thread placements below keep the caller's
    // order and duplicates; only the one-off initialisation is canonical.
    let mut populate_sockets = sockets.to_vec();
    populate_sockets.sort_by_key(|socket| socket.index());
    populate_sockets.dedup();
    ExecutionEngine::populate(
        &mut system,
        pid,
        region,
        scaled.footprint(),
        scaled.init(),
        &populate_sockets,
    )?;
    events.push(TraceEvent::Populate {
        len: scaled.footprint(),
        parallel: scaled.init() == InitPattern::Parallel,
        sockets: socket_mask(sockets),
    });

    let threads = ExecutionEngine::one_thread_per_socket(&system, sockets);
    let (live_metrics, lanes) = run_and_record(
        &mut system,
        &mut mitosis,
        pid,
        &scaled,
        region,
        &threads,
        params,
        schedule,
    )?;
    Ok(CapturedRun {
        trace: Trace {
            meta: TraceMeta::for_spec(&scaled, params)?,
            setup_events: events,
            lanes,
        },
        live_metrics,
    })
}

/// Runs the paper's multi-socket scenario (`mitosis-sim`'s
/// `MultiSocketScenario`: one thread per socket over a shared region, with
/// first-touch or interleaved data placement, optionally AutoNUMA data
/// rebalancing and optionally Mitosis page-table replication) while
/// capturing its setup events and access streams.
///
/// This closes the last uncapturable scenario: the AutoNUMA and interleave
/// placement steps are recorded as [`TraceEvent::AutoNumaRebalance`] and
/// [`TraceEvent::InterleaveData`] setup events, replication as
/// [`TraceEvent::Replicate`], so replay reconstructs the exact Figure 9
/// system state before feeding the lanes back.
///
/// `params.threads_per_socket` threads run on every socket (the paper's
/// machines run many threads per socket, not one), so the captured trace
/// carries `sockets × threads_per_socket` lanes — the multi-lane-per-socket
/// shape the per-socket lane groups of
/// [`replay_parallel_lanes`](crate::replay_parallel_lanes) shard.
///
/// # Errors
///
/// Propagates VM and Mitosis errors from setup and the measured run.
pub fn capture_multisocket_scenario(
    spec: &WorkloadSpec,
    config: MultiSocketConfig,
    params: &SimParams,
) -> Result<CapturedRun, ReplayError> {
    let machine = params.machine();
    let sockets: Vec<SocketId> = machine.socket_ids().collect();
    let mut mitosis = Mitosis::new();
    let mut events = Vec::new();
    let mut system = if config.mitosis {
        events.push(TraceEvent::InstallMitosis);
        mitosis.install(machine)
    } else {
        System::new(machine)
    };
    if config.thp {
        system.set_thp(ThpMode::Always);
        events.push(TraceEvent::SetThp(true));
    }
    if let Some(probability) = params.fragmentation {
        system
            .pt_env_mut()
            .alloc
            .set_fragmentation(FragmentationModel::with_probability(probability));
    }
    system.set_shootdown_mode(params.shootdown_mode);

    let pid = system.create_process(sockets[0])?;
    events.push(TraceEvent::CreateProcess {
        socket: socket_index_u16(sockets[0])?,
    });
    if config.data_policy == mitosis_sim::DataPolicyChoice::Interleave {
        system
            .process_mut(pid)?
            .set_data_policy(PlacementPolicy::interleave_all(sockets.len()));
        events.push(TraceEvent::InterleaveData {
            sockets: socket_mask(&sockets),
        });
    }

    let scaled = params.scale_workload(spec);
    let region = system.mmap(pid, scaled.footprint(), MmapFlags::lazy())?;
    events.push(TraceEvent::Mmap {
        len: scaled.footprint(),
        populate: false,
        thp: true,
    });
    ExecutionEngine::populate(
        &mut system,
        pid,
        region,
        scaled.footprint(),
        scaled.init(),
        &sockets,
    )?;
    events.push(TraceEvent::Populate {
        len: scaled.footprint(),
        parallel: scaled.init() == InitPattern::Parallel,
        sockets: socket_mask(&sockets),
    });

    if config.autonuma {
        AutoNuma::new().rebalance(&mut system, pid, &sockets)?;
        events.push(TraceEvent::AutoNumaRebalance {
            sockets: socket_mask(&sockets),
            staggered: false,
        });
    }
    if config.mitosis {
        mitosis.enable_for_process(&mut system, pid, None)?;
        events.push(TraceEvent::Replicate {
            sockets: system.machine().all_sockets().bits(),
        });
    }

    let threads = ExecutionEngine::threads_for(&system, &sockets, params.threads_per_socket);
    let (live_metrics, lanes) = run_and_record(
        &mut system,
        &mut mitosis,
        pid,
        &scaled,
        region,
        &threads,
        params,
        &PhaseSchedule::new(),
    )?;
    Ok(CapturedRun {
        trace: Trace {
            meta: TraceMeta::for_spec(&scaled, params)?,
            setup_events: events,
            lanes,
        },
        live_metrics,
    })
}

/// Runs the paper's workload-migration scenario (`mitosis-sim`'s
/// `WorkloadMigrationScenario`) while capturing its setup events and access
/// stream.
///
/// The trace records the scenario's placement dance — remote page tables,
/// data binding, the optional Mitosis page-table migration and interference
/// — as setup events, so the replay reconstructs the exact same system
/// state the live run measured.
///
/// # Errors
///
/// Propagates VM and Mitosis errors from setup and the measured run.
pub fn capture_migration_scenario(
    spec: &WorkloadSpec,
    run: MigrationRun,
    params: &SimParams,
) -> Result<CapturedRun, ReplayError> {
    let machine = params.machine();
    let mut mitosis = Mitosis::new();
    let mut events = Vec::new();
    let mut system = if run.mitosis {
        events.push(TraceEvent::InstallMitosis);
        mitosis.install(machine)
    } else {
        System::new(machine)
    };
    if run.thp {
        system.set_thp(ThpMode::Always);
        events.push(TraceEvent::SetThp(true));
    }
    if let Some(probability) = params.fragmentation {
        system
            .pt_env_mut()
            .alloc
            .set_fragmentation(FragmentationModel::with_probability(probability));
    }
    system.set_shootdown_mode(params.shootdown_mode);

    // Mirrors WorkloadMigrationScenario: the workload runs on socket 0
    // ("A"), everything left behind lives on socket 1 ("B").
    let a = SocketId::new(0);
    let b = SocketId::new(1);

    if run.config.pt_remote() {
        system.set_pt_placement(PtPlacement::Fixed(b));
        events.push(TraceEvent::PtPlacement {
            socket: socket_index_u16(b)?,
        });
    }
    let pid = system.create_process(a)?;
    events.push(TraceEvent::CreateProcess {
        socket: socket_index_u16(a)?,
    });
    let data_socket = if run.config.data_remote() { b } else { a };
    system
        .process_mut(pid)?
        .set_data_policy(PlacementPolicy::Bind(data_socket));
    events.push(TraceEvent::BindData {
        socket: socket_index_u16(data_socket)?,
    });

    let scaled = params.scale_workload(spec);
    let region = system.mmap(pid, scaled.footprint(), MmapFlags::lazy())?;
    events.push(TraceEvent::Mmap {
        len: scaled.footprint(),
        populate: false,
        thp: true,
    });
    ExecutionEngine::populate(
        &mut system,
        pid,
        region,
        scaled.footprint(),
        InitPattern::SingleThread,
        &[a],
    )?;
    events.push(TraceEvent::Populate {
        len: scaled.footprint(),
        parallel: false,
        sockets: socket_mask(&[a]),
    });

    if run.mitosis {
        mitosis.migrate_page_table(&mut system, pid, a, true)?;
        events.push(TraceEvent::MigratePageTable {
            socket: socket_index_u16(a)?,
        });
    }
    if run.config.interference() {
        system
            .machine_mut()
            .cost_model_mut()
            .set_interference(Interference::on([b]));
        events.push(TraceEvent::Interference {
            sockets: NodeMask::from_bits(1 << b.index()).bits(),
            staggered: false,
        });
    }

    let threads = ExecutionEngine::one_thread_per_socket(&system, &[a]);
    let (live_metrics, lanes) = run_and_record(
        &mut system,
        &mut mitosis,
        pid,
        &scaled,
        region,
        &threads,
        params,
        &PhaseSchedule::new(),
    )?;
    Ok(CapturedRun {
        trace: Trace {
            meta: TraceMeta::for_spec(&scaled, params)?,
            setup_events: events,
            lanes,
        },
        live_metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitosis_workloads::suite;

    #[test]
    fn recording_source_is_transparent() {
        let spec = suite::gups().with_footprint(1 << 26);
        let reference: Vec<Access> = AccessStream::new(&spec, 3).take(100).collect();
        let mut recording = RecordingSource::new(AccessStream::new(&spec, 3));
        let forwarded: Vec<Access> = (0..100).map(|_| recording.next_access()).collect();
        assert_eq!(forwarded, reference);
        assert_eq!(recording.recorded(), &reference[..]);
        assert_eq!(recording.into_recorded(), reference);
    }

    #[test]
    fn capture_stream_matches_live_streams() {
        let spec = suite::btree().with_footprint(1 << 26);
        let lane = capture_stream(&spec, 9, 2, 64);
        assert_eq!(lane.socket, 2);
        let reference: Vec<Access> = AccessStream::new(&spec, 9).take(64).collect();
        assert_eq!(lane.accesses, reference);
    }

    #[test]
    fn captured_engine_run_records_full_setup() {
        let params = SimParams::quick_test().with_accesses(200);
        let captured = capture_engine_run(&suite::gups(), &params, &[SocketId::new(0)]).unwrap();
        assert_eq!(captured.trace.lanes.len(), 1);
        assert_eq!(captured.trace.accesses(), 200);
        assert_eq!(captured.trace.setup_events.len(), 3);
        assert_eq!(captured.live_metrics.accesses, 200);
        assert_eq!(captured.trace.meta.workload, "GUPS");
    }
}
