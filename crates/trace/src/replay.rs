//! Deterministic trace replay.
//!
//! [`replay_trace`] rebuilds the captured experiment from scratch — a fresh
//! [`System`], the recorded setup events applied in order, one
//! [`LaneCursor`] per captured thread — and drives the existing
//! [`ExecutionEngine`] with it.  Because the engine is fed the exact access
//! sequence the capture recorded (and the substrate is fully deterministic),
//! the replayed [`RunMetrics`] are bit-identical to the live run's.

use crate::format::{MachineFingerprint, Trace, TraceError, TraceEvent};
use mitosis::{Mitosis, MitosisError};
use mitosis_mem::{FragmentationModel, PlacementPolicy};
use mitosis_numa::{Interference, SocketId};
use mitosis_sim::{ExecutionEngine, RunMetrics, SimParams, ThreadPlacement};
use mitosis_vmm::{MmapFlags, PtPlacement, System, ThpMode, VmError};
use mitosis_workloads::{Access, AccessSource, InitPattern, WorkloadSpec};
use std::fmt;

/// Errors produced while replaying a trace.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace itself could not be decoded.
    Trace(TraceError),
    /// A virtual-memory operation failed during event replay.
    Vm(VmError),
    /// A Mitosis operation failed during event replay.
    Mitosis(MitosisError),
    /// The trace is inconsistent with the replay request (unknown workload,
    /// missing events, mismatched lane lengths, ...).
    Mismatch(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "replay failed to decode trace: {e}"),
            ReplayError::Vm(e) => write!(f, "replay VM operation failed: {e}"),
            ReplayError::Mitosis(e) => write!(f, "replay Mitosis operation failed: {e}"),
            ReplayError::Mismatch(what) => write!(f, "trace/replay mismatch: {what}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<VmError> for ReplayError {
    fn from(e: VmError) -> Self {
        ReplayError::Vm(e)
    }
}

impl From<MitosisError> for ReplayError {
    fn from(e: MitosisError) -> Self {
        ReplayError::Mitosis(e)
    }
}

/// An [`AccessSource`] feeding a captured lane to the execution engine.
#[derive(Debug, Clone)]
pub struct LaneCursor<'a> {
    accesses: &'a [Access],
    position: usize,
}

impl<'a> LaneCursor<'a> {
    /// A cursor over `accesses`, starting at the beginning.
    pub fn new(accesses: &'a [Access]) -> Self {
        LaneCursor {
            accesses,
            position: 0,
        }
    }

    /// Accesses not yet consumed.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.position
    }
}

impl AccessSource for LaneCursor<'_> {
    fn next_access(&mut self) -> Access {
        let access = self.accesses[self.position];
        self.position += 1;
        access
    }
}

/// Knobs for [`replay_trace_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOptions {
    /// Proceed (with a warning on stderr) when the trace's recorded machine
    /// fingerprint does not match the replay machine.  The replayed metrics
    /// are then **not** comparable to the capture's.
    pub force_machine: bool,
}

impl ReplayOptions {
    /// Default options: machine mismatches are rejected.
    pub fn new() -> Self {
        ReplayOptions::default()
    }

    /// Allows replaying on a machine that differs from the captured one.
    pub fn force_machine(mut self) -> Self {
        self.force_machine = true;
        self
    }
}

/// Result of replaying one trace.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Metrics of the replayed run — bit-identical to the live run the
    /// trace was captured from.
    pub metrics: RunMetrics,
    /// The workload spec the replay resolved from the trace header.
    pub spec: WorkloadSpec,
}

fn sockets_of_mask(mask: u64) -> Vec<SocketId> {
    (0..64)
        .filter(|bit| mask & (1 << bit) != 0)
        .map(|bit| SocketId::new(bit as u16))
        .collect()
}

/// Replays `trace` on a fresh system built from `params` and returns the
/// reproduced metrics.
///
/// `params` must describe the same machine the capture ran on: the machine
/// fingerprint recorded in the trace header is checked against the one
/// `params` builds, and a mismatch is rejected (a mismatched machine would
/// silently produce different metrics).  Use [`replay_trace_with`] and
/// [`ReplayOptions::force_machine`] to override.  The access count and seed
/// are taken from the trace itself.
///
/// # Errors
///
/// Fails if the machine fingerprint does not match, the trace references an
/// unknown workload, its events cannot be applied (e.g. an access lane
/// precedes process creation), or a VM / Mitosis operation fails.
pub fn replay_trace(trace: &Trace, params: &SimParams) -> Result<ReplayOutcome, ReplayError> {
    replay_trace_with(trace, params, ReplayOptions::default())
}

/// [`replay_trace`] with explicit [`ReplayOptions`].
///
/// # Errors
///
/// Same conditions as [`replay_trace`]; the machine-fingerprint check is
/// downgraded to a stderr warning when `options.force_machine` is set.
pub fn replay_trace_with(
    trace: &Trace,
    params: &SimParams,
    options: ReplayOptions,
) -> Result<ReplayOutcome, ReplayError> {
    let expected = MachineFingerprint::for_params(params);
    if trace.meta.machine != expected {
        if options.force_machine {
            eprintln!(
                "warning: replaying a trace captured on a different machine \
                 (trace: {}; replay: {}); metrics will not match the capture",
                trace.meta.machine, expected
            );
        } else {
            return Err(ReplayError::Mismatch(format!(
                "trace was captured on a different machine (trace: {}; replay: {}); \
                 replay would silently produce different metrics — use the same \
                 machine parameters or force the replay",
                trace.meta.machine, expected
            )));
        }
    }
    let spec = trace.meta.resolve_spec().ok_or_else(|| {
        ReplayError::Mismatch(format!(
            "trace workload {:?} does not resolve to a suite spec",
            trace.meta.workload
        ))
    })?;

    let machine = params.machine();
    let mitosis = Mitosis::new();
    let install = trace.setup_events.contains(&TraceEvent::InstallMitosis);
    let mut system = if install {
        mitosis.install(machine)
    } else {
        System::new(machine)
    };
    if let Some(probability) = params.fragmentation {
        system
            .pt_env_mut()
            .alloc
            .set_fragmentation(FragmentationModel::with_probability(probability));
    }

    let mut pid = None;
    let mut region = None;
    for event in &trace.setup_events {
        match *event {
            TraceEvent::InstallMitosis => {
                if pid.is_some() {
                    return Err(ReplayError::Mismatch(
                        "InstallMitosis recorded after process creation".into(),
                    ));
                }
            }
            TraceEvent::SetThp(always) => {
                system.set_thp(if always {
                    ThpMode::Always
                } else {
                    ThpMode::Never
                });
            }
            TraceEvent::PtPlacement { socket } => {
                system.set_pt_placement(PtPlacement::Fixed(SocketId::new(socket)));
            }
            TraceEvent::CreateProcess { socket } => {
                pid = Some(system.create_process(SocketId::new(socket))?);
            }
            TraceEvent::BindData { socket } => {
                let pid = pid
                    .ok_or_else(|| ReplayError::Mismatch("BindData before CreateProcess".into()))?;
                system
                    .process_mut(pid)?
                    .set_data_policy(PlacementPolicy::Bind(SocketId::new(socket)));
            }
            TraceEvent::Mmap { len, populate, thp } => {
                let pid =
                    pid.ok_or_else(|| ReplayError::Mismatch("Mmap before CreateProcess".into()))?;
                let mut flags = if populate {
                    MmapFlags::populate()
                } else {
                    MmapFlags::lazy()
                };
                if !thp {
                    flags = flags.without_thp();
                }
                region = Some(system.mmap(pid, len, flags)?);
            }
            TraceEvent::Populate {
                len,
                parallel,
                sockets,
            } => {
                let pid = pid
                    .ok_or_else(|| ReplayError::Mismatch("Populate before CreateProcess".into()))?;
                let region =
                    region.ok_or_else(|| ReplayError::Mismatch("Populate before Mmap".into()))?;
                let init = if parallel {
                    InitPattern::Parallel
                } else {
                    InitPattern::SingleThread
                };
                ExecutionEngine::populate(
                    &mut system,
                    pid,
                    region,
                    len,
                    init,
                    &sockets_of_mask(sockets),
                )?;
            }
            TraceEvent::MigratePageTable { socket } => {
                let pid = pid.ok_or_else(|| {
                    ReplayError::Mismatch("MigratePageTable before CreateProcess".into())
                })?;
                if !install {
                    return Err(ReplayError::Mismatch(
                        "MigratePageTable without InstallMitosis".into(),
                    ));
                }
                mitosis.migrate_page_table(&mut system, pid, SocketId::new(socket), true)?;
            }
            TraceEvent::Interference { sockets } => {
                system
                    .machine_mut()
                    .cost_model_mut()
                    .set_interference(Interference::on(sockets_of_mask(sockets)));
            }
            TraceEvent::Marker(_) => {}
        }
    }

    let pid =
        pid.ok_or_else(|| ReplayError::Mismatch("trace has no CreateProcess setup event".into()))?;
    let region =
        region.ok_or_else(|| ReplayError::Mismatch("trace has no Mmap setup event".into()))?;
    if trace.lanes.is_empty() {
        return Err(ReplayError::Mismatch("trace has no access lanes".into()));
    }
    let accesses_per_thread = trace.lanes[0].accesses.len() as u64;
    if trace
        .lanes
        .iter()
        .any(|l| l.accesses.len() as u64 != accesses_per_thread)
    {
        return Err(ReplayError::Mismatch(
            "trace lanes have unequal lengths".into(),
        ));
    }

    let threads: Vec<ThreadPlacement> = trace
        .lanes
        .iter()
        .map(|lane| {
            let socket = SocketId::new(lane.socket);
            ThreadPlacement {
                core: system.machine().first_core_of_socket(socket),
                socket,
            }
        })
        .collect();
    let mut cursors: Vec<LaneCursor> = trace
        .lanes
        .iter()
        .map(|lane| LaneCursor::new(&lane.accesses))
        .collect();

    let mut engine = ExecutionEngine::new(&system);
    let metrics = engine.run_with_sources(
        &mut system,
        pid,
        &spec,
        region,
        &threads,
        accesses_per_thread,
        &mut cursors,
    )?;
    Ok(ReplayOutcome { metrics, spec })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceLane, TraceMeta};
    use mitosis_workloads::suite;

    #[test]
    fn lane_cursor_yields_in_order() {
        let accesses = [
            Access {
                offset: 8,
                is_write: false,
            },
            Access {
                offset: 16,
                is_write: true,
            },
        ];
        let mut cursor = LaneCursor::new(&accesses);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.next_access(), accesses[0]);
        assert_eq!(cursor.next_access(), accesses[1]);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn replay_rejects_traces_without_setup() {
        let params = SimParams::quick_test();
        let spec = params.scale_workload(&suite::gups());
        let trace = Trace {
            meta: TraceMeta::for_spec(&spec, &params),
            setup_events: vec![],
            lanes: vec![TraceLane::new(0)],
        };
        let err = replay_trace(&trace, &params).unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");
    }

    #[test]
    fn install_mitosis_is_honored_anywhere_before_process_creation() {
        // InstallMitosis need not be the very first event (e.g. SetThp may
        // precede it); the replay must still install the Mitosis backend,
        // observable through MigratePageTable succeeding.
        let params = SimParams::quick_test().with_accesses(50);
        let spec = params.scale_workload(&suite::gups());
        let mut trace = Trace {
            meta: TraceMeta::for_spec(&spec, &params),
            setup_events: vec![
                TraceEvent::SetThp(false),
                TraceEvent::InstallMitosis,
                TraceEvent::CreateProcess { socket: 0 },
                TraceEvent::Mmap {
                    len: spec.footprint(),
                    populate: false,
                    thp: true,
                },
                TraceEvent::Populate {
                    len: spec.footprint(),
                    parallel: false,
                    sockets: 0b1,
                },
                TraceEvent::MigratePageTable { socket: 0 },
            ],
            lanes: vec![crate::capture::capture_stream(&spec, params.seed, 0, 50)],
        };
        replay_trace(&trace, &params).expect("non-first InstallMitosis must be honored");

        // But after process creation it is an error, not a silent no-op.
        trace.setup_events = vec![
            TraceEvent::CreateProcess { socket: 0 },
            TraceEvent::InstallMitosis,
            TraceEvent::Mmap {
                len: spec.footprint(),
                populate: false,
                thp: true,
            },
        ];
        let err = replay_trace(&trace, &params).unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");
    }

    #[test]
    fn replay_rejects_unknown_workloads() {
        let params = SimParams::quick_test();
        let trace = Trace {
            meta: TraceMeta {
                workload: "doom".into(),
                footprint: 1 << 26,
                seed: 7,
                write_fraction: 0.0,
                compute_cycles_per_access: 1,
                bandwidth_intensity: 0.0,
                // Matching machine, so the failure is the unknown workload.
                machine: MachineFingerprint::for_params(&params),
            },
            setup_events: vec![TraceEvent::CreateProcess { socket: 0 }],
            lanes: vec![],
        };
        let err = replay_trace(&trace, &params).unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");
    }
}
