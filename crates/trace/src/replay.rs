//! Deterministic trace replay.
//!
//! [`replay_trace`] rebuilds the captured experiment from scratch — a fresh
//! [`System`], the recorded setup events applied in order, one
//! [`LaneCursor`] per captured thread — and drives the existing
//! [`ExecutionEngine`] with it.  Mid-lane phase-change markers are lifted
//! back into a [`PhaseSchedule`] and re-applied at the same access-count
//! boundaries.  Because the engine is fed the exact access sequence the
//! capture recorded (and the substrate is fully deterministic), the
//! replayed [`RunMetrics`] are bit-identical to the live run's — for
//! static *and* dynamic captures.
//!
//! [`TraceReplayer`] is the reusable form: it keeps one [`ExecutionEngine`]
//! (pooled MMUs, allocated caches) across replays, resetting it per trace,
//! which shaves the per-run setup cost that dominates for short traces.
//! [`replay_trace_lane`] replays a single lane of a trace against its own
//! freshly reconstructed system — the building block of lane-granular
//! parallel replay.
//!
//! Replay is split into *prepare* and *run*: [`prepare_replay`] executes
//! the header checks and setup events once, producing a cloneable
//! [`ReplaySnapshot`] of the full prepared system, and
//! [`TraceReplayer::replay_snapshot`] /
//! [`TraceReplayer::replay_snapshot_lanes`] run the measured phase from a
//! *clone* of that snapshot.  Running from a clone is bit-identical to
//! re-executing the setup — the parallel lane-group driver relies on this
//! to prepare once and fan copies out to its workers.

use crate::format::{MachineFingerprint, Trace, TraceError, TraceEvent, TraceLane};
use crate::session::{ReplayRequest, ReplaySession};
use mitosis::{Mitosis, MitosisError};
use mitosis_mem::{FragmentationModel, PlacementPolicy};
use mitosis_numa::{Interference, NodeMask, SocketId};
use mitosis_pt::VirtAddr;
use mitosis_sim::{
    EngineCheckpoint, ExecutionEngine, Observer, PhaseChange, PhaseEvent, PhaseSchedule,
    PreparedSystem, RunMetrics, SimParams, SpanOutcome, ThreadPlacement,
};
use mitosis_vmm::{AutoNuma, MmapFlags, PtPlacement, System, ThpMode, VmError};
use mitosis_workloads::{Access, AccessSource, InitPattern, WorkloadSpec};
use std::fmt;
use std::time::{Duration, Instant};

/// Errors produced while replaying a trace.
#[derive(Debug)]
pub enum ReplayError {
    /// The trace itself could not be decoded.
    Trace(TraceError),
    /// A virtual-memory operation failed during event replay.
    Vm(VmError),
    /// A Mitosis operation failed during event replay.
    Mitosis(MitosisError),
    /// The trace is inconsistent with the replay request (unknown workload,
    /// missing events, mismatched lane lengths, ...).
    Mismatch(String),
    /// A replay worker panicked and the panic was caught at the worker
    /// boundary instead of unwinding into the caller.  Carries the panic
    /// payload's message when it was a string.
    Panic(String),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "replay failed to decode trace: {e}"),
            ReplayError::Vm(e) => write!(f, "replay VM operation failed: {e}"),
            ReplayError::Mitosis(e) => write!(f, "replay Mitosis operation failed: {e}"),
            ReplayError::Mismatch(what) => write!(f, "trace/replay mismatch: {what}"),
            ReplayError::Panic(what) => write!(f, "replay worker panicked: {what}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Trace(e) => Some(e),
            ReplayError::Vm(e) => Some(e),
            ReplayError::Mitosis(e) => Some(e),
            ReplayError::Mismatch(_) | ReplayError::Panic(_) => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<VmError> for ReplayError {
    fn from(e: VmError) -> Self {
        ReplayError::Vm(e)
    }
}

impl From<MitosisError> for ReplayError {
    fn from(e: MitosisError) -> Self {
        ReplayError::Mitosis(e)
    }
}

/// An [`AccessSource`] feeding a captured lane to the execution engine.
#[derive(Debug, Clone)]
pub struct LaneCursor<'a> {
    accesses: &'a [Access],
    position: usize,
}

impl<'a> LaneCursor<'a> {
    /// A cursor over `accesses`, starting at the beginning.
    pub fn new(accesses: &'a [Access]) -> Self {
        LaneCursor {
            accesses,
            position: 0,
        }
    }

    /// A cursor that has already consumed `position` accesses — the resume
    /// path of checkpoint/resume replay, where the engine restarts mid-lane.
    pub fn at(accesses: &'a [Access], position: usize) -> Self {
        LaneCursor { accesses, position }
    }

    /// Accesses not yet consumed.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.position
    }
}

impl AccessSource for LaneCursor<'_> {
    fn next_access(&mut self) -> Access {
        let access = self.accesses[self.position];
        self.position += 1;
        access
    }
}

/// Knobs for [`replay_trace_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayOptions {
    /// Proceed when the trace's recorded machine fingerprint does not match
    /// the replay machine; the downgraded mismatch is recorded on
    /// [`ReplayOutcome::machine_mismatch`].  The replayed metrics are then
    /// **not** comparable to the capture's.
    pub force_machine: bool,
}

impl ReplayOptions {
    /// Default options: machine mismatches are rejected.
    pub fn new() -> Self {
        ReplayOptions::default()
    }

    /// Allows replaying on a machine that differs from the captured one.
    pub fn force_machine(mut self) -> Self {
        self.force_machine = true;
        self
    }
}

/// A machine-fingerprint mismatch that was downgraded to a recorded
/// warning by [`ReplayOptions::force_machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineMismatch {
    /// The machine the trace was captured on.
    pub captured: MachineFingerprint,
    /// The machine the replay actually ran on.
    pub replayed: MachineFingerprint,
}

impl fmt::Display for MachineMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace captured on a different machine (trace: {}; replay: {}); \
             metrics will not match the capture",
            self.captured, self.replayed
        )
    }
}

/// Whether a replay ran the whole captured trace or a salvaged prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayCompleteness {
    /// The full trace was replayed.
    Complete,
    /// The trace bytes were damaged and the replay ran the longest
    /// checkpoint-attested prefix instead (see
    /// [`Trace::recover`]); the metrics cover only that prefix.
    Salvaged {
        /// Accesses (per lane) that survived salvage and were replayed.
        valid_accesses: u64,
        /// Decoded accesses discarded because they were past the last
        /// attested checkpoint.
        lost_accesses: u64,
    },
}

/// Result of replaying one trace.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Metrics of the replayed run — bit-identical to the live run the
    /// trace was captured from.
    pub metrics: RunMetrics,
    /// The workload spec the replay resolved from the trace header.
    pub spec: WorkloadSpec,
    /// `Some` when [`ReplayOptions::force_machine`] downgraded a machine
    /// fingerprint mismatch: the replay ran, but its metrics are not
    /// comparable to the capture's.  Library callers (and tests) observe
    /// the downgrade here instead of on stderr.
    pub machine_mismatch: Option<MachineMismatch>,
    /// Host time spent obtaining the prepared system this outcome ran
    /// from: the full setup-event reconstruction when the replay prepared
    /// its own system, or just the snapshot *clone* when it ran from a
    /// shared [`ReplaySnapshot`] — the difference is the whole point of
    /// snapshot-based replay.
    pub setup_wall: Duration,
    /// Host time of the measured phase alone (the part whose simulated
    /// metrics are reported).  Throughput figures divide by this, not by
    /// `setup_wall + measured_wall`, so they no longer understate the
    /// measured-phase rate by folding setup reconstruction in.
    pub measured_wall: Duration,
    /// Whether the whole trace ran, or only a salvaged prefix of a damaged
    /// one ([`TraceReplayer::replay_salvaged`]).  Plain replay entry points
    /// always report [`ReplayCompleteness::Complete`].
    pub completeness: ReplayCompleteness,
}

fn sockets_of_mask(mask: u64) -> Vec<SocketId> {
    (0u16..64)
        .filter(|&bit| mask & (1u64 << bit) != 0)
        .map(SocketId::new)
        .collect()
}

/// The phase change a mid-lane marker stands for, or `None` for events
/// that are only meaningful as setup (or the free-form [`TraceEvent::Marker`]).
fn phase_change_of_event(event: TraceEvent) -> Option<PhaseChange> {
    match event {
        TraceEvent::MigrateData { socket, .. } => Some(PhaseChange::MigrateData {
            target: SocketId::new(socket),
        }),
        TraceEvent::MigratePageTable { socket } => Some(PhaseChange::MigratePageTable {
            target: SocketId::new(socket),
        }),
        TraceEvent::Replicate { sockets } => Some(PhaseChange::SetReplicas {
            sockets: NodeMask::from_bits(sockets),
        }),
        TraceEvent::AutoNumaRebalance { sockets, .. } => Some(PhaseChange::AutoNumaRebalance {
            sockets: NodeMask::from_bits(sockets),
        }),
        TraceEvent::Interference { sockets, .. } => Some(PhaseChange::SetInterference {
            sockets: NodeMask::from_bits(sockets),
        }),
        TraceEvent::Fork => Some(PhaseChange::Fork),
        TraceEvent::MmapAt { addr, len } => Some(PhaseChange::MmapAt {
            addr: VirtAddr::new(addr),
            length: len,
        }),
        TraceEvent::MunmapAt { addr, len } => Some(PhaseChange::MunmapAt {
            addr: VirtAddr::new(addr),
            length: len,
        }),
        TraceEvent::PromoteHuge { addr } => Some(PhaseChange::PromoteHuge {
            addr: VirtAddr::new(addr),
        }),
        TraceEvent::DemoteHuge { addr } => Some(PhaseChange::DemoteHuge {
            addr: VirtAddr::new(addr),
        }),
        _ => None,
    }
}

/// Rebuilds the phase-change schedule from the mid-lane markers — a
/// per-lane reconstruction.
///
/// Global phase changes fire at one boundary across all threads, so the
/// capture writes their markers into every lane; those markers must agree
/// across lanes, and the redundancy doubles as an integrity check here.
/// *Staggered* markers (format v4) are observed by one thread only and
/// live in that thread's lane alone: each lane's staggered markers are
/// lifted back into thread-filtered [`PhaseEvent`]s targeting that lane's
/// thread index, so the lanes of a staggered capture legitimately
/// disagree.  Free-form [`TraceEvent::Marker`]s are ignored.
fn schedule_of_lanes(lanes: &[TraceLane]) -> Result<PhaseSchedule, ReplayError> {
    // Free-form `Marker`s are not phase changes: they may legitimately
    // differ between lanes (and did not constrain replay before dynamic
    // scenarios existed), so they are filtered out before the cross-lane
    // consistency check, as are the explicitly per-lane staggered markers.
    let global_events = |lane: &TraceLane| -> Vec<(u64, TraceEvent)> {
        lane.events
            .iter()
            .filter(|(_, event)| !matches!(event, TraceEvent::Marker(_)) && !event.staggered())
            .copied()
            .collect()
    };
    let reference = global_events(&lanes[0]);
    for (index, lane) in lanes.iter().enumerate().skip(1) {
        if global_events(lane) != reference {
            return Err(ReplayError::Mismatch(format!(
                "lane {index} disagrees with lane 0 on mid-lane phase events \
                 (unstaggered phase changes must fire at one boundary across \
                 all threads)"
            )));
        }
    }
    let mut events = Vec::new();
    for (position, event) in reference {
        match phase_change_of_event(event) {
            Some(change) => events.push(PhaseEvent {
                at_access: position,
                change,
                thread: None,
            }),
            None => {
                return Err(ReplayError::Mismatch(format!(
                    "setup-only event {event:?} recorded inside a lane"
                )))
            }
        }
    }
    for (thread, lane) in lanes.iter().enumerate() {
        for &(position, event) in lane.events.iter().filter(|(_, e)| e.staggered()) {
            let change = phase_change_of_event(event)
                .expect("staggered markers are phase changes by construction");
            events.push(PhaseEvent {
                at_access: position,
                change,
                thread: Some(thread),
            });
        }
    }
    // `from_events` re-sorts into the canonical firing order (globals
    // before staggered, staggered by thread), which is exactly the order
    // the capture fired and recorded them in — the round trip is exact.
    Ok(PhaseSchedule::from_events(events))
}

/// A captured experiment reconstructed up to the measured phase: the
/// system with every setup event applied, ready to run lanes.
///
/// Produced once per trace by [`prepare_replay`], then *cloned* into every
/// run that needs it — serial re-runs, one copy per lane group in
/// [`replay_parallel_lanes`](crate::replay_parallel_lanes) — instead of
/// re-executing the setup events per run.  The clone is a deep copy of the
/// full simulated state (see [`PreparedSystem`]), so running from a clone
/// is bit-identical to running after a fresh setup replay; it merely costs
/// a memcpy-shaped copy instead of re-faulting every page of the footprint.
///
/// The snapshot borrows nothing from the [`Trace`]: lane accesses stay in
/// the trace, and the run entry points take both (the snapshot must have
/// been prepared from the same trace, which is checked cheaply via the
/// lane count and per-lane access count).
///
/// A snapshot is not limited to the post-setup boundary:
/// [`TraceReplayer::checkpoint_at`] pauses a replay mid-lane and returns a
/// snapshot of the partially run system (`at_access > 0`, with the engine's
/// own checkpoint attached), and [`TraceReplayer::resume_from`] finishes it
/// — bit-identical to the uninterrupted run.
#[derive(Debug, Clone)]
pub struct ReplaySnapshot {
    prepared: PreparedSystem,
    spec: WorkloadSpec,
    lanes: usize,
    accesses_per_thread: u64,
    schedule: PhaseSchedule,
    machine: MachineFingerprint,
    machine_mismatch: Option<MachineMismatch>,
    setup_wall: Duration,
    /// Accesses per lane already consumed: 0 for a post-setup snapshot,
    /// the pause boundary for a mid-run one.
    at_access: u64,
    /// The engine's own mid-run state (per-thread totals, MMU models,
    /// phase-schedule position) when this snapshot paused inside the
    /// measured phase; `None` at the post-setup boundary.
    engine: Option<EngineCheckpoint>,
    /// The lane selection a mid-run snapshot was paused with.  Its
    /// `schedule` is already retargeted to that selection, so resuming must
    /// use the identical selection (enforced, not assumed).
    selection: Option<Vec<usize>>,
}

impl ReplaySnapshot {
    /// The workload spec resolved from the trace header.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Accesses per lane already consumed when this snapshot was taken:
    /// 0 for a post-setup snapshot from [`prepare_replay`], the pause
    /// boundary for a mid-run snapshot from [`TraceReplayer::checkpoint_at`].
    pub fn at_access(&self) -> u64 {
        self.at_access
    }

    /// Host time the setup-event reconstruction took — the cost every
    /// additional worker group *avoids* by cloning this snapshot.
    pub fn setup_wall(&self) -> Duration {
        self.setup_wall
    }

    /// The recorded machine-fingerprint mismatch, when
    /// [`ReplayOptions::force_machine`] downgraded one during preparation.
    pub fn machine_mismatch(&self) -> Option<MachineMismatch> {
        self.machine_mismatch
    }

    /// The prepared simulated system (setup applied, measured phase not
    /// yet run).
    pub fn prepared(&self) -> &PreparedSystem {
        &self.prepared
    }

    /// Whether this snapshot is eligible for [`ReplaySnapshot::clone_scoped`]:
    /// it must stand at the post-setup boundary (`at_access == 0`, no engine
    /// checkpoint) with an *empty* phase schedule — a mid-lane migration or
    /// replication allocates frames the scoped clone would not carry, so any
    /// scheduled phase change disqualifies the snapshot.
    ///
    /// This is a necessary condition only; the caller must additionally
    /// prove the lanes it will run cannot demand-fault (every accessed page
    /// premapped by setup).  Scoped clones are an optimisation, never a
    /// correctness commitment: when in doubt, clone the whole snapshot.
    pub fn supports_scoped_clone(&self) -> bool {
        self.at_access == 0 && self.engine.is_none() && self.schedule.events().is_empty()
    }

    /// Clones only the slice of the prepared system that a run confined to
    /// `sockets` and `va_ranges` can touch — per-socket frame-table ranges,
    /// the covering VMA subtrees, and the page-table subtrees resolving the
    /// ranges — instead of deep-copying the whole footprint (see
    /// [`PreparedSystem::clone_scoped`]).  Running lanes inside the scope
    /// from the partial clone is bit-identical to running them from a full
    /// clone; the partial clone merely costs proportionally to the scope.
    ///
    /// The returned snapshot's `setup_wall` records the clone cost alone,
    /// like any snapshot-clone run path.
    ///
    /// # Errors
    ///
    /// Fails when the scope is invalid for the prepared system (unknown
    /// socket, range outside any VMA).  Only call on snapshots where
    /// [`ReplaySnapshot::supports_scoped_clone`] holds.
    pub fn clone_scoped(
        &self,
        sockets: &[SocketId],
        va_ranges: &[(VirtAddr, VirtAddr)],
    ) -> Result<ReplaySnapshot, ReplayError> {
        let clone_start = Instant::now();
        let prepared = self.prepared.clone_scoped(sockets, va_ranges)?;
        Ok(ReplaySnapshot {
            prepared,
            spec: self.spec.clone(),
            lanes: self.lanes,
            accesses_per_thread: self.accesses_per_thread,
            schedule: self.schedule.clone(),
            machine: self.machine,
            machine_mismatch: self.machine_mismatch,
            setup_wall: clone_start.elapsed(),
            at_access: 0,
            engine: None,
            selection: None,
        })
    }

    /// Cheap consistency check that `trace` is plausibly the trace this
    /// snapshot was prepared from: the lane count and *every* lane's
    /// access count must match the prepared shape.  (A shape-identical
    /// but content-different trace is undetectable here; the check exists
    /// to turn the common mix-up into an error instead of an out-of-range
    /// cursor panic or silently wrong metrics.)
    fn check_trace(&self, trace: &Trace) -> Result<(), ReplayError> {
        if trace.lanes.len() != self.lanes
            || trace
                .lanes
                .iter()
                .any(|lane| lane.accesses.len() as u64 != self.accesses_per_thread)
        {
            return Err(ReplayError::Mismatch(
                "snapshot was prepared from a different trace (lane shape differs)".into(),
            ));
        }
        Ok(())
    }
}

/// Replays `trace` on a fresh system built from `params` and returns the
/// reproduced metrics.
///
/// `params` must describe the same machine the capture ran on: the machine
/// fingerprint recorded in the trace header is checked against the one
/// `params` builds, and a mismatch is rejected (a mismatched machine would
/// silently produce different metrics).  Use [`replay_trace_with`] and
/// [`ReplayOptions::force_machine`] to override.  The access count and seed
/// are taken from the trace itself.
///
/// # Errors
///
/// Fails if the machine fingerprint does not match, the trace references an
/// unknown workload, its events cannot be applied (e.g. an access lane
/// precedes process creation), or a VM / Mitosis operation fails.
#[deprecated(note = "use `ReplaySession::replay` with the default `ReplayRequest`")]
pub fn replay_trace(trace: &Trace, params: &SimParams) -> Result<ReplayOutcome, ReplayError> {
    Ok(ReplaySession::new(params)
        .without_snapshot_cache()
        .replay(trace, &ReplayRequest::new())?
        .outcome)
}

/// [`replay_trace`] with explicit [`ReplayOptions`].
///
/// # Errors
///
/// Same conditions as [`replay_trace`]; the machine-fingerprint check is
/// downgraded to a stderr warning when `options.force_machine` is set.
#[deprecated(note = "use `ReplaySession::replay` with `ReplayRequest::force_machine` as needed")]
pub fn replay_trace_with(
    trace: &Trace,
    params: &SimParams,
    options: ReplayOptions,
) -> Result<ReplayOutcome, ReplayError> {
    Ok(ReplaySession::new(params)
        .without_snapshot_cache()
        .replay(trace, &request_of_options(options))?
        .outcome)
}

/// The [`ReplayRequest`] equivalent of legacy [`ReplayOptions`] — shared by
/// the deprecated wrappers.
fn request_of_options(options: ReplayOptions) -> ReplayRequest {
    if options.force_machine {
        ReplayRequest::new().force_machine()
    } else {
        ReplayRequest::new()
    }
}

/// Replays trace `bytes`, salvaging a damaged stream to its longest
/// checkpoint-attested prefix instead of giving up; see
/// [`TraceReplayer::replay_salvaged`].
///
/// # Errors
///
/// Same conditions as [`TraceReplayer::replay_salvaged`].
#[deprecated(note = "use `ReplaySession::replay_bytes` with `ReplayRequest::salvage`")]
pub fn replay_trace_salvaged(
    bytes: &[u8],
    params: &SimParams,
    options: ReplayOptions,
) -> Result<ReplayOutcome, ReplayError> {
    Ok(ReplaySession::new(params)
        .without_snapshot_cache()
        .replay_bytes(bytes, &request_of_options(options).salvage())?
        .outcome)
}

/// Replays a single lane of `trace` on its own freshly reconstructed
/// system and returns that lane's per-thread metrics.
///
/// The full setup (and the mid-lane phase-change schedule) is replayed
/// exactly as for a whole-trace replay; only the selected lane's accesses
/// run.  When the trace's lanes are independent — distinct sockets, no
/// demand faults — merging every lane's metrics with
/// [`RunMetrics::merge`] reproduces the whole-trace replay bit-for-bit;
/// the lane-granular parallel driver verifies those conditions.
///
/// # Errors
///
/// Same conditions as [`replay_trace`], plus a mismatch for an
/// out-of-range lane index.
#[deprecated(note = "use `ReplaySession::replay` with `ReplayRequest::lane`")]
pub fn replay_trace_lane(
    trace: &Trace,
    params: &SimParams,
    options: ReplayOptions,
    lane: usize,
) -> Result<ReplayOutcome, ReplayError> {
    Ok(ReplaySession::new(params)
        .without_snapshot_cache()
        .replay(trace, &request_of_options(options).lane(lane))?
        .outcome)
}

/// Replays a subset of `trace`'s lanes — in lane order, against one
/// freshly reconstructed system — and returns their merged metrics.
///
/// This is the unit of work of the per-socket lane groups in
/// [`replay_parallel_lanes`](crate::replay_parallel_lanes): lanes sharing
/// a socket interact through that socket's page-table-line cache, so they
/// must replay *together* and in lane order to reproduce the whole-trace
/// replay; lanes on other sockets touch disjoint caches and may replay in
/// other groups.  Mid-lane phase changes are re-applied at the same
/// boundaries; changes staggered onto lanes outside `lanes` still mutate
/// the system (keeping its evolution identical to the whole-trace replay)
/// without any selected lane observing them.
///
/// # Errors
///
/// Same conditions as [`replay_trace`], plus a mismatch for an empty
/// selection, an out-of-range lane index, or a selection that is not
/// strictly increasing (group replay is order-sensitive, so a shuffled
/// selection would silently diverge).
#[deprecated(note = "use `ReplaySession::replay` with `ReplayRequest::lanes`")]
pub fn replay_trace_lanes(
    trace: &Trace,
    params: &SimParams,
    options: ReplayOptions,
    lanes: &[usize],
) -> Result<ReplayOutcome, ReplayError> {
    Ok(ReplaySession::new(params)
        .without_snapshot_cache()
        .replay(trace, &request_of_options(options).lanes(lanes.to_vec()))?
        .outcome)
}

/// A reusable replay driver: keeps one [`ExecutionEngine`] (pooled MMUs,
/// allocated per-socket caches) across replays and resets it per trace, so
/// batch replay does not pay the engine construction cost per trace.
///
/// Metrics are bit-identical to one-shot [`replay_trace`] calls: a reset
/// engine is indistinguishable from a fresh one.
#[derive(Debug, Default)]
pub struct TraceReplayer {
    /// The pooled engine, tagged with the machine it was built for (an
    /// engine's cache capacities are machine-derived, so a replayer used
    /// across differently scaled machines rebuilds instead of reusing).
    engine: Option<(MachineFingerprint, ExecutionEngine)>,
    /// Observer handed to the engine on every run (spans, counters and the
    /// interval metrics stream).  Defaults to [`Observer::none`], which
    /// records nothing; replayed metrics are bit-identical either way.
    observer: Observer,
    /// Track (timeline) this replayer's spans and interval samples carry —
    /// the lane-group track in parallel replay, 0 otherwise.
    track: u64,
}

impl TraceReplayer {
    /// Creates a replayer with no pooled engine yet.
    pub fn new() -> Self {
        TraceReplayer::default()
    }

    /// Installs the observer later replays report spans, counters and the
    /// interval metrics stream to.  Observing never changes replayed
    /// metrics.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    /// Sets the track (timeline) this replayer's spans and interval samples
    /// are tagged with.
    pub fn set_observer_track(&mut self, track: u64) {
        self.track = track;
    }

    /// The installed observer.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// Replays `trace` (strict machine check); see [`replay_trace`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace`].
    #[deprecated(note = "use `ReplaySession::replay` with the default `ReplayRequest`")]
    pub fn replay(
        &mut self,
        trace: &Trace,
        params: &SimParams,
    ) -> Result<ReplayOutcome, ReplayError> {
        self.replay_full(trace, params, ReplayOptions::default())
    }

    /// Replays `trace` with explicit options; see [`replay_trace_with`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace_with`].
    #[deprecated(
        note = "use `ReplaySession::replay` with `ReplayRequest::force_machine` as needed"
    )]
    pub fn replay_with(
        &mut self,
        trace: &Trace,
        params: &SimParams,
        options: ReplayOptions,
    ) -> Result<ReplayOutcome, ReplayError> {
        self.replay_full(trace, params, options)
    }

    /// Prepare + run in one call — the non-deprecated body behind the
    /// deprecated whole-trace entry points, and the per-trace unit of
    /// [`ReplaySession::replay_batch`](crate::ReplaySession::replay_batch).
    pub(crate) fn replay_full(
        &mut self,
        trace: &Trace,
        params: &SimParams,
        options: ReplayOptions,
    ) -> Result<ReplayOutcome, ReplayError> {
        let prepared = {
            let _span = self.observer.span("prepare_replay", self.track);
            prepare_replay(trace, params, options)?
        };
        self.run_lanes(prepared, trace, None)
    }

    /// Replays one lane of `trace`; see [`replay_trace_lane`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace_lane`].
    #[deprecated(note = "use `ReplaySession::replay` with `ReplayRequest::lane`")]
    pub fn replay_lane(
        &mut self,
        trace: &Trace,
        params: &SimParams,
        options: ReplayOptions,
        lane: usize,
    ) -> Result<ReplayOutcome, ReplayError> {
        self.replay_lanes_full(trace, params, options, &[lane])
    }

    /// Replays a subset of lanes in lane order against one reconstructed
    /// system; see [`replay_trace_lanes`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace_lanes`].
    #[deprecated(note = "use `ReplaySession::replay` with `ReplayRequest::lanes`")]
    pub fn replay_lanes(
        &mut self,
        trace: &Trace,
        params: &SimParams,
        options: ReplayOptions,
        lanes: &[usize],
    ) -> Result<ReplayOutcome, ReplayError> {
        self.replay_lanes_full(trace, params, options, lanes)
    }

    /// Prepare + run an explicit lane selection — the non-deprecated body
    /// behind the deprecated lane entry points.
    pub(crate) fn replay_lanes_full(
        &mut self,
        trace: &Trace,
        params: &SimParams,
        options: ReplayOptions,
        lanes: &[usize],
    ) -> Result<ReplayOutcome, ReplayError> {
        validate_lane_selection(trace, lanes)?;
        let prepared = {
            let _span = self.observer.span("prepare_replay", self.track);
            prepare_replay(trace, params, options)?
        };
        self.run_lanes(prepared, trace, Some(lanes))
    }

    /// Replays all lanes of `trace` from a shared [`ReplaySnapshot`]: the
    /// snapshot is cloned (a deep copy of the prepared system) and the
    /// clone runs the measured phase, so the setup events are **not**
    /// re-executed.  Metrics are bit-identical to [`TraceReplayer::replay`]
    /// on the same trace; the outcome's `setup_wall` records only the clone
    /// cost.
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace`], plus a mismatch when `trace` is
    /// not the trace the snapshot was prepared from.
    pub fn replay_snapshot(
        &mut self,
        snapshot: &ReplaySnapshot,
        trace: &Trace,
    ) -> Result<ReplayOutcome, ReplayError> {
        snapshot.check_trace(trace)?;
        let clone = {
            let _span = self.observer.span("snapshot_clone", self.track);
            clone_snapshot(snapshot)
        };
        self.run_lanes(clone, trace, None)
    }

    /// Replays an ordered subset of `trace`'s lanes from a shared
    /// [`ReplaySnapshot`] — the per-worker unit of snapshot-based lane-group
    /// replay: every group clones the one prepared system instead of
    /// rebuilding it from events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace_lanes`], plus a mismatch when
    /// `trace` is not the trace the snapshot was prepared from.
    pub fn replay_snapshot_lanes(
        &mut self,
        snapshot: &ReplaySnapshot,
        trace: &Trace,
        lanes: &[usize],
    ) -> Result<ReplayOutcome, ReplayError> {
        snapshot.check_trace(trace)?;
        validate_lane_selection(trace, lanes)?;
        let clone = {
            let _span = self.observer.span("snapshot_clone", self.track);
            clone_snapshot(snapshot)
        };
        self.run_lanes(clone, trace, Some(lanes))
    }

    /// Replays `trace` up to `at` accesses per lane and pauses, returning a
    /// mid-run [`ReplaySnapshot`] that [`TraceReplayer::resume_from`] can
    /// finish later — the resumed run's metrics are bit-identical to an
    /// uninterrupted replay.  `at == 0` returns the plain post-setup
    /// snapshot (nothing has run yet).
    ///
    /// The pause lands *before* any phase change scheduled at `at` fires,
    /// so resuming applies it exactly once.
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace`], plus a mismatch when `at` is at
    /// or past the per-lane access count (there is nothing left to resume).
    pub fn checkpoint_at(
        &mut self,
        trace: &Trace,
        params: &SimParams,
        options: ReplayOptions,
        at: u64,
    ) -> Result<ReplaySnapshot, ReplayError> {
        let prepared = {
            let _span = self.observer.span("prepare_replay", self.track);
            prepare_replay(trace, params, options)?
        };
        if at == 0 {
            return Ok(prepared);
        }
        if at >= prepared.accesses_per_thread {
            return Err(ReplayError::Mismatch(format!(
                "checkpoint at access {at} is out of range: lanes have {} \
                 accesses (a checkpoint must pause strictly inside the \
                 measured phase)",
                prepared.accesses_per_thread
            )));
        }
        match self.run_lanes_span(prepared, trace, None, Some(at))? {
            LaneRun::Paused(snapshot) => Ok(*snapshot),
            LaneRun::Completed(_) => unreachable!("engine pauses at every in-range stop boundary"),
        }
    }

    /// Finishes a paused replay from a [`ReplaySnapshot`] taken by
    /// [`TraceReplayer::checkpoint_at`]: the snapshot is cloned (it stays
    /// reusable) and the clone runs from its pause boundary to completion.
    /// The outcome's metrics cover the *whole* measured phase — per-thread
    /// totals carry across the pause — and are bit-identical to an
    /// uninterrupted replay of the same trace.  Also accepts a post-setup
    /// snapshot, behaving like [`TraceReplayer::replay_snapshot`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace`], plus a mismatch when `trace` is
    /// not the trace the snapshot was prepared from.
    pub fn resume_from(
        &mut self,
        snapshot: &ReplaySnapshot,
        trace: &Trace,
    ) -> Result<ReplayOutcome, ReplayError> {
        snapshot.check_trace(trace)?;
        let clone = {
            let _span = self.observer.span("snapshot_clone", self.track);
            clone_snapshot(snapshot)
        };
        let selection = clone.selection.clone();
        match self.run_lanes_span(clone, trace, selection.as_deref(), None)? {
            LaneRun::Completed(outcome) => Ok(*outcome),
            LaneRun::Paused(_) => unreachable!("no stop boundary was requested"),
        }
    }

    /// Replays trace `bytes`, salvaging a damaged stream instead of giving
    /// up: intact bytes replay normally
    /// ([`ReplayCompleteness::Complete`]); a stream that fails to decode is
    /// recovered to its longest checkpoint-attested prefix
    /// ([`Trace::recover`]) and that prefix replays, with the outcome
    /// marked [`ReplayCompleteness::Salvaged`] so partial metrics can never
    /// pass as whole-trace metrics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`replay_trace_with`]; additionally the decode
    /// error of `bytes` when no checkpoint-attested prefix exists to
    /// salvage.
    #[deprecated(note = "use `ReplaySession::replay_bytes` with `ReplayRequest::salvage`")]
    pub fn replay_salvaged(
        &mut self,
        bytes: &[u8],
        params: &SimParams,
        options: ReplayOptions,
    ) -> Result<ReplayOutcome, ReplayError> {
        match Trace::from_bytes(bytes) {
            Ok(trace) => self.replay_full(&trace, params, options),
            Err(_) => {
                let salvaged = Trace::recover(bytes)?;
                let mut outcome = self.replay_full(&salvaged.trace, params, options)?;
                outcome.completeness = ReplayCompleteness::Salvaged {
                    valid_accesses: salvaged.valid_accesses,
                    lost_accesses: salvaged.lost_accesses,
                };
                self.observer.counter("replay.salvaged", 1);
                self.observer
                    .counter("replay.salvaged_lost_accesses", salvaged.lost_accesses);
                Ok(outcome)
            }
        }
    }

    /// Runs the measured phase of a prepared replay over all lanes
    /// (`selection == None`) or an ordered subset, consuming the snapshot
    /// (the one-shot path: no clone is paid).
    pub(crate) fn run_lanes(
        &mut self,
        snapshot: ReplaySnapshot,
        trace: &Trace,
        selection: Option<&[usize]>,
    ) -> Result<ReplayOutcome, ReplayError> {
        match self.run_lanes_span(snapshot, trace, selection, None)? {
            LaneRun::Completed(outcome) => Ok(*outcome),
            LaneRun::Paused(_) => unreachable!("no stop boundary was requested"),
        }
    }

    /// Runs a span of the measured phase: from wherever `snapshot` stands
    /// (post-setup, or mid-run for a checkpoint snapshot) to `stop_at` when
    /// given, else to completion.  Pausing returns a new mid-run snapshot;
    /// completing returns the full-run outcome (totals carry across pauses,
    /// so a resumed run's metrics cover the whole measured phase).
    fn run_lanes_span(
        &mut self,
        snapshot: ReplaySnapshot,
        trace: &Trace,
        selection: Option<&[usize]>,
        stop_at: Option<u64>,
    ) -> Result<LaneRun, ReplayError> {
        let ReplaySnapshot {
            prepared,
            spec,
            lanes,
            accesses_per_thread,
            schedule,
            machine,
            machine_mismatch,
            setup_wall,
            at_access,
            engine: engine_checkpoint,
            selection: paused_selection,
        } = snapshot;
        // A mid-run snapshot's schedule is already retargeted to the
        // selection it paused with, and its engine checkpoint carries that
        // many per-thread states: resuming with any other selection would
        // silently misattribute lanes.  Enforce instead of assuming.
        if engine_checkpoint.is_some() && paused_selection.as_deref() != selection {
            return Err(ReplayError::Mismatch(
                "mid-run snapshot must resume with the lane selection it was \
                 paused with"
                    .into(),
            ));
        }
        let PreparedSystem {
            mut system,
            mut mitosis,
            pid,
            region,
        } = prepared;
        let selected: Vec<&crate::format::TraceLane> = match selection {
            Some(indices) => indices.iter().map(|&index| &trace.lanes[index]).collect(),
            None => trace.lanes.iter().collect(),
        };
        // Thread filters in the reconstructed schedule index the *trace's*
        // lanes; the engine indexes the threads it actually runs.  Remap:
        // a filter naming a selected lane becomes that lane's local index,
        // one naming an absent lane goes out of range (the change still
        // fires, no local thread observes it), keeping the system evolution
        // of every lane subset identical to the whole-trace replay.
        // A mid-run snapshot's schedule was retargeted when it first ran,
        // so it must not be retargeted again.
        let schedule = match (&engine_checkpoint, selection) {
            (None, Some(indices)) => schedule
                .retarget_threads(|lane| indices.iter().position(|&selected| selected == lane)),
            _ => schedule,
        };
        let threads: Vec<ThreadPlacement> = selected
            .iter()
            .map(|lane| {
                let socket = SocketId::new(lane.socket);
                ThreadPlacement {
                    core: system.machine().first_core_of_socket(socket),
                    socket,
                }
            })
            .collect();
        let mut cursors: Vec<LaneCursor> = selected
            .iter()
            .map(|lane| LaneCursor::at(&lane.accesses, at_access as usize))
            .collect();
        let lane_count = cursors.len() as u64;

        let engine = match &mut self.engine {
            Some((pooled_machine, engine)) if *pooled_machine == machine => {
                engine.reset();
                engine
            }
            slot => {
                *slot = Some((machine, ExecutionEngine::new(&system)));
                &mut slot.as_mut().expect("just installed").1
            }
        };
        engine.set_observer(self.observer.clone());
        engine.set_observer_track(self.track);
        let measured_start = Instant::now();
        let span_outcome = {
            let _span = self.observer.span("replay.measured", self.track);
            engine.run_span_with_sources_dynamic(
                &mut system,
                &mut mitosis,
                pid,
                &spec,
                region,
                &threads,
                accesses_per_thread,
                &mut cursors,
                &schedule,
                engine_checkpoint.as_ref(),
                stop_at,
            )?
        };
        match span_outcome {
            SpanOutcome::Completed(metrics) => {
                self.observer.counter("replay.runs", 1);
                self.observer.counter("replay.lanes", lane_count);
                Ok(LaneRun::Completed(Box::new(ReplayOutcome {
                    metrics,
                    spec,
                    machine_mismatch,
                    setup_wall,
                    measured_wall: measured_start.elapsed(),
                    completeness: ReplayCompleteness::Complete,
                })))
            }
            SpanOutcome::Paused(checkpoint) => {
                self.observer.counter("replay.checkpoints", 1);
                let at_access = checkpoint.at_access();
                Ok(LaneRun::Paused(Box::new(ReplaySnapshot {
                    prepared: PreparedSystem {
                        system,
                        mitosis,
                        pid,
                        region,
                    },
                    spec,
                    lanes,
                    accesses_per_thread,
                    schedule,
                    machine,
                    machine_mismatch,
                    setup_wall,
                    at_access,
                    engine: Some(checkpoint),
                    selection: selection.map(<[usize]>::to_vec),
                })))
            }
        }
    }
}

/// Result of running a span of the measured phase: the run either completed
/// or paused at the requested access boundary.
enum LaneRun {
    Completed(Box<ReplayOutcome>),
    Paused(Box<ReplaySnapshot>),
}

/// Validates an explicit lane selection against `trace`: non-empty, in
/// range, strictly increasing (group replay is order-sensitive, so a
/// shuffled selection would silently diverge).
pub(crate) fn validate_lane_selection(trace: &Trace, lanes: &[usize]) -> Result<(), ReplayError> {
    if lanes.is_empty() {
        return Err(ReplayError::Mismatch("empty lane selection".into()));
    }
    if let Some(&lane) = lanes.iter().find(|&&lane| lane >= trace.lanes.len()) {
        return Err(ReplayError::Mismatch(format!(
            "lane {lane} out of range: trace has {} lanes",
            trace.lanes.len()
        )));
    }
    if lanes.windows(2).any(|pair| pair[0] >= pair[1]) {
        return Err(ReplayError::Mismatch(
            "lane selection must be strictly increasing (lanes of a group \
             replay in lane order)"
                .into(),
        ));
    }
    Ok(())
}

/// Clones a shared snapshot for one run, re-stamping `setup_wall` with the
/// clone cost: the run it feeds did not pay for setup reconstruction, only
/// for the copy.
fn clone_snapshot(snapshot: &ReplaySnapshot) -> ReplaySnapshot {
    let clone_start = Instant::now();
    let mut copy = snapshot.clone();
    copy.setup_wall = clone_start.elapsed();
    copy
}

/// Applies the header checks and setup events of `trace` to a fresh
/// system, returning a cloneable [`ReplaySnapshot`] ready for the measured
/// phase.
///
/// This is the *prepare* half of replay's prepare/run split: every replay
/// path (serial, lane-granular, lane-grouped parallel) goes through one
/// `prepare_replay` call, and the parallel driver clones the result per
/// worker group instead of re-executing the setup events per worker.
///
/// # Errors
///
/// Fails if the machine fingerprint does not match (unless
/// `options.force_machine`), the trace references an unknown workload, its
/// events cannot be applied, its lanes are missing or unequal, or a VM /
/// Mitosis operation fails.
pub fn prepare_replay(
    trace: &Trace,
    params: &SimParams,
    options: ReplayOptions,
) -> Result<ReplaySnapshot, ReplayError> {
    let setup_start = Instant::now();
    let expected = MachineFingerprint::for_params(params)?;
    let mut machine_mismatch = None;
    if trace.meta.machine != expected {
        if options.force_machine {
            // Recorded on the outcome (not printed): library callers and
            // tests observe the downgrade without capturing stderr.
            machine_mismatch = Some(MachineMismatch {
                captured: trace.meta.machine,
                replayed: expected,
            });
        } else {
            return Err(ReplayError::Mismatch(format!(
                "trace was captured on a different machine (trace: {}; replay: {}); \
                 replay would silently produce different metrics — use the same \
                 machine parameters or force the replay",
                trace.meta.machine, expected
            )));
        }
    }
    let spec = trace.meta.resolve_spec().ok_or_else(|| {
        ReplayError::Mismatch(format!(
            "trace workload {:?} does not resolve to a suite spec",
            trace.meta.workload
        ))
    })?;

    let machine = params.machine();
    let mut mitosis = Mitosis::new();
    let install = trace.setup_events.contains(&TraceEvent::InstallMitosis);
    let mut system = if install {
        mitosis.install(machine)
    } else {
        System::new(machine)
    };
    if let Some(probability) = params.fragmentation {
        system
            .pt_env_mut()
            .alloc
            .set_fragmentation(FragmentationModel::with_probability(probability));
    }
    system.set_shootdown_mode(params.shootdown_mode);

    let mut pid = None;
    let mut region = None;
    for event in &trace.setup_events {
        match *event {
            TraceEvent::InstallMitosis => {
                if pid.is_some() {
                    return Err(ReplayError::Mismatch(
                        "InstallMitosis recorded after process creation".into(),
                    ));
                }
            }
            TraceEvent::SetThp(always) => {
                system.set_thp(if always {
                    ThpMode::Always
                } else {
                    ThpMode::Never
                });
            }
            TraceEvent::PtPlacement { socket } => {
                system.set_pt_placement(PtPlacement::Fixed(SocketId::new(socket)));
            }
            TraceEvent::CreateProcess { socket } => {
                pid = Some(system.create_process(SocketId::new(socket))?);
            }
            TraceEvent::BindData { socket } => {
                let pid = pid
                    .ok_or_else(|| ReplayError::Mismatch("BindData before CreateProcess".into()))?;
                system
                    .process_mut(pid)?
                    .set_data_policy(PlacementPolicy::Bind(SocketId::new(socket)));
            }
            TraceEvent::Mmap { len, populate, thp } => {
                let pid =
                    pid.ok_or_else(|| ReplayError::Mismatch("Mmap before CreateProcess".into()))?;
                let mut flags = if populate {
                    MmapFlags::populate()
                } else {
                    MmapFlags::lazy()
                };
                if !thp {
                    flags = flags.without_thp();
                }
                region = Some(system.mmap(pid, len, flags)?);
            }
            TraceEvent::Populate {
                len,
                parallel,
                sockets,
            } => {
                let pid = pid
                    .ok_or_else(|| ReplayError::Mismatch("Populate before CreateProcess".into()))?;
                let region =
                    region.ok_or_else(|| ReplayError::Mismatch("Populate before Mmap".into()))?;
                let init = if parallel {
                    InitPattern::Parallel
                } else {
                    InitPattern::SingleThread
                };
                ExecutionEngine::populate(
                    &mut system,
                    pid,
                    region,
                    len,
                    init,
                    &sockets_of_mask(sockets),
                )?;
            }
            TraceEvent::MigratePageTable { socket } => {
                let pid = pid.ok_or_else(|| {
                    ReplayError::Mismatch("MigratePageTable before CreateProcess".into())
                })?;
                if !install {
                    return Err(ReplayError::Mismatch(
                        "MigratePageTable without InstallMitosis".into(),
                    ));
                }
                mitosis.migrate_page_table(&mut system, pid, SocketId::new(socket), true)?;
            }
            TraceEvent::Interference { sockets, staggered } => {
                if staggered {
                    return Err(ReplayError::Mismatch(
                        "staggered Interference recorded as a setup event".into(),
                    ));
                }
                let interference = if sockets == 0 {
                    Interference::none()
                } else {
                    Interference::on(sockets_of_mask(sockets))
                };
                system
                    .machine_mut()
                    .cost_model_mut()
                    .set_interference(interference);
            }
            TraceEvent::MigrateData { socket, staggered } => {
                if staggered {
                    return Err(ReplayError::Mismatch(
                        "staggered MigrateData recorded as a setup event".into(),
                    ));
                }
                let pid = pid.ok_or_else(|| {
                    ReplayError::Mismatch("MigrateData before CreateProcess".into())
                })?;
                system.migrate_data(pid, SocketId::new(socket))?;
            }
            TraceEvent::Replicate { sockets } => {
                let pid = pid.ok_or_else(|| {
                    ReplayError::Mismatch("Replicate before CreateProcess".into())
                })?;
                if !install {
                    // Without the Mitosis backend the replicas would exist
                    // but never be selected (and the page-cache reserve
                    // would be missing), so the replayed metrics could not
                    // match any live capture: reject, like MigratePageTable.
                    return Err(ReplayError::Mismatch(
                        "Replicate without InstallMitosis".into(),
                    ));
                }
                mitosis.resize_replicas(&mut system, pid, NodeMask::from_bits(sockets))?;
            }
            TraceEvent::AutoNumaRebalance { sockets, staggered } => {
                if staggered {
                    return Err(ReplayError::Mismatch(
                        "staggered AutoNumaRebalance recorded as a setup event".into(),
                    ));
                }
                let pid = pid.ok_or_else(|| {
                    ReplayError::Mismatch("AutoNumaRebalance before CreateProcess".into())
                })?;
                AutoNuma::new().rebalance(&mut system, pid, &sockets_of_mask(sockets))?;
            }
            TraceEvent::InterleaveData { sockets } => {
                let pid = pid.ok_or_else(|| {
                    ReplayError::Mismatch("InterleaveData before CreateProcess".into())
                })?;
                system
                    .process_mut(pid)?
                    .set_data_policy(PlacementPolicy::Interleave(NodeMask::from_bits(sockets)));
            }
            TraceEvent::Marker(_) => {}
            TraceEvent::Fork
            | TraceEvent::MmapAt { .. }
            | TraceEvent::MunmapAt { .. }
            | TraceEvent::PromoteHuge { .. }
            | TraceEvent::DemoteHuge { .. } => {
                // Captures record address-space churn only as mid-lane
                // phase-change markers; as setup events they would mutate a
                // system no lane has touched yet, which no live run produces.
                return Err(ReplayError::Mismatch(format!(
                    "churn event {event:?} recorded as a setup event"
                )));
            }
        }
    }

    let pid =
        pid.ok_or_else(|| ReplayError::Mismatch("trace has no CreateProcess setup event".into()))?;
    let region =
        region.ok_or_else(|| ReplayError::Mismatch("trace has no Mmap setup event".into()))?;
    if trace.lanes.is_empty() {
        return Err(ReplayError::Mismatch("trace has no access lanes".into()));
    }
    let accesses_per_thread = trace.lanes[0].accesses.len() as u64;
    if trace
        .lanes
        .iter()
        .any(|l| l.accesses.len() as u64 != accesses_per_thread)
    {
        return Err(ReplayError::Mismatch(
            "trace lanes have unequal lengths".into(),
        ));
    }

    let schedule = schedule_of_lanes(&trace.lanes)?;
    let needs_mitosis = schedule.events().iter().any(|event| {
        matches!(
            event.change,
            PhaseChange::MigratePageTable { .. } | PhaseChange::SetReplicas { .. }
        )
    });
    if needs_mitosis && !install {
        // The capture side always records InstallMitosis when the schedule
        // carries page-table operations; a trace violating that cannot have
        // come from a live run.
        return Err(ReplayError::Mismatch(
            "mid-lane page-table events without InstallMitosis".into(),
        ));
    }
    Ok(ReplaySnapshot {
        prepared: PreparedSystem {
            system,
            mitosis,
            pid,
            region,
        },
        spec,
        lanes: trace.lanes.len(),
        accesses_per_thread,
        schedule,
        machine: expected,
        machine_mismatch,
        setup_wall: setup_start.elapsed(),
        at_access: 0,
        engine: None,
        selection: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{TraceLane, TraceMeta};
    use mitosis_workloads::suite;

    fn replay_via_session(trace: &Trace, params: &SimParams) -> Result<ReplayOutcome, ReplayError> {
        Ok(ReplaySession::new(params)
            .replay(trace, &ReplayRequest::new())?
            .outcome)
    }

    #[test]
    fn lane_cursor_yields_in_order() {
        let accesses = [
            Access {
                offset: 8,
                is_write: false,
            },
            Access {
                offset: 16,
                is_write: true,
            },
        ];
        let mut cursor = LaneCursor::new(&accesses);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.next_access(), accesses[0]);
        assert_eq!(cursor.next_access(), accesses[1]);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn replay_rejects_traces_without_setup() {
        let params = SimParams::quick_test();
        let spec = params.scale_workload(&suite::gups());
        let trace = Trace {
            meta: TraceMeta::for_spec(&spec, &params).unwrap(),
            setup_events: vec![],
            lanes: vec![TraceLane::new(0)],
        };
        let err = replay_via_session(&trace, &params).unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");
    }

    #[test]
    fn install_mitosis_is_honored_anywhere_before_process_creation() {
        // InstallMitosis need not be the very first event (e.g. SetThp may
        // precede it); the replay must still install the Mitosis backend,
        // observable through MigratePageTable succeeding.
        let params = SimParams::quick_test().with_accesses(50);
        let spec = params.scale_workload(&suite::gups());
        let mut trace = Trace {
            meta: TraceMeta::for_spec(&spec, &params).unwrap(),
            setup_events: vec![
                TraceEvent::SetThp(false),
                TraceEvent::InstallMitosis,
                TraceEvent::CreateProcess { socket: 0 },
                TraceEvent::Mmap {
                    len: spec.footprint(),
                    populate: false,
                    thp: true,
                },
                TraceEvent::Populate {
                    len: spec.footprint(),
                    parallel: false,
                    sockets: 0b1,
                },
                TraceEvent::MigratePageTable { socket: 0 },
            ],
            lanes: vec![crate::capture::capture_stream(&spec, params.seed, 0, 50)],
        };
        replay_via_session(&trace, &params).expect("non-first InstallMitosis must be honored");

        // But after process creation it is an error, not a silent no-op.
        trace.setup_events = vec![
            TraceEvent::CreateProcess { socket: 0 },
            TraceEvent::InstallMitosis,
            TraceEvent::Mmap {
                len: spec.footprint(),
                populate: false,
                thp: true,
            },
        ];
        let err = replay_via_session(&trace, &params).unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");
    }

    #[test]
    fn replay_rejects_unknown_workloads() {
        let params = SimParams::quick_test();
        let trace = Trace {
            meta: TraceMeta {
                workload: "doom".into(),
                footprint: 1 << 26,
                seed: 7,
                write_fraction: 0.0,
                compute_cycles_per_access: 1,
                bandwidth_intensity: 0.0,
                // Matching machine, so the failure is the unknown workload.
                machine: MachineFingerprint::for_params(&params).unwrap(),
            },
            setup_events: vec![TraceEvent::CreateProcess { socket: 0 }],
            lanes: vec![],
        };
        let err = replay_via_session(&trace, &params).unwrap_err();
        assert!(matches!(err, ReplayError::Mismatch(_)), "{err}");
    }
}
