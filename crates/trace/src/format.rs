//! The compact binary trace format.
//!
//! A trace file is a versioned header followed by a stream of varint-encoded
//! items and a trailing checksum:
//!
//! ```text
//! magic  "MTRC"                      4 bytes
//! version u32 little-endian          4 bytes
//! meta    workload name (varint length + UTF-8 bytes),
//!         footprint, seed, write_fraction bits,
//!         compute_cycles_per_access, bandwidth_intensity bits
//! items   each item is one varint v whose low two bits are a tag:
//!           00 ACCESS  payload = (zigzag(offset delta) << 1) | is_write
//!           01 EVENT   payload = event code; then argc + argc varint args
//!           10 LANE    payload = socket index; starts a new access lane
//!           11 END     payload = total access count (integrity check)
//! check   FNV-1a 64 of every preceding byte, u64 little-endian
//! ```
//!
//! Access records are delta-encoded against the previous offset in the same
//! lane (starting from zero), so the hot encoding path is "zigzag the delta,
//! fold in the write bit, LEB128 it" — sequential and windowed patterns
//! compress to one or two bytes per access.  Events before the first lane
//! describe experiment setup (process creation, mmap, placement, migration)
//! and are replayed against a fresh [`System`](mitosis_vmm::System) by the
//! [`replay`](crate::replay) module; events inside a lane are positional
//! markers.

use mitosis_mem::FrameSpace;
use mitosis_numa::SocketId;
use mitosis_sim::SimParams;
use mitosis_workloads::{suite, Access, WorkloadSpec};
use std::fmt;
use std::io::{self, Read, Write};

/// Checked conversion of a socket identifier to the wire format's `u16`
/// socket field.
///
/// Every socket recorded in a trace — setup events, lane headers, mid-lane
/// markers, the machine fingerprint — goes through this one helper instead
/// of an `as u16` cast, so a capture machine with more sockets than the
/// format can describe fails loudly with
/// [`TraceError::UnencodableSocket`] rather than writing a truncated (but
/// correctly checksummed) trace.
///
/// # Errors
///
/// Returns [`TraceError::UnencodableSocket`] when the index exceeds
/// `u16::MAX`.
pub fn socket_index_u16(socket: SocketId) -> Result<u16, TraceError> {
    checked_socket_u16(socket.index())
}

/// [`socket_index_u16`] for a raw dense index (socket counts, fingerprint
/// fields).
///
/// # Errors
///
/// Returns [`TraceError::UnencodableSocket`] when the index exceeds
/// `u16::MAX`.
pub fn checked_socket_u16(index: usize) -> Result<u16, TraceError> {
    u16::try_from(index).map_err(|_| TraceError::UnencodableSocket(index))
}

/// Current format version written by [`TraceWriter`].
///
/// Version history:
/// * 1 — initial format (workload spec + seed in the header).  Still
///   readable: the machine fingerprint decodes as
///   [`MachineFingerprint::UNKNOWN`], which replay treats as a mismatch
///   (forcible, since it cannot be verified).
/// * 2 — header additionally records the [`MachineFingerprint`], so replay
///   can refuse a trace captured on a differently sized machine instead of
///   silently producing different metrics.
/// * 3 — new event codes for dynamic scenarios: mid-lane phase-change
///   markers ([`TraceEvent::MigrateData`], [`TraceEvent::Replicate`],
///   [`TraceEvent::AutoNumaRebalance`], plus the pre-existing
///   [`TraceEvent::MigratePageTable`] / [`TraceEvent::Interference`] now
///   also valid inside lanes) and the multi-socket scenario setup event
///   [`TraceEvent::InterleaveData`].  The wire format is unchanged — v1/v2
///   readers would reject only the new codes, so the version bump marks
///   traces that may carry them.
/// * 4 — staggered (per-thread) phase boundaries: the mid-lane markers
///   [`TraceEvent::MigrateData`], [`TraceEvent::AutoNumaRebalance`] and
///   [`TraceEvent::Interference`] gain an optional trailing `staggered`
///   argument.  A staggered marker applies only to the lane it is recorded
///   in, so lanes of one trace may legitimately carry *different* markers
///   (the pre-v4 invariant was all-lanes-agree).  Unstaggered events encode
///   exactly as in v3 (the argument is simply absent), so v4 bodies without
///   staggered markers are byte-identical to v3 bodies.
/// * 5 — periodic per-lane checkpoint markers for trace salvage: an
///   *internal* event (code 15, never surfaced as a [`TraceEvent`])
///   carrying `(accesses so far in this lane, running FNV-64 state of
///   every byte preceding the marker)`.  [`TraceWriter`] emits one every
///   [`DEFAULT_CHECKPOINT_INTERVAL`] accesses within a lane
///   (configurable); [`TraceReader`] validates each marker against the
///   stream it actually read, then swallows it, so decoded traces are
///   unchanged and small traces carry no markers at all.  The markers
///   bound the blast radius of corruption or truncation:
///   [`Trace::recover`] trims a damaged trace to its longest
///   checkpoint-attested prefix instead of losing everything.
/// * 6 — address-space-churn and fork/CoW events: [`TraceEvent::Fork`],
///   [`TraceEvent::MmapAt`], [`TraceEvent::MunmapAt`],
///   [`TraceEvent::PromoteHuge`] and [`TraceEvent::DemoteHuge`] (codes
///   16–20), valid as mid-lane phase-change markers.  The wire format is
///   otherwise unchanged: a v6 trace without the new events encodes
///   byte-identically to a v5 trace except for the header's version word,
///   and v1–v5 traces remain readable.
pub const TRACE_VERSION: u32 = 6;

/// Oldest format version [`TraceReader`] still accepts.
pub const TRACE_MIN_VERSION: u32 = 1;

/// File magic, `b"MTRC"`.
pub const TRACE_MAGIC: [u8; 4] = *b"MTRC";

const TAG_ACCESS: u64 = 0b00;
const TAG_EVENT: u64 = 0b01;
const TAG_LANE: u64 = 0b10;
const TAG_END: u64 = 0b11;

/// Wire code of every event in the stream: one named constant per
/// [`TraceEvent`] variant plus the internal per-lane checkpoint marker.
/// `encode`/`decode` and the checkpoint writer/reader paths match on
/// these names, never on bare literals — the `trace-event-exhaustiveness`
/// lint checks the table stays in sync with capture and replay, and that
/// no constant here goes unused.
pub(crate) mod event_code {
    /// [`super::TraceEvent::InstallMitosis`].
    pub const INSTALL_MITOSIS: u64 = 1;
    /// [`super::TraceEvent::SetThp`].
    pub const SET_THP: u64 = 2;
    /// [`super::TraceEvent::PtPlacement`].
    pub const PT_PLACEMENT: u64 = 3;
    /// [`super::TraceEvent::CreateProcess`].
    pub const CREATE_PROCESS: u64 = 4;
    /// [`super::TraceEvent::BindData`].
    pub const BIND_DATA: u64 = 5;
    /// [`super::TraceEvent::Mmap`].
    pub const MMAP: u64 = 6;
    /// [`super::TraceEvent::Populate`].
    pub const POPULATE: u64 = 7;
    /// [`super::TraceEvent::MigratePageTable`].
    pub const MIGRATE_PAGE_TABLE: u64 = 8;
    /// [`super::TraceEvent::Interference`].
    pub const INTERFERENCE: u64 = 9;
    /// [`super::TraceEvent::Marker`].
    pub const MARKER: u64 = 10;
    /// [`super::TraceEvent::MigrateData`].
    pub const MIGRATE_DATA: u64 = 11;
    /// [`super::TraceEvent::Replicate`].
    pub const REPLICATE: u64 = 12;
    /// [`super::TraceEvent::AutoNumaRebalance`].
    pub const AUTO_NUMA_REBALANCE: u64 = 13;
    /// [`super::TraceEvent::InterleaveData`].
    pub const INTERLEAVE_DATA: u64 = 14;
    /// The internal per-lane checkpoint marker (format v5) — never
    /// surfaced as a [`super::TraceEvent`].
    pub const CHECKPOINT: u64 = 15;
    /// [`super::TraceEvent::Fork`].
    pub const FORK: u64 = 16;
    /// [`super::TraceEvent::MmapAt`].
    pub const MMAP_AT: u64 = 17;
    /// [`super::TraceEvent::MunmapAt`].
    pub const MUNMAP_AT: u64 = 18;
    /// [`super::TraceEvent::PromoteHuge`].
    pub const PROMOTE_HUGE: u64 = 19;
    /// [`super::TraceEvent::DemoteHuge`].
    pub const DEMOTE_HUGE: u64 = 20;
}

/// The internal per-lane checkpoint marker (format v5).  Never decoded
/// into a [`TraceEvent`]: the reader validates and swallows it, pre-v5
/// readers reject it as an unknown event.
const CHECKPOINT_EVENT_CODE: u64 = event_code::CHECKPOINT;

/// Accesses between two checkpoint markers within a lane, unless
/// overridden via [`TraceWriter::set_checkpoint_interval`].  Dense enough
/// that a damaged multi-thousand-access lane salvages most of its prefix,
/// sparse enough that the marker overhead (~4–12 bytes each) stays under a
/// fraction of a percent of the encoded stream.
pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 4096;

/// Errors produced while encoding or decoding a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input does not start with the trace magic.
    BadMagic,
    /// The trace was written by an unsupported format version.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the stream contents.
    ChecksumMismatch {
        /// Checksum stored in the trace.
        stored: u64,
        /// Checksum computed over the bytes actually read.
        computed: u64,
    },
    /// Structurally invalid trace data.
    Corrupt(&'static str),
    /// An event with an unknown code (written by a newer version).
    UnknownEvent(u64),
    /// A socket index on the capture machine does not fit the wire
    /// format's `u16`.  Raised at *capture* time: encoding it with a
    /// silent `as u16` cast would produce a wrong-but-checksummed trace
    /// that replays against the wrong socket.
    UnencodableSocket(usize),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic => write!(f, "not a mitosis trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (supported: {TRACE_VERSION})"
                )
            }
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "trace checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
            TraceError::UnknownEvent(code) => write!(f, "unknown trace event code {code}"),
            TraceError::UnencodableSocket(index) => write!(
                f,
                "socket index {index} does not fit the trace format's u16 \
                 socket field (capture machine too large to describe)"
            ),
        }
    }
}

impl std::error::Error for TraceError {
    /// Exposes the underlying [`io::Error`] of [`TraceError::Io`] so
    /// callers can walk the chain (the previous blanket impl dropped it).
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Incremental FNV-1a 64 checksum.
#[derive(Debug, Clone, Copy)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// Write half: counts bytes through the checksum.
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv64,
}

impl<W: Write> HashingWriter<W> {
    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    fn varint(&mut self, mut v: u64) -> io::Result<()> {
        let mut buf = [0u8; 10];
        let mut n = 0;
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            buf[n] = if v == 0 { byte } else { byte | 0x80 };
            n += 1;
            if v == 0 {
                break;
            }
        }
        self.write_all(&buf[..n])
    }
}

/// Read half: counts bytes through the checksum.
struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv64,
}

impl<R: Read> HashingReader<R> {
    fn read_exact(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }

    fn byte(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.read_exact(&mut b)?;
        Ok(b[0])
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.byte()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(TraceError::Corrupt("varint longer than 64 bits"))
    }
}

/// The machine a trace was captured on, as far as metrics depend on it.
///
/// Replaying on a machine with a different scale, socket count or
/// frames-per-socket layout silently yields different metrics (frame
/// numbers map to different sockets, cache capacities differ), so the
/// fingerprint is recorded in the header and checked at replay time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineFingerprint {
    /// Capacity scale factor the machine was built with.
    pub machine_scale: u64,
    /// Number of sockets.
    pub sockets: u16,
    /// Number of 4 KiB frames attached to each socket.
    pub frames_per_socket: u64,
}

impl MachineFingerprint {
    /// Placeholder for traces that predate machine fingerprinting
    /// (format v1).  Never matches a real machine, so strict replay of a
    /// v1 trace is refused with an explanation rather than trusted blindly.
    pub const UNKNOWN: MachineFingerprint = MachineFingerprint {
        machine_scale: 0,
        sockets: 0,
        frames_per_socket: 0,
    };

    /// The fingerprint of the machine `params` builds.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnencodableSocket`] when the machine has more
    /// sockets than the format's `u16` field can record — a truncated
    /// fingerprint would checksum fine and then (mis)match at replay time.
    pub fn for_params(params: &SimParams) -> Result<Self, TraceError> {
        let machine = params.machine();
        let space = FrameSpace::new(&machine);
        Ok(MachineFingerprint {
            machine_scale: params.machine_scale,
            sockets: checked_socket_u16(machine.sockets())?,
            frames_per_socket: space.frames_per_socket(),
        })
    }
}

impl fmt::Display for MachineFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == MachineFingerprint::UNKNOWN {
            return write!(f, "unknown (format v1 trace)");
        }
        write!(
            f,
            "scale {}, {} sockets, {} frames/socket",
            self.machine_scale, self.sockets, self.frames_per_socket
        )
    }
}

/// Identifying metadata of a captured run, stored in the trace header.
///
/// A trace is self-describing: `workload` plus the spec parameters below
/// are enough to rebuild the exact [`WorkloadSpec`] the capture ran (via
/// [`TraceMeta::resolve_spec`]) and to refuse replay against a mismatched
/// one; `machine` identifies the captured machine the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Paper name of the captured workload (e.g. `"GUPS"`).
    pub workload: String,
    /// Footprint in bytes the capture actually used (after scaling).
    pub footprint: u64,
    /// Base seed of the captured access streams (lane `i` used `seed + i`).
    pub seed: u64,
    /// The spec's write fraction, for validation at replay time.
    pub write_fraction: f64,
    /// The spec's compute cycles per access, for validation.
    pub compute_cycles_per_access: u64,
    /// The spec's bandwidth intensity, for validation.
    pub bandwidth_intensity: f64,
    /// The machine the capture ran on.
    pub machine: MachineFingerprint,
}

impl TraceMeta {
    /// Captures the identifying parameters of `spec` and the machine built
    /// from `params`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnencodableSocket`] when the machine's
    /// fingerprint does not fit the format (see
    /// [`MachineFingerprint::for_params`]).
    pub fn for_spec(spec: &WorkloadSpec, params: &SimParams) -> Result<Self, TraceError> {
        Ok(TraceMeta {
            workload: spec.name().to_string(),
            footprint: spec.footprint(),
            seed: params.seed,
            write_fraction: spec.write_fraction(),
            compute_cycles_per_access: spec.compute_cycles_per_access(),
            bandwidth_intensity: spec.bandwidth_intensity(),
            machine: MachineFingerprint::for_params(params)?,
        })
    }

    /// Rebuilds the captured workload spec from the paper suite, applying
    /// the captured footprint.  Returns `None` for workloads not in the
    /// suite or whose suite parameters no longer match the trace.
    pub fn resolve_spec(&self) -> Option<WorkloadSpec> {
        let spec = suite::by_name(&self.workload)?.with_footprint(self.footprint);
        self.matches_spec(&spec).then_some(spec)
    }

    /// Whether `spec` is the workload this trace was captured from.
    pub fn matches_spec(&self, spec: &WorkloadSpec) -> bool {
        spec.name() == self.workload
            && spec.footprint() == self.footprint
            && spec.write_fraction() == self.write_fraction
            && spec.compute_cycles_per_access() == self.compute_cycles_per_access
            && spec.bandwidth_intensity() == self.bandwidth_intensity
    }
}

/// A setup or marker event recorded alongside the access stream.
///
/// Events before the first lane describe the experiment setup in execution
/// order; the replay interpreter applies them to a fresh system to
/// reconstruct the captured placement (page tables, data, interference)
/// before feeding the lanes to the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The Mitosis PV-Ops backend was installed before process creation.
    InstallMitosis,
    /// Transparent huge pages were switched on (`true`) or off.
    SetThp(bool),
    /// Page-table allocation was pinned to a socket (the "left behind"
    /// placement of the migration scenario).
    PtPlacement {
        /// Socket page tables are allocated on.
        socket: u16,
    },
    /// The workload process was created with the given home socket.
    CreateProcess {
        /// Home socket of the process.
        socket: u16,
    },
    /// Data placement was bound to a socket.
    BindData {
        /// Socket data pages are bound to.
        socket: u16,
    },
    /// The workload region was mmapped.
    Mmap {
        /// Length of the region in bytes.
        len: u64,
        /// Whether the mapping was eagerly populated (`MAP_POPULATE`).
        populate: bool,
        /// Whether the area was THP-eligible.
        thp: bool,
    },
    /// The region was populated (first-touch initialisation).
    Populate {
        /// Number of bytes populated from the region start.
        len: u64,
        /// `true` for parallel per-socket initialisation, `false` for
        /// single-threaded.
        parallel: bool,
        /// Bit mask of participating sockets (bit *i* = socket *i*).
        sockets: u64,
    },
    /// Mitosis migrated the process's page tables to a socket.
    MigratePageTable {
        /// Destination socket.
        socket: u16,
    },
    /// An interfering memory hog loads the masked sockets.
    Interference {
        /// Bit mask of interfered sockets.
        sockets: u64,
        /// Mid-lane only (format v4): the toggle was observed only by the
        /// lane carrying this marker (a staggered per-thread boundary).
        /// Always `false` for setup events.
        staggered: bool,
    },
    /// Free-form positional marker (also usable inside lanes).
    // mitosis-lint: allow(trace-event-exhaustiveness, reason = "Marker is a user-annotated event written by trace authors, not emitted by the capture engine; replay still applies it")
    Marker(u64),
    /// Every data page of the process was migrated to a socket (the NUMA
    /// balancer following a scheduler migration).  Mid-lane phase-change
    /// marker.
    MigrateData {
        /// Destination socket of the data pages.
        socket: u16,
        /// Format v4: the migration was observed only by the lane carrying
        /// this marker (a staggered per-thread boundary); the other lanes
        /// kept translating through their warm TLBs until a boundary of
        /// their own.
        staggered: bool,
    },
    /// The page-table replica set was set to exactly the masked sockets
    /// (empty mask = every replica dropped).  Setup event when Mitosis
    /// replicates before the measured phase; mid-lane phase-change marker
    /// when replicas are added or dropped during it.
    Replicate {
        /// Bit mask of sockets holding a replica afterwards.
        sockets: u64,
    },
    /// AutoNUMA rebalanced data pages across the masked sockets.  Setup
    /// event or mid-lane phase-change marker.
    AutoNumaRebalance {
        /// Bit mask of participating sockets.
        sockets: u64,
        /// Format v4: the rebalance was observed only by the lane carrying
        /// this marker (a staggered per-thread boundary).  Always `false`
        /// for setup events.
        staggered: bool,
    },
    /// Data placement was interleaved across the masked sockets (the
    /// multi-socket scenario's `I` configurations).
    InterleaveData {
        /// Bit mask of sockets the interleave rotates over.
        sockets: u64,
    },
    /// The workload process forked: the child shares every data frame
    /// copy-on-write and the parent's writable mappings were downgraded to
    /// read-only.  Mid-lane phase-change marker (format v6).
    Fork,
    /// `len` bytes of populated anonymous memory were mapped at the fixed
    /// address `addr` (format v6).
    MmapAt {
        /// Fixed start address of the new region.
        addr: u64,
        /// Length of the region in bytes.
        len: u64,
    },
    /// `[addr, addr + len)` was unmapped, splitting any VMAs the range cut
    /// through (format v6).
    MunmapAt {
        /// Start address of the hole.
        addr: u64,
        /// Length of the hole in bytes.
        len: u64,
    },
    /// The 512 base pages at `addr` were collapsed into one 2 MiB mapping
    /// (format v6).
    PromoteHuge {
        /// 2 MiB-aligned start address of the promoted region.
        addr: u64,
    },
    /// The 2 MiB mapping at `addr` was split back into base pages
    /// (format v6).
    DemoteHuge {
        /// 2 MiB-aligned start address of the demoted mapping.
        addr: u64,
    },
}

impl TraceEvent {
    fn encode(self) -> (u64, [u64; 3], usize) {
        // Staggerable markers append their flag as an optional trailing
        // argument (format v4): unstaggered events omit it, which keeps
        // their encoding byte-identical to v3.
        let staggerable = |code: u64, first: u64, staggered: bool| {
            if staggered {
                (code, [first, 1, 0], 2)
            } else {
                (code, [first, 0, 0], 1)
            }
        };
        match self {
            TraceEvent::InstallMitosis => (event_code::INSTALL_MITOSIS, [0; 3], 0),
            TraceEvent::SetThp(always) => (event_code::SET_THP, [always as u64, 0, 0], 1),
            TraceEvent::PtPlacement { socket } => {
                (event_code::PT_PLACEMENT, [socket as u64, 0, 0], 1)
            }
            TraceEvent::CreateProcess { socket } => {
                (event_code::CREATE_PROCESS, [socket as u64, 0, 0], 1)
            }
            TraceEvent::BindData { socket } => (event_code::BIND_DATA, [socket as u64, 0, 0], 1),
            TraceEvent::Mmap { len, populate, thp } => {
                (event_code::MMAP, [len, populate as u64, thp as u64], 3)
            }
            TraceEvent::Populate {
                len,
                parallel,
                sockets,
            } => (event_code::POPULATE, [len, parallel as u64, sockets], 3),
            TraceEvent::MigratePageTable { socket } => {
                (event_code::MIGRATE_PAGE_TABLE, [socket as u64, 0, 0], 1)
            }
            TraceEvent::Interference { sockets, staggered } => {
                staggerable(event_code::INTERFERENCE, sockets, staggered)
            }
            TraceEvent::Marker(value) => (event_code::MARKER, [value, 0, 0], 1),
            TraceEvent::MigrateData { socket, staggered } => {
                staggerable(event_code::MIGRATE_DATA, socket as u64, staggered)
            }
            TraceEvent::Replicate { sockets } => (event_code::REPLICATE, [sockets, 0, 0], 1),
            TraceEvent::AutoNumaRebalance { sockets, staggered } => {
                staggerable(event_code::AUTO_NUMA_REBALANCE, sockets, staggered)
            }
            TraceEvent::InterleaveData { sockets } => {
                (event_code::INTERLEAVE_DATA, [sockets, 0, 0], 1)
            }
            // event_code::CHECKPOINT is the internal marker, not an event.
            TraceEvent::Fork => (event_code::FORK, [0; 3], 0),
            TraceEvent::MmapAt { addr, len } => (event_code::MMAP_AT, [addr, len, 0], 2),
            TraceEvent::MunmapAt { addr, len } => (event_code::MUNMAP_AT, [addr, len, 0], 2),
            TraceEvent::PromoteHuge { addr } => (event_code::PROMOTE_HUGE, [addr, 0, 0], 1),
            TraceEvent::DemoteHuge { addr } => (event_code::DEMOTE_HUGE, [addr, 0, 0], 1),
        }
    }

    fn decode(code: u64, args: &[u64]) -> Result<TraceEvent, TraceError> {
        let arg = |i: usize| -> Result<u64, TraceError> {
            args.get(i)
                .copied()
                .ok_or(TraceError::Corrupt("event is missing arguments"))
        };
        // The staggered flag is an optional trailing argument: absent in
        // v1–v3 traces (and in unstaggered v4 events), present only on the
        // three staggerable mid-lane markers.
        let staggered = |i: usize| args.get(i).copied().unwrap_or(0) != 0;
        let socket = |i: usize| -> Result<u16, TraceError> {
            u16::try_from(arg(i)?).map_err(|_| TraceError::Corrupt("socket index overflows u16"))
        };
        Ok(match code {
            event_code::INSTALL_MITOSIS => TraceEvent::InstallMitosis,
            event_code::SET_THP => TraceEvent::SetThp(arg(0)? != 0),
            event_code::PT_PLACEMENT => TraceEvent::PtPlacement { socket: socket(0)? },
            event_code::CREATE_PROCESS => TraceEvent::CreateProcess { socket: socket(0)? },
            event_code::BIND_DATA => TraceEvent::BindData { socket: socket(0)? },
            event_code::MMAP => TraceEvent::Mmap {
                len: arg(0)?,
                populate: arg(1)? != 0,
                thp: arg(2)? != 0,
            },
            event_code::POPULATE => TraceEvent::Populate {
                len: arg(0)?,
                parallel: arg(1)? != 0,
                sockets: arg(2)?,
            },
            event_code::MIGRATE_PAGE_TABLE => TraceEvent::MigratePageTable { socket: socket(0)? },
            event_code::INTERFERENCE => TraceEvent::Interference {
                sockets: arg(0)?,
                staggered: staggered(1),
            },
            event_code::MARKER => TraceEvent::Marker(arg(0)?),
            event_code::MIGRATE_DATA => TraceEvent::MigrateData {
                socket: socket(0)?,
                staggered: staggered(1),
            },
            event_code::REPLICATE => TraceEvent::Replicate { sockets: arg(0)? },
            event_code::AUTO_NUMA_REBALANCE => TraceEvent::AutoNumaRebalance {
                sockets: arg(0)?,
                staggered: staggered(1),
            },
            event_code::INTERLEAVE_DATA => TraceEvent::InterleaveData { sockets: arg(0)? },
            event_code::FORK => TraceEvent::Fork,
            event_code::MMAP_AT => TraceEvent::MmapAt {
                addr: arg(0)?,
                len: arg(1)?,
            },
            event_code::MUNMAP_AT => TraceEvent::MunmapAt {
                addr: arg(0)?,
                len: arg(1)?,
            },
            event_code::PROMOTE_HUGE => TraceEvent::PromoteHuge { addr: arg(0)? },
            event_code::DEMOTE_HUGE => TraceEvent::DemoteHuge { addr: arg(0)? },
            other => return Err(TraceError::UnknownEvent(other)),
        })
    }

    /// Whether this event is a staggered mid-lane marker — one that applies
    /// only to the lane it is recorded in (format v4).
    pub fn staggered(&self) -> bool {
        matches!(
            self,
            TraceEvent::Interference {
                staggered: true,
                ..
            } | TraceEvent::MigrateData {
                staggered: true,
                ..
            } | TraceEvent::AutoNumaRebalance {
                staggered: true,
                ..
            }
        )
    }
}

/// Streaming trace encoder.
///
/// Wrap the sink in a `BufWriter` for file output; every record is written
/// through individually.
pub struct TraceWriter<W: Write> {
    sink: HashingWriter<W>,
    prev_offset: u64,
    in_lane: bool,
    total_accesses: u64,
    /// Accesses between two checkpoint markers within a lane; 0 disables
    /// marker emission.
    checkpoint_interval: u64,
    lane_accesses: u64,
    since_checkpoint: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `sink`, writing the header immediately.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(sink: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        let mut sink = HashingWriter {
            inner: sink,
            hash: Fnv64::new(),
        };
        sink.write_all(&TRACE_MAGIC)?;
        sink.write_all(&TRACE_VERSION.to_le_bytes())?;
        sink.varint(meta.workload.len() as u64)?;
        sink.write_all(meta.workload.as_bytes())?;
        sink.varint(meta.footprint)?;
        sink.varint(meta.seed)?;
        sink.varint(meta.write_fraction.to_bits())?;
        sink.varint(meta.compute_cycles_per_access)?;
        sink.varint(meta.bandwidth_intensity.to_bits())?;
        sink.varint(meta.machine.machine_scale)?;
        sink.varint(meta.machine.sockets as u64)?;
        sink.varint(meta.machine.frames_per_socket)?;
        Ok(TraceWriter {
            sink,
            prev_offset: 0,
            in_lane: false,
            total_accesses: 0,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            lane_accesses: 0,
            since_checkpoint: 0,
        })
    }

    /// Overrides how many accesses a lane runs between two checkpoint
    /// markers (default [`DEFAULT_CHECKPOINT_INTERVAL`]); `0` disables the
    /// markers entirely.  Denser markers lose less of a damaged trace at
    /// the cost of a few bytes per marker; the decoded trace is identical
    /// either way.
    pub fn set_checkpoint_interval(&mut self, every: u64) {
        self.checkpoint_interval = every;
    }

    /// Records an event: a setup step before the first lane, a positional
    /// marker inside one.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn event(&mut self, event: TraceEvent) -> Result<(), TraceError> {
        let (code, args, argc) = event.encode();
        self.sink.varint((code << 2) | TAG_EVENT)?;
        self.sink.varint(argc as u64)?;
        for arg in &args[..argc] {
            self.sink.varint(*arg)?;
        }
        Ok(())
    }

    /// Starts a new access lane for a thread pinned to `socket`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn begin_lane(&mut self, socket: u16) -> Result<(), TraceError> {
        self.sink.varint(((socket as u64) << 2) | TAG_LANE)?;
        self.prev_offset = 0;
        self.in_lane = true;
        self.lane_accesses = 0;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Appends one access to the current lane.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; fails if no lane has been started.
    pub fn access(&mut self, access: Access) -> Result<(), TraceError> {
        if !self.in_lane {
            return Err(TraceError::Corrupt("access recorded outside a lane"));
        }
        let delta = access.offset.wrapping_sub(self.prev_offset) as i64;
        self.prev_offset = access.offset;
        let payload = (zigzag(delta) << 1) | access.is_write as u64;
        self.sink.varint((payload << 2) | TAG_ACCESS)?;
        self.total_accesses += 1;
        self.lane_accesses += 1;
        self.since_checkpoint += 1;
        if self.checkpoint_interval != 0 && self.since_checkpoint >= self.checkpoint_interval {
            self.write_checkpoint()?;
        }
        Ok(())
    }

    /// Emits one checkpoint marker: the lane's access count so far plus the
    /// running stream hash *before* the marker's own bytes — the reader
    /// recomputes exactly that value ahead of decoding the marker, so a
    /// matching marker attests every byte up to itself.
    fn write_checkpoint(&mut self) -> Result<(), TraceError> {
        let hash = self.sink.hash.0;
        self.sink.varint((CHECKPOINT_EVENT_CODE << 2) | TAG_EVENT)?;
        self.sink.varint(2)?;
        self.sink.varint(self.lane_accesses)?;
        self.sink.varint(hash)?;
        self.since_checkpoint = 0;
        Ok(())
    }

    /// Terminates the trace, writing the end marker and checksum, and
    /// returns the sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.sink.varint((self.total_accesses << 2) | TAG_END)?;
        let checksum = self.sink.hash.0;
        self.sink.inner.write_all(&checksum.to_le_bytes())?;
        Ok(self.sink.inner)
    }
}

/// One decoded item from a trace body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceItem {
    /// An event record.
    Event(TraceEvent),
    /// Start of a new lane for a thread on `socket`.
    LaneStart {
        /// Socket the lane's thread was pinned to.
        socket: u16,
    },
    /// One access in the current lane.
    Access(Access),
    /// End of the trace (checksum verified).
    End,
}

/// A checkpoint marker that validated while reading: every byte up to the
/// marker — header, events, lane starts, the first `lane_accesses` accesses
/// of lane `lane` — matched the hash the writer recorded, so that prefix is
/// trustworthy even if the stream fails later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheckpoint {
    /// Index of the lane the marker was recorded in (0-based).
    pub lane: usize,
    /// Accesses of that lane preceding the marker.
    pub lane_accesses: u64,
}

/// Streaming trace decoder.
///
/// Wrap the source in a `BufReader` for file input; bytes are consumed
/// record by record and the checksum is verified when [`TraceItem::End`] is
/// reached.  Format-v5 checkpoint markers are validated against the bytes
/// actually read and swallowed (never surfaced as a [`TraceItem`]); the
/// last one that validated is available via
/// [`TraceReader::last_checkpoint`] for salvage after a decode error.
pub struct TraceReader<R: Read> {
    source: HashingReader<R>,
    meta: TraceMeta,
    version: u32,
    prev_offset: u64,
    accesses_seen: u64,
    finished: bool,
    /// Lanes started so far; the current lane is `lanes_seen - 1`.
    lanes_seen: usize,
    /// Accesses decoded in the current lane.
    lane_accesses: u64,
    last_checkpoint: Option<TraceCheckpoint>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace, parsing and validating the header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad magic or an unsupported version.
    pub fn new(source: R) -> Result<Self, TraceError> {
        let mut source = HashingReader {
            inner: source,
            hash: Fnv64::new(),
        };
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut version = [0u8; 4];
        source.read_exact(&mut version)?;
        let version = u32::from_le_bytes(version);
        if !(TRACE_MIN_VERSION..=TRACE_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let name_len = source.varint()? as usize;
        if name_len > 4096 {
            return Err(TraceError::Corrupt("implausible workload name length"));
        }
        let mut name = vec![0u8; name_len];
        source.read_exact(&mut name)?;
        let workload = String::from_utf8(name)
            .map_err(|_| TraceError::Corrupt("workload name is not UTF-8"))?;
        let footprint = source.varint()?;
        let seed = source.varint()?;
        let write_fraction = f64::from_bits(source.varint()?);
        let compute_cycles_per_access = source.varint()?;
        let bandwidth_intensity = f64::from_bits(source.varint()?);
        let machine = if version >= 2 {
            MachineFingerprint {
                machine_scale: source.varint()?,
                sockets: u16::try_from(source.varint()?)
                    .map_err(|_| TraceError::Corrupt("socket count overflows u16"))?,
                frames_per_socket: source.varint()?,
            }
        } else {
            // v1 traces carry no fingerprint; replay treats this as an
            // unverifiable mismatch (forcible).
            MachineFingerprint::UNKNOWN
        };
        Ok(TraceReader {
            source,
            meta: TraceMeta {
                workload,
                footprint,
                seed,
                write_fraction,
                compute_cycles_per_access,
                bandwidth_intensity,
                machine,
            },
            version,
            prev_offset: 0,
            accesses_seen: 0,
            finished: false,
            lanes_seen: 0,
            lane_accesses: 0,
            last_checkpoint: None,
        })
    }

    /// The trace header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The format version the trace was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The most recent checkpoint marker that validated, if any.  After a
    /// decode error this names the longest prefix of the stream attested by
    /// the writer's running hash — the basis of [`Trace::recover`].
    pub fn last_checkpoint(&self) -> Option<TraceCheckpoint> {
        self.last_checkpoint
    }

    /// Decodes the next item; [`TraceItem::End`] is returned exactly once,
    /// after which further calls fail.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, corrupt records or a checksum mismatch.
    pub fn next_item(&mut self) -> Result<TraceItem, TraceError> {
        if self.finished {
            return Err(TraceError::Corrupt("read past end of trace"));
        }
        // Checkpoint markers validate and swallow without surfacing, hence
        // the loop: one call still returns exactly one real item.
        loop {
            // Snapshot of the running hash *before* this item's bytes —
            // the value a checkpoint marker attests.
            let stream_hash = self.source.hash.0;
            let v = self.source.varint()?;
            let payload = v >> 2;
            match v & 0b11 {
                TAG_ACCESS => {
                    let is_write = payload & 1 == 1;
                    let delta = unzigzag(payload >> 1);
                    self.prev_offset = self.prev_offset.wrapping_add(delta as u64);
                    self.accesses_seen += 1;
                    self.lane_accesses += 1;
                    return Ok(TraceItem::Access(Access {
                        offset: self.prev_offset,
                        is_write,
                    }));
                }
                TAG_EVENT => {
                    let argc = self.source.varint()? as usize;
                    if argc > 16 {
                        return Err(TraceError::Corrupt("implausible event argument count"));
                    }
                    let mut args = [0u64; 16];
                    for slot in args.iter_mut().take(argc) {
                        *slot = self.source.varint()?;
                    }
                    if payload == CHECKPOINT_EVENT_CODE {
                        self.validate_checkpoint(stream_hash, &args[..argc])?;
                        continue;
                    }
                    return Ok(TraceItem::Event(TraceEvent::decode(
                        payload,
                        &args[..argc],
                    )?));
                }
                TAG_LANE => {
                    let socket = u16::try_from(payload)
                        .map_err(|_| TraceError::Corrupt("lane socket overflows u16"))?;
                    self.prev_offset = 0;
                    self.lanes_seen += 1;
                    self.lane_accesses = 0;
                    return Ok(TraceItem::LaneStart { socket });
                }
                _ => {
                    if payload != self.accesses_seen {
                        return Err(TraceError::Corrupt("access count mismatch at end marker"));
                    }
                    let computed = self.source.hash.0;
                    let mut stored = [0u8; 8];
                    self.source.inner.read_exact(&mut stored)?;
                    let stored = u64::from_le_bytes(stored);
                    if stored != computed {
                        return Err(TraceError::ChecksumMismatch { stored, computed });
                    }
                    self.finished = true;
                    return Ok(TraceItem::End);
                }
            }
        }
    }

    /// Validates one checkpoint marker against the stream actually read: a
    /// pre-v5 trace cannot legitimately carry one, the recorded lane access
    /// count must match the decode position, and the recorded running hash
    /// must match the hash of every byte read before the marker.
    fn validate_checkpoint(&mut self, stream_hash: u64, args: &[u64]) -> Result<(), TraceError> {
        if self.version < 5 {
            return Err(TraceError::UnknownEvent(CHECKPOINT_EVENT_CODE));
        }
        if self.lanes_seen == 0 {
            return Err(TraceError::Corrupt(
                "checkpoint marker before the first lane",
            ));
        }
        let (Some(&count), Some(&stored)) = (args.first(), args.get(1)) else {
            return Err(TraceError::Corrupt(
                "checkpoint marker is missing arguments",
            ));
        };
        if count != self.lane_accesses {
            return Err(TraceError::Corrupt(
                "checkpoint marker access count disagrees with the stream",
            ));
        }
        if stored != stream_hash {
            return Err(TraceError::ChecksumMismatch {
                stored,
                computed: stream_hash,
            });
        }
        self.last_checkpoint = Some(TraceCheckpoint {
            lane: self.lanes_seen - 1,
            lane_accesses: count,
        });
        Ok(())
    }
}

/// One thread's captured access sequence plus its positional markers.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLane {
    /// Socket the captured thread was pinned to.
    pub socket: u16,
    /// The access sequence, in execution order.
    pub accesses: Vec<Access>,
    /// Markers recorded inside the lane, as `(position, event)` where
    /// `position` is the number of accesses preceding the marker.
    pub events: Vec<(u64, TraceEvent)>,
}

impl TraceLane {
    /// An empty lane for a thread on `socket`.
    pub fn new(socket: u16) -> Self {
        TraceLane {
            socket,
            accesses: Vec::new(),
            events: Vec::new(),
        }
    }
}

/// A fully decoded, in-memory trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Header metadata identifying the captured workload.
    pub meta: TraceMeta,
    /// Setup events recorded before the first lane, in execution order.
    pub setup_events: Vec<TraceEvent>,
    /// Per-thread access lanes.
    pub lanes: Vec<TraceLane>,
}

impl Trace {
    /// Total number of accesses across all lanes.
    pub fn accesses(&self) -> u64 {
        self.lanes.iter().map(|l| l.accesses.len() as u64).sum()
    }

    /// Serialises the trace to `sink`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink; fails if a lane's markers are
    /// out of order or positioned beyond the lane's access count (such
    /// positions cannot be represented and would not round-trip).
    pub fn write_to<W: Write>(&self, sink: W) -> Result<W, TraceError> {
        let mut writer = TraceWriter::new(sink, &self.meta)?;
        for event in &self.setup_events {
            writer.event(*event)?;
        }
        for lane in &self.lanes {
            if lane.events.windows(2).any(|pair| pair[0].0 > pair[1].0) {
                return Err(TraceError::Corrupt("lane markers are out of order"));
            }
            if lane
                .events
                .last()
                .is_some_and(|&(pos, _)| pos > lane.accesses.len() as u64)
            {
                return Err(TraceError::Corrupt(
                    "lane marker position beyond the lane's access count",
                ));
            }
            writer.begin_lane(lane.socket)?;
            let mut markers = lane.events.iter().peekable();
            for (i, access) in lane.accesses.iter().enumerate() {
                // The peek above proves the iterator is non-empty; `while
                // let` re-peeks instead of unwrapping the following `next`.
                while let Some(&&(pos, event)) = markers.peek() {
                    if pos != i as u64 {
                        break;
                    }
                    writer.event(event)?;
                    markers.next();
                }
                writer.access(*access)?;
            }
            for (_, event) in markers {
                writer.event(*event)?;
            }
        }
        writer.finish()
    }

    /// Deserialises a trace from `source`, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, corrupt or truncated data, an unsupported
    /// version or a checksum mismatch.
    pub fn read_from<R: Read>(source: R) -> Result<Trace, TraceError> {
        let mut reader = TraceReader::new(source)?;
        let mut trace = Trace {
            meta: reader.meta().clone(),
            setup_events: Vec::new(),
            lanes: Vec::new(),
        };
        loop {
            match reader.next_item()? {
                TraceItem::Event(event) => match trace.lanes.last_mut() {
                    Some(lane) => lane.events.push((lane.accesses.len() as u64, event)),
                    None => trace.setup_events.push(event),
                },
                TraceItem::LaneStart { socket } => trace.lanes.push(TraceLane::new(socket)),
                TraceItem::Access(access) => trace
                    .lanes
                    .last_mut()
                    .ok_or(TraceError::Corrupt("access before first lane"))?
                    .accesses
                    .push(access),
                TraceItem::End => return Ok(trace),
            }
        }
    }

    /// Serialises to an in-memory buffer.
    ///
    /// # Errors
    ///
    /// Never fails for the `Vec` sink in practice; returns encoding errors.
    pub fn to_bytes(&self) -> Result<Vec<u8>, TraceError> {
        self.write_to(Vec::new())
    }

    /// Deserialises from an in-memory buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Trace::read_from`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        Trace::read_from(bytes)
    }

    /// Salvages a damaged trace: decodes as far as the stream allows, then
    /// trims to the longest prefix attested by a validated checkpoint
    /// marker (format v5).
    ///
    /// The result keeps the lanes up to and including the checkpoint's
    /// lane, each trimmed to the checkpoint's access count (mid-lane
    /// markers past the cut are dropped with it).  Trimming *every* kept
    /// lane to the same count preserves the equal-lane-length and
    /// marker-agreement invariants replay requires, so the salvaged trace
    /// replays like any intact trace — it is simply a shorter run.
    /// Anything decoded beyond the last checkpoint is discarded even if it
    /// looked plausible: only hash-attested data is trusted.
    ///
    /// An intact stream salvages losslessly (`lost_accesses == 0`).
    ///
    /// # Errors
    ///
    /// Returns the original decode error when nothing is attested: a
    /// damaged header, a pre-v5 trace (no markers), or damage before the
    /// first checkpoint.
    pub fn recover<R: Read>(source: R) -> Result<SalvagedTrace, TraceError> {
        let mut reader = TraceReader::new(source)?;
        let mut trace = Trace {
            meta: reader.meta().clone(),
            setup_events: Vec::new(),
            lanes: Vec::new(),
        };
        let mut decoded_accesses = 0u64;
        let damage = loop {
            match reader.next_item() {
                Ok(TraceItem::Event(event)) => match trace.lanes.last_mut() {
                    Some(lane) => lane.events.push((lane.accesses.len() as u64, event)),
                    None => trace.setup_events.push(event),
                },
                Ok(TraceItem::LaneStart { socket }) => trace.lanes.push(TraceLane::new(socket)),
                Ok(TraceItem::Access(access)) => {
                    decoded_accesses += 1;
                    match trace.lanes.last_mut() {
                        Some(lane) => lane.accesses.push(access),
                        None => break TraceError::Corrupt("access before first lane"),
                    }
                }
                Ok(TraceItem::End) => {
                    // Intact after all: nothing to trim, nothing lost.
                    return Ok(SalvagedTrace {
                        trace,
                        valid_accesses: decoded_accesses,
                        lost_accesses: 0,
                        damage: None,
                    });
                }
                Err(error) => break error,
            }
        };
        let Some(checkpoint) = reader.last_checkpoint() else {
            return Err(damage);
        };
        let keep = checkpoint.lane_accesses;
        trace.lanes.truncate(checkpoint.lane + 1);
        if trace
            .lanes
            .iter()
            .any(|lane| (lane.accesses.len() as u64) < keep)
        {
            // A validated checkpoint promises `keep` accesses in its own
            // lane and full earlier lanes; a shorter lane means the stream
            // lied about its own structure — don't trust any of it.
            return Err(damage);
        }
        let mut valid_accesses = 0u64;
        for lane in &mut trace.lanes {
            lane.accesses.truncate(keep as usize);
            lane.events.retain(|&(pos, _)| pos <= keep);
            valid_accesses += lane.accesses.len() as u64;
        }
        Ok(SalvagedTrace {
            trace,
            valid_accesses,
            lost_accesses: decoded_accesses - valid_accesses,
            damage: Some(damage),
        })
    }
}

/// A trace recovered from damaged bytes by [`Trace::recover`]: the longest
/// checkpoint-attested prefix, trimmed so it replays like an intact (but
/// shorter) capture.
#[derive(Debug)]
pub struct SalvagedTrace {
    /// The recovered trace.
    pub trace: Trace,
    /// Accesses retained across all lanes.
    pub valid_accesses: u64,
    /// Accesses decoded from the damaged stream but dropped because no
    /// checkpoint attested them (whatever the damage destroyed outright is
    /// not decodable and not counted).
    pub lost_accesses: u64,
    /// The decode error that forced the salvage; `None` when the stream
    /// turned out to be intact.
    pub damage: Option<TraceError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineFingerprint {
        MachineFingerprint {
            machine_scale: 512,
            sockets: 4,
            frames_per_socket: 65_536,
        }
    }

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "GUPS".into(),
            footprint: 1 << 27,
            seed: 7,
            write_fraction: 0.5,
            compute_cycles_per_access: 5,
            bandwidth_intensity: 0.9,
            machine: machine(),
        }
    }

    #[test]
    fn socket_conversion_is_checked_not_truncating() {
        assert_eq!(socket_index_u16(SocketId::new(0)).unwrap(), 0);
        assert_eq!(socket_index_u16(SocketId::new(u16::MAX)).unwrap(), u16::MAX);
        assert_eq!(checked_socket_u16(65_535).unwrap(), 65_535);
        // One past the wire format's range: the old `as u16` cast would
        // have silently wrapped this to socket 0.
        let err = checked_socket_u16(65_536).unwrap_err();
        assert!(
            matches!(err, TraceError::UnencodableSocket(65_536)),
            "{err}"
        );
        assert!(err.to_string().contains("65536"));
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 1 << 47, -(1 << 47)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = Trace {
            meta: meta(),
            setup_events: vec![],
            lanes: vec![],
        };
        let bytes = trace.to_bytes().unwrap();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
    }

    #[test]
    fn events_and_lanes_roundtrip() {
        let trace = Trace {
            meta: meta(),
            setup_events: vec![
                TraceEvent::InstallMitosis,
                TraceEvent::SetThp(true),
                TraceEvent::PtPlacement { socket: 1 },
                TraceEvent::CreateProcess { socket: 0 },
                TraceEvent::BindData { socket: 1 },
                TraceEvent::Mmap {
                    len: 1 << 27,
                    populate: false,
                    thp: true,
                },
                TraceEvent::Populate {
                    len: 1 << 27,
                    parallel: true,
                    sockets: 0b1111,
                },
                TraceEvent::MigratePageTable { socket: 0 },
                TraceEvent::Interference {
                    sockets: 0b10,
                    staggered: false,
                },
                TraceEvent::InterleaveData { sockets: 0b1111 },
            ],
            lanes: vec![
                TraceLane {
                    socket: 0,
                    accesses: vec![
                        Access {
                            offset: 4096,
                            is_write: false,
                        },
                        Access {
                            offset: 0,
                            is_write: true,
                        },
                    ],
                    events: vec![
                        (1, TraceEvent::Marker(42)),
                        (
                            1,
                            TraceEvent::MigrateData {
                                socket: 1,
                                staggered: false,
                            },
                        ),
                        (1, TraceEvent::Replicate { sockets: 0b11 }),
                        (2, TraceEvent::Replicate { sockets: 0 }),
                        (
                            2,
                            TraceEvent::AutoNumaRebalance {
                                sockets: 0b1111,
                                staggered: false,
                            },
                        ),
                        (
                            2,
                            TraceEvent::MigrateData {
                                socket: 2,
                                staggered: true,
                            },
                        ),
                        (
                            2,
                            TraceEvent::Interference {
                                sockets: 0b1,
                                staggered: true,
                            },
                        ),
                    ],
                },
                TraceLane {
                    socket: 3,
                    accesses: vec![Access {
                        offset: (1 << 27) - 8,
                        is_write: true,
                    }],
                    events: vec![],
                },
            ],
        };
        let bytes = trace.to_bytes().unwrap();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
    }

    #[test]
    fn staggered_markers_flag_only_the_v4_variants() {
        assert!(TraceEvent::MigrateData {
            socket: 1,
            staggered: true
        }
        .staggered());
        assert!(TraceEvent::Interference {
            sockets: 0b1,
            staggered: true
        }
        .staggered());
        assert!(TraceEvent::AutoNumaRebalance {
            sockets: 0b11,
            staggered: true
        }
        .staggered());
        assert!(!TraceEvent::MigrateData {
            socket: 1,
            staggered: false
        }
        .staggered());
        assert!(!TraceEvent::Replicate { sockets: 0b11 }.staggered());
        assert!(!TraceEvent::Marker(7).staggered());
    }

    #[test]
    fn unstaggered_v4_bodies_match_the_v3_encoding() {
        // The staggered flag is an optional trailing argument, and v5
        // checkpoint markers only appear after DEFAULT_CHECKPOINT_INTERVAL
        // accesses in a lane: a small trace without staggered markers must
        // encode byte-identically to the v3 writer, except for the version
        // word in the header.
        let trace = Trace {
            meta: meta(),
            setup_events: vec![
                TraceEvent::CreateProcess { socket: 0 },
                TraceEvent::Interference {
                    sockets: 0b10,
                    staggered: false,
                },
            ],
            lanes: vec![TraceLane {
                socket: 0,
                accesses: vec![Access {
                    offset: 64,
                    is_write: false,
                }],
                events: vec![(
                    1,
                    TraceEvent::MigrateData {
                        socket: 1,
                        staggered: false,
                    },
                )],
            }],
        };
        let bytes = trace.to_bytes().unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            TRACE_VERSION
        );
        // Rewrite the version word to 3 and fix up the checksum: the body
        // must decode identically, proving nothing else changed.
        let mut v3 = bytes.clone();
        v3[4..8].copy_from_slice(&3u32.to_le_bytes());
        let body_end = v3.len() - 8;
        let mut hash = Fnv64::new();
        hash.update(&v3[..body_end]);
        let checksum = hash.0;
        v3[body_end..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(Trace::from_bytes(&v3).unwrap(), trace);
    }

    #[test]
    fn v6_bodies_without_churn_events_match_the_v5_encoding() {
        // The v6 event codes are purely additive: a trace carrying none of
        // them must encode byte-identically to the v5 writer, except for
        // the version word in the header.
        let trace = Trace {
            meta: meta(),
            setup_events: vec![
                TraceEvent::CreateProcess { socket: 0 },
                TraceEvent::Mmap {
                    len: 1 << 27,
                    populate: true,
                    thp: false,
                },
            ],
            lanes: vec![TraceLane {
                socket: 0,
                accesses: vec![Access {
                    offset: 64,
                    is_write: true,
                }],
                events: vec![(
                    1,
                    TraceEvent::MigrateData {
                        socket: 1,
                        staggered: false,
                    },
                )],
            }],
        };
        let bytes = trace.to_bytes().unwrap();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            TRACE_VERSION
        );
        // Rewrite the version word to 5 and fix up the checksum: the body
        // must decode identically, proving nothing else changed.
        let mut v5 = bytes.clone();
        v5[4..8].copy_from_slice(&5u32.to_le_bytes());
        let body_end = v5.len() - 8;
        let mut hash = Fnv64::new();
        hash.update(&v5[..body_end]);
        let checksum = hash.0;
        v5[body_end..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(Trace::from_bytes(&v5).unwrap(), trace);
    }

    #[test]
    fn churn_and_fork_events_roundtrip() {
        let trace = Trace {
            meta: meta(),
            setup_events: vec![TraceEvent::CreateProcess { socket: 0 }],
            lanes: vec![TraceLane {
                socket: 0,
                accesses: vec![
                    Access {
                        offset: 0,
                        is_write: false,
                    },
                    Access {
                        offset: 8,
                        is_write: true,
                    },
                ],
                events: vec![
                    (1, TraceEvent::Fork),
                    (
                        1,
                        TraceEvent::MmapAt {
                            addr: 0x5000_0000_0000,
                            len: 1 << 21,
                        },
                    ),
                    (
                        2,
                        TraceEvent::MunmapAt {
                            addr: 0x5000_0000_0000,
                            len: 1 << 20,
                        },
                    ),
                    (
                        2,
                        TraceEvent::PromoteHuge {
                            addr: 0x5000_0010_0000,
                        },
                    ),
                    (
                        2,
                        TraceEvent::DemoteHuge {
                            addr: 0x5000_0010_0000,
                        },
                    ),
                ],
            }],
        };
        let bytes = trace.to_bytes().unwrap();
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
        assert!(!TraceEvent::Fork.staggered());
    }

    fn lane_of(accesses: usize) -> TraceLane {
        TraceLane {
            socket: 0,
            accesses: (0..accesses)
                .map(|i| Access {
                    offset: (i as u64 % 31) * 8,
                    is_write: i % 3 == 0,
                })
                .collect(),
            events: vec![],
        }
    }

    #[test]
    fn checkpoint_markers_are_transparent_to_decoding() {
        // A lane long enough to carry markers must round-trip unchanged:
        // the reader validates and swallows every marker.
        let trace = Trace {
            meta: meta(),
            setup_events: vec![TraceEvent::CreateProcess { socket: 0 }],
            lanes: vec![lane_of(300), lane_of(300)],
        };
        let mut writer = TraceWriter::new(Vec::new(), &trace.meta).unwrap();
        writer.set_checkpoint_interval(64);
        // Re-encode by hand with a dense interval (the public write path
        // uses the default, too sparse to trigger on a 300-access lane).
        for event in &trace.setup_events {
            writer.event(*event).unwrap();
        }
        for lane in &trace.lanes {
            writer.begin_lane(lane.socket).unwrap();
            for access in &lane.accesses {
                writer.access(*access).unwrap();
            }
        }
        let with_markers = writer.finish().unwrap();
        let plain = {
            let mut writer = TraceWriter::new(Vec::new(), &trace.meta).unwrap();
            writer.set_checkpoint_interval(0);
            for event in &trace.setup_events {
                writer.event(*event).unwrap();
            }
            for lane in &trace.lanes {
                writer.begin_lane(lane.socket).unwrap();
                for access in &lane.accesses {
                    writer.access(*access).unwrap();
                }
            }
            writer.finish().unwrap()
        };
        assert!(
            with_markers.len() > plain.len(),
            "expected checkpoint markers on the wire"
        );
        assert_eq!(Trace::from_bytes(&with_markers).unwrap(), trace);
        assert_eq!(Trace::from_bytes(&plain).unwrap(), trace);

        // And the reader tracked the last marker of the second lane.
        let mut reader = TraceReader::new(with_markers.as_slice()).unwrap();
        while !matches!(reader.next_item().unwrap(), TraceItem::End) {}
        assert_eq!(
            reader.last_checkpoint(),
            Some(TraceCheckpoint {
                lane: 1,
                lane_accesses: 256,
            })
        );
    }

    fn encode_with_interval(trace: &Trace, every: u64) -> Vec<u8> {
        let mut writer = TraceWriter::new(Vec::new(), &trace.meta).unwrap();
        writer.set_checkpoint_interval(every);
        for event in &trace.setup_events {
            writer.event(*event).unwrap();
        }
        for lane in &trace.lanes {
            writer.begin_lane(lane.socket).unwrap();
            for access in &lane.accesses {
                writer.access(*access).unwrap();
            }
        }
        writer.finish().unwrap()
    }

    #[test]
    fn recover_trims_to_the_last_attested_checkpoint() {
        let trace = Trace {
            meta: meta(),
            setup_events: vec![TraceEvent::CreateProcess { socket: 0 }],
            lanes: vec![lane_of(300), lane_of(300)],
        };
        let good = encode_with_interval(&trace, 64);

        // Truncation mid-stream: the salvage keeps both lanes, trimmed to
        // the last checkpoint that fit in the remaining bytes.
        let truncated = &good[..good.len() - 20];
        assert!(Trace::from_bytes(truncated).is_err());
        let salvaged = Trace::recover(truncated).unwrap();
        assert_eq!(salvaged.trace.lanes.len(), 2);
        assert_eq!(salvaged.trace.lanes[0].accesses.len(), 256);
        assert_eq!(salvaged.trace.lanes[1].accesses.len(), 256);
        assert_eq!(salvaged.valid_accesses, 512);
        assert!(salvaged.damage.is_some());
        assert_eq!(
            salvaged.trace.lanes[0].accesses[..],
            trace.lanes[0].accesses[..256],
            "salvaged prefix must be the original data"
        );
        // The salvaged trace is a valid trace in its own right.
        let reencoded = salvaged.trace.to_bytes().unwrap();
        assert_eq!(Trace::from_bytes(&reencoded).unwrap(), salvaged.trace);

        // A corrupted byte late in the stream: same salvage.
        let mut corrupt = good.clone();
        let position = good.len() - 30;
        corrupt[position] ^= 0x55;
        assert!(Trace::from_bytes(&corrupt).is_err());
        let salvaged = Trace::recover(corrupt.as_slice()).unwrap();
        assert_eq!(salvaged.trace.lanes[1].accesses.len(), 256);

        // An intact stream salvages losslessly.
        let intact = Trace::recover(good.as_slice()).unwrap();
        assert_eq!(intact.trace, trace);
        assert_eq!(intact.lost_accesses, 0);
        assert!(intact.damage.is_none());
    }

    #[test]
    fn recover_without_an_attested_prefix_returns_the_error() {
        let trace = Trace {
            meta: meta(),
            setup_events: vec![],
            lanes: vec![lane_of(40)],
        };
        // No markers (lane shorter than the interval): nothing to salvage.
        let good = encode_with_interval(&trace, 64);
        let truncated = &good[..good.len() - 10];
        assert!(Trace::recover(truncated).is_err());
        // Damaged header: not even the meta is trustworthy.
        assert!(Trace::recover(&good[..6]).is_err());
    }

    #[test]
    fn checkpoint_markers_in_pre_v5_traces_are_rejected() {
        // Rewrite a marker-bearing v5 trace's version word to 4 (fixing up
        // the trailing checksum): the reader must refuse the marker as an
        // unknown event rather than trusting it.
        let trace = Trace {
            meta: meta(),
            setup_events: vec![],
            lanes: vec![lane_of(100)],
        };
        let mut bytes = encode_with_interval(&trace, 64);
        bytes[4..8].copy_from_slice(&4u32.to_le_bytes());
        let body_end = bytes.len() - 8;
        let mut hash = Fnv64::new();
        hash.update(&bytes[..body_end]);
        let checksum = hash.0;
        bytes[body_end..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnknownEvent(code)) if code == CHECKPOINT_EVENT_CODE
        ));
    }

    #[test]
    fn trace_error_source_exposes_the_io_chain() {
        use std::error::Error as _;
        let io = io::Error::new(io::ErrorKind::UnexpectedEof, "short read");
        let err = TraceError::Io(io);
        let source = err.source().expect("Io carries a source");
        assert!(source.to_string().contains("short read"));
        assert!(TraceError::BadMagic.source().is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let trace = Trace {
            meta: meta(),
            setup_events: vec![TraceEvent::CreateProcess { socket: 0 }],
            lanes: vec![TraceLane {
                socket: 0,
                accesses: vec![Access {
                    offset: 123456,
                    is_write: false,
                }],
                events: vec![],
            }],
        };
        let good = trace.to_bytes().unwrap();
        // Flip one bit in the body (after the 8-byte magic+version prefix,
        // before the 8-byte checksum suffix).
        for position in [8, good.len() / 2, good.len() - 9] {
            let mut bad = good.clone();
            bad[position] ^= 0x40;
            assert!(
                Trace::from_bytes(&bad).is_err(),
                "flip at {position} went undetected"
            );
        }
        // Truncation is detected too.
        assert!(Trace::from_bytes(&good[..good.len() - 4]).is_err());
    }

    #[test]
    fn unrepresentable_marker_positions_are_rejected() {
        let lane = |events: Vec<(u64, TraceEvent)>| TraceLane {
            socket: 0,
            accesses: vec![
                Access {
                    offset: 0,
                    is_write: false,
                },
                Access {
                    offset: 8,
                    is_write: false,
                },
            ],
            events,
        };
        // A marker *at* the end of the lane is fine...
        let ok = Trace {
            meta: meta(),
            setup_events: vec![],
            lanes: vec![lane(vec![(2, TraceEvent::Marker(1))])],
        };
        let decoded = Trace::from_bytes(&ok.to_bytes().unwrap()).unwrap();
        assert_eq!(decoded, ok);
        // ...but beyond it cannot round-trip, and out-of-order markers
        // would be silently reordered: both must be refused.
        for events in [
            vec![(5, TraceEvent::Marker(1))],
            vec![(2, TraceEvent::Marker(1)), (1, TraceEvent::Marker(2))],
        ] {
            let bad = Trace {
                meta: meta(),
                setup_events: vec![],
                lanes: vec![lane(events)],
            };
            assert!(matches!(bad.to_bytes(), Err(TraceError::Corrupt(_))));
        }
    }

    #[test]
    fn v1_traces_decode_with_an_unknown_fingerprint() {
        // Hand-encode a minimal format-v1 trace (header without the
        // machine fingerprint, one empty body, FNV-64 checksum): archived
        // PR 1 artifacts must stay readable.
        fn varint(out: &mut Vec<u8>, mut v: u64) {
            loop {
                let byte = (v & 0x7f) as u8;
                v >>= 7;
                out.push(if v == 0 { byte } else { byte | 0x80 });
                if v == 0 {
                    break;
                }
            }
        }
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let m = meta();
        varint(&mut bytes, m.workload.len() as u64);
        bytes.extend_from_slice(m.workload.as_bytes());
        varint(&mut bytes, m.footprint);
        varint(&mut bytes, m.seed);
        varint(&mut bytes, m.write_fraction.to_bits());
        varint(&mut bytes, m.compute_cycles_per_access);
        varint(&mut bytes, m.bandwidth_intensity.to_bits());
        varint(&mut bytes, TAG_END); // END marker with zero accesses
        let mut hash = Fnv64::new();
        hash.update(&bytes);
        bytes.extend_from_slice(&hash.0.to_le_bytes());

        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(decoded.meta.machine, MachineFingerprint::UNKNOWN);
        assert_eq!(decoded.meta.workload, m.workload);
        assert_eq!(decoded.meta.seed, m.seed);
        assert!(decoded.meta.machine.to_string().contains("format v1"));
    }

    #[test]
    fn header_validation_rejects_garbage() {
        assert!(matches!(
            Trace::from_bytes(b"NOPE"),
            Err(TraceError::BadMagic) | Err(TraceError::Io(_))
        ));
        let mut future = Trace {
            meta: meta(),
            setup_events: vec![],
            lanes: vec![],
        }
        .to_bytes()
        .unwrap();
        future[4] = 99; // bump version
        assert!(matches!(
            Trace::from_bytes(&future),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn sequential_accesses_encode_compactly() {
        // 64-byte strides: one byte of tag+payload each after the first.
        let accesses: Vec<Access> = (0..1000)
            .map(|i| Access {
                offset: i * 64,
                is_write: false,
            })
            .collect();
        let trace = Trace {
            meta: meta(),
            setup_events: vec![],
            lanes: vec![TraceLane {
                socket: 0,
                accesses,
                events: vec![],
            }],
        };
        let bytes = trace.to_bytes().unwrap();
        let overhead = 64; // header + end marker + checksum, roughly
        assert!(
            bytes.len() < 2 * 1000 + overhead,
            "sequential encoding too large: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn meta_resolves_the_suite_spec() {
        let spec = suite::gups().with_footprint(1 << 27);
        let params = SimParams::quick_test();
        let m = TraceMeta::for_spec(&spec, &params).unwrap();
        assert_eq!(m.machine, MachineFingerprint::for_params(&params).unwrap());
        assert_eq!(m, meta());
        let resolved = m.resolve_spec().unwrap();
        assert!(m.matches_spec(&resolved));
        assert_eq!(resolved.footprint(), 1 << 27);
        let unknown = TraceMeta {
            workload: "doom".into(),
            ..m
        };
        assert!(unknown.resolve_spec().is_none());
    }
}
