//! Trace capture, deterministic replay and parallel replay for the Mitosis
//! simulator.
//!
//! The evaluation loop of the paper — run a memory-intensive workload,
//! measure runtime and page-walk cycles — regenerates every access stream
//! live.  This crate turns those streams into first-class artifacts:
//!
//! * [`format`](mod@format) defines a compact binary trace format: varint-delta encoded
//!   [`Access`](mitosis_workloads::Access) records plus VMA/migration event
//!   markers, behind a versioned header and a trailing checksum, with
//!   streaming [`TraceWriter`]/[`TraceReader`] codecs;
//! * [`capture`] records any [`AccessStream`](mitosis_workloads::AccessStream)
//!   — and the setup events of `mitosis-sim` scenarios (engine-level,
//!   workload-migration and multi-socket) — into a [`Trace`]; dynamic runs
//!   record their mid-run phase-change events as mid-lane markers at the
//!   exact access index;
//! * [`replay`] feeds a captured trace back through the existing
//!   [`ExecutionEngine`](mitosis_sim::ExecutionEngine), re-applying
//!   mid-lane phase changes at the same boundaries and reproducing the
//!   live run's [`RunMetrics`](mitosis_sim::RunMetrics) bit-for-bit;
//! * [`session`] is the entry point: a [`ReplaySession`] executes
//!   builder-style [`ReplayRequest`]s — serial, lane-selected, or sharded
//!   as per-socket lane groups across a **persistent worker pool** — with
//!   a snapshot cache and partial (scoped) snapshots making repeated and
//!   grouped replays cheaper than one-shot serial replay, bit-identically;
//! * [`parallel`] holds the report types ([`LaneReplayReport`],
//!   [`ReplayReport`], [`ShardDecision`]) and the deprecated free-function
//!   entry points that predate [`ReplaySession`].
//!
//! # Example
//!
//! ```
//! use mitosis_numa::SocketId;
//! use mitosis_sim::SimParams;
//! use mitosis_trace::{capture_engine_run, ReplayRequest, ReplaySession, Trace};
//! use mitosis_workloads::suite;
//!
//! let params = SimParams::quick_test().with_accesses(300);
//! let captured = capture_engine_run(&suite::gups(), &params, &[SocketId::new(0)]).unwrap();
//!
//! // The trace survives serialisation and reproduces the live run exactly.
//! let bytes = captured.trace.to_bytes().unwrap();
//! let trace = Trace::from_bytes(&bytes).unwrap();
//! let mut session = ReplaySession::new(&params);
//! let replayed = session.replay(&trace, &ReplayRequest::new()).unwrap();
//! assert_eq!(replayed.outcome.metrics, captured.live_metrics);
//!
//! // The warm session replays again without re-preparing (snapshot cache),
//! // and grouped requests reuse its persistent worker pool.
//! let again = session.replay(&trace, &ReplayRequest::new()).unwrap();
//! assert_eq!(again.outcome.metrics, captured.live_metrics);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failure handling is a first-class feature of this crate: fallible paths
// return TraceError/ReplayError instead of unwrapping.  Unit tests are
// exempt (unwrap is the idiomatic test assertion).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod capture;
pub mod faultinject;
pub mod format;
pub mod parallel;
mod pool;
pub mod replay;
pub mod session;

pub use capture::{
    capture_engine_run, capture_engine_run_dynamic, capture_migration_scenario,
    capture_multisocket_scenario, capture_stream, trace_event_of_change, CapturedRun,
    RecordingSource,
};
pub use faultinject::{env_plan, FaultPlan, FaultyReader, FaultyWriter};
pub use format::{
    checked_socket_u16, socket_index_u16, MachineFingerprint, SalvagedTrace, Trace,
    TraceCheckpoint, TraceError, TraceEvent, TraceItem, TraceLane, TraceMeta, TraceReader,
    TraceWriter, DEFAULT_CHECKPOINT_INTERVAL, TRACE_MAGIC, TRACE_MIN_VERSION, TRACE_VERSION,
};
#[allow(deprecated)]
pub use parallel::{
    replay_parallel, replay_parallel_lanes, replay_parallel_lanes_faulted,
    replay_parallel_lanes_observed, replay_sequential,
};
pub use parallel::{
    GroupFailure, GroupFailureKind, LaneReplayReport, ReplayAggregate, ReplayReport, ShardDecision,
};
pub use replay::{
    prepare_replay, LaneCursor, MachineMismatch, ReplayCompleteness, ReplayError, ReplayOptions,
    ReplayOutcome, ReplaySnapshot, TraceReplayer,
};
#[allow(deprecated)]
pub use replay::{
    replay_trace, replay_trace_lane, replay_trace_lanes, replay_trace_salvaged, replay_trace_with,
};
pub use session::{ReplayMode, ReplayRequest, ReplaySession, SnapshotMode};
