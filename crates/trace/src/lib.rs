//! Trace capture, deterministic replay and parallel replay for the Mitosis
//! simulator.
//!
//! The evaluation loop of the paper — run a memory-intensive workload,
//! measure runtime and page-walk cycles — regenerates every access stream
//! live.  This crate turns those streams into first-class artifacts:
//!
//! * [`format`](mod@format) defines a compact binary trace format: varint-delta encoded
//!   [`Access`](mitosis_workloads::Access) records plus VMA/migration event
//!   markers, behind a versioned header and a trailing checksum, with
//!   streaming [`TraceWriter`]/[`TraceReader`] codecs;
//! * [`capture`] records any [`AccessStream`](mitosis_workloads::AccessStream)
//!   — and the setup events of `mitosis-sim` scenarios (engine-level,
//!   workload-migration and multi-socket) — into a [`Trace`]; dynamic runs
//!   record their mid-run phase-change events as mid-lane markers at the
//!   exact access index;
//! * [`replay`] feeds a captured trace back through the existing
//!   [`ExecutionEngine`](mitosis_sim::ExecutionEngine), re-applying
//!   mid-lane phase changes at the same boundaries and reproducing the
//!   live run's [`RunMetrics`](mitosis_sim::RunMetrics) bit-for-bit;
//! * [`parallel`] shards N traces across worker threads — each replay owns
//!   its own system and per-core MMU models — and merges the metrics;
//!   [`replay_parallel_lanes`] shards the *lanes* of a single trace as
//!   per-socket lane groups for single-trace speedups on many-core hosts,
//!   deciding shardability up front from the trace's setup events.
//!
//! # Example
//!
//! ```
//! use mitosis_numa::SocketId;
//! use mitosis_sim::SimParams;
//! use mitosis_trace::{capture_engine_run, replay_trace, Trace};
//! use mitosis_workloads::suite;
//!
//! let params = SimParams::quick_test().with_accesses(300);
//! let captured = capture_engine_run(&suite::gups(), &params, &[SocketId::new(0)]).unwrap();
//!
//! // The trace survives serialisation and reproduces the live run exactly.
//! let bytes = captured.trace.to_bytes().unwrap();
//! let trace = Trace::from_bytes(&bytes).unwrap();
//! let replayed = replay_trace(&trace, &params).unwrap();
//! assert_eq!(replayed.metrics, captured.live_metrics);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Failure handling is a first-class feature of this crate: fallible paths
// return TraceError/ReplayError instead of unwrapping.  Unit tests are
// exempt (unwrap is the idiomatic test assertion).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod capture;
pub mod faultinject;
pub mod format;
pub mod parallel;
pub mod replay;

pub use capture::{
    capture_engine_run, capture_engine_run_dynamic, capture_migration_scenario,
    capture_multisocket_scenario, capture_stream, trace_event_of_change, CapturedRun,
    RecordingSource,
};
pub use faultinject::{env_plan, FaultPlan, FaultyReader, FaultyWriter};
pub use format::{
    checked_socket_u16, socket_index_u16, MachineFingerprint, SalvagedTrace, Trace,
    TraceCheckpoint, TraceError, TraceEvent, TraceItem, TraceLane, TraceMeta, TraceReader,
    TraceWriter, DEFAULT_CHECKPOINT_INTERVAL, TRACE_MAGIC, TRACE_MIN_VERSION, TRACE_VERSION,
};
pub use parallel::{
    replay_parallel, replay_parallel_lanes, replay_parallel_lanes_faulted,
    replay_parallel_lanes_observed, replay_sequential, GroupFailure, GroupFailureKind,
    LaneReplayReport, ReplayAggregate, ReplayReport, ShardDecision,
};
pub use replay::{
    prepare_replay, replay_trace, replay_trace_lane, replay_trace_lanes, replay_trace_salvaged,
    replay_trace_with, LaneCursor, MachineMismatch, ReplayCompleteness, ReplayError, ReplayOptions,
    ReplayOutcome, ReplaySnapshot, TraceReplayer,
};
