//! Persistent worker pool for replay fan-out.
//!
//! [`ReplayPool`] owns a set of lazily spawned worker threads that live for
//! the pool's lifetime — across replay calls — instead of being re-spawned
//! per grouped replay the way the scoped-thread driver used to be.  Each
//! worker owns one [`TraceReplayer`], so the pooled execution engines (MMU
//! models, per-socket page-table-line caches) stay warm across jobs: a
//! replay dispatched to a warm pool pays neither thread spawn nor engine
//! construction.
//!
//! Jobs are boxed closures over `Arc`-shared state (the crate forbids
//! `unsafe`, so there are no borrowed scoped jobs); a job receives the
//! worker's replayer by `&mut` and communicates results back through
//! whatever channel it captured.  A panicking job is caught at the worker
//! boundary: the worker survives and keeps serving jobs, and the caller
//! observes the loss through its result channel closing without a send.

use crate::replay::TraceReplayer;
use mitosis_sim::Observer;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work dispatched to a pool worker, run with the worker's
/// persistent [`TraceReplayer`].
pub(crate) type PoolJob = Box<dyn FnOnce(&mut TraceReplayer) + Send + 'static>;

/// The queue the workers drain, behind one mutex with a condvar.
#[derive(Default)]
struct PoolQueue {
    jobs: VecDeque<PoolJob>,
    shutdown: bool,
}

#[derive(Default)]
struct PoolShared {
    queue: Mutex<PoolQueue>,
    available: Condvar,
}

/// A persistent, lazily grown pool of replay worker threads.
///
/// Owned by [`ReplaySession`](crate::ReplaySession); threads are spawned on
/// demand (never per call) and joined when the pool is dropped.
pub(crate) struct ReplayPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ReplayPool {
    /// A pool with no threads yet; workers are spawned on first use.
    pub(crate) fn new() -> Self {
        ReplayPool {
            shared: Arc::new(PoolShared::default()),
            workers: Vec::new(),
        }
    }

    /// Ensures at least `target` worker threads exist.  The pool never
    /// shrinks: a later smaller request leaves the extra workers idle on
    /// the condvar, where they cost nothing.
    pub(crate) fn ensure_workers(&mut self, target: usize) {
        while self.workers.len() < target {
            let shared = Arc::clone(&self.shared);
            self.workers
                .push(std::thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Total worker threads spawned over the pool's lifetime.  Repeated
    /// replays on a warm pool leave this constant — the no-per-call-spawn
    /// property the API tests pin.
    pub(crate) fn threads_spawned(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` for the next free worker.
    pub(crate) fn submit(&self, job: PoolJob) {
        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        queue.jobs.push_back(job);
        drop(queue);
        self.shared.available.notify_one();
    }
}

impl Default for ReplayPool {
    fn default() -> Self {
        ReplayPool::new()
    }
}

// Manual `Debug`: the queued jobs are opaque closures.
impl fmt::Debug for ReplayPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplayPool")
            .field("threads_spawned", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Drop for ReplayPool {
    fn drop(&mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The worker body: drain jobs until shutdown, keeping one warm
/// [`TraceReplayer`] (and hence one pooled engine) for the thread's whole
/// life.
fn worker_loop(shared: &PoolShared) {
    let mut replayer = TraceReplayer::new();
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        // A panicking job must not take the worker (and its warm engine)
        // down with it; the caller observes the loss through its result
        // channel.  Retrying with the surviving replayer is safe: every
        // replay starts with an engine reset.
        let _ = catch_unwind(AssertUnwindSafe(|| job(&mut replayer)));
        // Drop whatever observer the job installed so recorders are not
        // kept alive (and unflushed) by an idle worker.
        replayer.set_observer(Observer::none());
        replayer.set_observer_track(0);
    }
}
