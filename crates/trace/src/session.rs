//! The unified replay entry point: [`ReplaySession`] executes
//! [`ReplayRequest`]s.
//!
//! Earlier revisions of this crate grew eleven public replay entry points
//! (`replay_trace`, `replay_trace_with`, `replay_trace_lane`,
//! `replay_trace_lanes`, `replay_trace_salvaged`, `replay_sequential`,
//! `replay_parallel`, `replay_parallel_lanes`,
//! `replay_parallel_lanes_observed`, `replay_parallel_lanes_faulted`, plus
//! the `TraceReplayer` method zoo behind them), each a point in the same
//! configuration space: which lanes, serial or grouped, how many workers,
//! observed or not, fault-injected or not, salvage or strict.  A
//! [`ReplaySession`] replaces them with one builder-described request
//! executed against persistent state:
//!
//! * a **persistent worker pool** — threads are spawned lazily, once, and
//!   live across replay calls, each keeping a warm
//!   [`TraceReplayer`] (pooled execution engine), so
//!   repeated grouped replays pay zero thread-spawn and zero
//!   engine-construction cost;
//! * a **snapshot cache** — the prepared post-setup
//!   [`ReplaySnapshot`] of the last trace is kept (verified against the
//!   request's trace by full equality on every hit) so a warm session skips
//!   setup-event reconstruction entirely;
//! * **partial snapshots** — when the shardability analysis proves a lane
//!   group can only touch its own sockets' frames and its own VA ranges
//!   (setup premaps everything, no mid-lane phase changes), each group
//!   clones just that slice of the prepared system
//!   ([`ReplaySnapshot::clone_scoped`]) instead of deep-copying all of it;
//! * **adaptive group sizing** — [`ReplayMode::Auto`] merges per-socket
//!   lane groups down to the host's available parallelism (largest group
//!   first onto the least-loaded unit, never splitting a socket group), so
//!   a 2-core host is not asked to juggle 8 groups.
//!
//! Replayed metrics are bit-identical across every request shape — serial,
//! grouped, merged, full or partial snapshots, warm or cold pool — and
//! bit-identical to the deprecated entry points, which now delegate here.
//!
//! # Example
//!
//! ```
//! use mitosis_numa::SocketId;
//! use mitosis_sim::SimParams;
//! use mitosis_trace::{capture_engine_run, ReplayRequest, ReplaySession};
//! use mitosis_workloads::suite;
//!
//! let params = SimParams::quick_test().with_accesses(200);
//! let captured = capture_engine_run(&suite::gups(), &params, &[SocketId::new(0)]).unwrap();
//!
//! let mut session = ReplaySession::new(&params);
//! let report = session.replay(&captured.trace, &ReplayRequest::new()).unwrap();
//! assert_eq!(report.outcome.metrics, captured.live_metrics);
//!
//! // The same session replays again from its cached snapshot and warm
//! // pool; a grouped request shards across per-socket lane groups.
//! let again = session
//!     .replay(&captured.trace, &ReplayRequest::new().auto_grouped())
//!     .unwrap();
//! assert_eq!(again.outcome.metrics, captured.live_metrics);
//! ```

use crate::faultinject::{env_plan, FaultPlan};
use crate::format::Trace;
use crate::parallel::{
    lanes_fully_premapped, panic_message, GroupFailure, GroupFailureKind, LaneReplayReport,
    ReplayReport, ShardDecision, MAX_GROUP_ATTEMPTS,
};
use crate::pool::{PoolJob, ReplayPool};
use crate::replay::{
    prepare_replay, validate_lane_selection, ReplayCompleteness, ReplayError, ReplayOptions,
    ReplayOutcome, ReplaySnapshot, TraceReplayer,
};
use mitosis_numa::SocketId;
use mitosis_pt::VirtAddr;
use mitosis_sim::{Observer, RunMetrics, SimParams};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// How a [`ReplayRequest`] executes the selected lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayMode {
    /// All selected lanes replay on the calling thread against one system
    /// — the semantics of the old `replay_trace` / `replay_trace_lanes`.
    #[default]
    Serial,
    /// Per-socket lane groups fan out across up to `workers` pool threads,
    /// one unit per socket group — the semantics of the old
    /// `replay_parallel_lanes`.
    Grouped {
        /// Upper bound on concurrently working pool threads (must be
        /// nonzero).
        workers: usize,
    },
    /// Like [`ReplayMode::Grouped`], with the worker count taken from
    /// [`std::thread::available_parallelism`] and the per-socket groups
    /// *merged* down to at most that many units (largest group first onto
    /// the least-loaded unit, never splitting a socket group), so small
    /// hosts run few big units instead of many tiny ones.
    Auto,
}

/// Which clone a grouped replay's units run from.
///
/// Partial (scoped) snapshots are an optimisation, never a correctness
/// commitment: they are used only when the shardability analysis proves the
/// run cannot leave the cloned slice (setup premaps every accessed page, no
/// mid-lane phase changes).  Requesting [`SnapshotMode::Partial`] outside
/// those conditions silently falls back to full clones, and the existing
/// defence layers (worker panic isolation, the demand-fault serial re-run)
/// backstop the proof itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Partial snapshots whenever provably safe, full clones otherwise.
    #[default]
    Auto,
    /// Always deep-copy the whole prepared system.
    Full,
    /// Prefer partial snapshots; identical to [`SnapshotMode::Auto`] today,
    /// spelled out for tests that compare the two paths.
    Partial,
}

/// A builder-style description of one replay: which lanes, serial or
/// grouped, which snapshot flavour, salvage and machine-check behaviour,
/// fault injection.
///
/// The default request replays every lane serially with strict machine
/// checking — the semantics of the old `replay_trace`.
#[derive(Debug, Clone, Default)]
pub struct ReplayRequest {
    lanes: Option<Vec<usize>>,
    mode: ReplayMode,
    snapshots: SnapshotMode,
    salvage: bool,
    force_machine: bool,
    fault_plan: Option<FaultPlan>,
}

impl ReplayRequest {
    /// The default request: every lane, serial, strict machine check, full
    /// snapshots, no salvage, fault plan from the environment.
    pub fn new() -> Self {
        ReplayRequest::default()
    }

    /// Replays only `lanes` (indices into the trace's lanes, strictly
    /// increasing).
    pub fn lanes(mut self, lanes: Vec<usize>) -> Self {
        self.lanes = Some(lanes);
        self
    }

    /// Replays a single lane.
    pub fn lane(self, lane: usize) -> Self {
        self.lanes(vec![lane])
    }

    /// Serial execution on the calling thread (the default).
    pub fn serial(mut self) -> Self {
        self.mode = ReplayMode::Serial;
        self
    }

    /// Grouped execution across up to `workers` pool threads, one unit per
    /// per-socket lane group.
    pub fn grouped(mut self, workers: usize) -> Self {
        self.mode = ReplayMode::Grouped { workers };
        self
    }

    /// Grouped execution sized to the host (see [`ReplayMode::Auto`]).
    pub fn auto_grouped(mut self) -> Self {
        self.mode = ReplayMode::Auto;
        self
    }

    /// Selects the snapshot flavour grouped units clone
    /// (see [`SnapshotMode`]).
    pub fn snapshots(mut self, mode: SnapshotMode) -> Self {
        self.snapshots = mode;
        self
    }

    /// For [`ReplaySession::replay_bytes`]: recover a damaged stream to its
    /// longest checkpoint-attested prefix instead of failing (the outcome
    /// is then marked [`ReplayCompleteness::Salvaged`]).
    pub fn salvage(mut self) -> Self {
        self.salvage = true;
        self
    }

    /// Downgrades a machine-fingerprint mismatch from an error to a
    /// recorded warning (see
    /// [`ReplayOptions::force_machine`](crate::ReplayOptions)).
    pub fn force_machine(mut self) -> Self {
        self.force_machine = true;
        self
    }

    /// Injects worker faults from an explicit plan instead of the
    /// `MITOSIS_FAULT_*` environment — how the resilience tests drive the
    /// panic-isolation machinery deterministically.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The [`ReplayOptions`] equivalent of this request's machine-check
    /// setting.
    fn options(&self) -> ReplayOptions {
        if self.force_machine {
            ReplayOptions::new().force_machine()
        } else {
            ReplayOptions::new()
        }
    }
}

/// What the session knows about a prepared trace beyond the snapshot:
/// whether lanes can shard, and the per-lane VA footprint partial
/// snapshots are sliced by.
struct ShardAnalysis {
    /// Whether the setup events premap every page every lane touches — the
    /// up-front proof that the measured phase cannot demand-fault.
    fully_premapped: bool,
    /// Half-open access-offset span `[min, max)` of each lane (covering
    /// the full 8-byte word of every access), `None` for an empty lane.
    lane_spans: Vec<Option<(u64, u64)>>,
}

/// One prepared trace the session keeps warm between calls.
struct SessionCache {
    trace: Arc<Trace>,
    snapshot: Arc<ReplaySnapshot>,
    analysis: Arc<ShardAnalysis>,
}

/// The unified replay driver: persistent worker pool + snapshot cache +
/// one serial [`TraceReplayer`], executing [`ReplayRequest`]s.
///
/// See the [module docs](self) for the full story.  All request shapes
/// produce bit-identical metrics; the session only changes how much host
/// time they cost.
pub struct ReplaySession {
    params: SimParams,
    observer: Observer,
    pool: ReplayPool,
    driver: TraceReplayer,
    cache_enabled: bool,
    cache: Option<SessionCache>,
}

impl fmt::Debug for ReplaySession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplaySession")
            .field("threads_spawned", &self.pool.threads_spawned())
            .field("cached_snapshot", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

impl ReplaySession {
    /// A session for replays against `params`' machine.  No threads are
    /// spawned and nothing is prepared until the first request needs it.
    pub fn new(params: &SimParams) -> Self {
        ReplaySession {
            params: params.clone(),
            observer: Observer::none(),
            pool: ReplayPool::new(),
            driver: TraceReplayer::new(),
            cache_enabled: true,
            cache: None,
        }
    }

    /// Disables the snapshot cache: every request re-prepares (and the
    /// serial path consumes its snapshot without a clone) — the exact cost
    /// model of the deprecated one-shot entry points, which build their
    /// sessions this way.
    pub fn without_snapshot_cache(mut self) -> Self {
        self.cache_enabled = false;
        self.cache = None;
        self
    }

    /// Installs the observer all subsequent replays report spans, counters
    /// and interval samples to.  Observing never changes replayed metrics.
    pub fn set_observer(&mut self, observer: Observer) {
        self.observer = observer;
    }

    /// The installed observer.
    pub fn observer(&self) -> &Observer {
        &self.observer
    }

    /// The simulation parameters the session replays against.
    pub fn params(&self) -> &SimParams {
        &self.params
    }

    /// Worker threads spawned by this session so far.  Threads persist
    /// across calls — repeated grouped replays leave this constant, which
    /// the API tests pin.
    pub fn threads_spawned(&self) -> usize {
        self.pool.threads_spawned()
    }

    /// Drops the cached snapshot (if any); the next request re-prepares.
    pub fn clear_snapshot_cache(&mut self) {
        self.cache = None;
    }

    /// Executes `request` against `trace` and returns the full report; the
    /// merged metrics are bit-identical for every request shape.
    ///
    /// # Errors
    ///
    /// Fails when the trace cannot be prepared (machine mismatch, unknown
    /// workload, malformed setup events — see the old `replay_trace`), when
    /// the lane selection is invalid, or when a lane group fails even its
    /// serial degradation replay.
    ///
    /// # Panics
    ///
    /// Panics if the request asks for [`ReplayMode::Grouped`] with zero
    /// workers.
    pub fn replay(
        &mut self,
        trace: &Trace,
        request: &ReplayRequest,
    ) -> Result<LaneReplayReport, ReplayError> {
        let start = Instant::now();
        if let Some(lanes) = &request.lanes {
            validate_lane_selection(trace, lanes)?;
        }
        let workers = match request.mode {
            ReplayMode::Serial => 1,
            ReplayMode::Grouped { workers } => {
                assert!(workers > 0, "grouped replay needs at least one worker");
                workers
            }
            ReplayMode::Auto => host_parallelism(),
        };

        let prepare_start = Instant::now();
        let (shared_trace, snapshot, analysis, cache_hit) =
            self.resolve_snapshot(trace, request)?;
        // The reported setup wall is the reconstruction the caller paid
        // for.  A cache hit reconstructs nothing — its verification cost
        // is part of `wall`, not `setup_wall` (the report docs promise
        // exactly zero on a hit).
        let prepare_wall = if cache_hit {
            Duration::ZERO
        } else {
            prepare_start.elapsed()
        };

        let selected: Vec<usize> = match &request.lanes {
            Some(lanes) => lanes.clone(),
            None => (0..trace.lanes.len()).collect(),
        };
        let groups = socket_groups(trace, &selected);

        // Up-front shardability decision, exactly as the old driver made
        // it: every reason to go serial is known before any job is
        // submitted.
        let serial_reason = if selected.len() < 2 {
            Some(ShardDecision::SingleLane)
        } else if workers < 2 {
            Some(ShardDecision::SingleWorker)
        } else if groups.len() < 2 {
            Some(ShardDecision::SingleSocketGroup)
        } else if !analysis.fully_premapped {
            Some(ShardDecision::DemandFaultRisk)
        } else {
            None
        };
        if let Some(decision) = serial_reason {
            return self.run_serial(
                trace,
                snapshot,
                request.lanes.as_deref(),
                decision,
                groups.len(),
                1,
                Vec::new(),
                start,
            );
        }

        // The units of fan-out: per-socket groups verbatim for an explicit
        // worker count (preserving the old driver's group indexing for
        // fault injection and observability tracks), merged down to the
        // host's parallelism for Auto.
        let units = match request.mode {
            ReplayMode::Auto => merge_groups(&groups, workers),
            _ => groups.clone(),
        };
        let spawned = workers.min(units.len());
        let measured_start = Instant::now();
        self.pool.ensure_workers(spawned);
        let plan = request.fault_plan.unwrap_or(*env_plan());

        // Partial snapshots only where the analysis proves them safe: no
        // mid-lane phase changes (a migration allocates frames outside the
        // slice) and a fully premapped footprint (no demand faults).  The
        // proof is backstopped twice: an unexpected panic from a missing
        // page-table slice is caught by worker isolation and retried from
        // the full snapshot path below, and an unexpected demand fault
        // triggers the serial re-run at the end of this function.
        let scoped = snapshot.supports_scoped_clone()
            && analysis.fully_premapped
            && request.snapshots != SnapshotMode::Full;
        let region = snapshot.prepared().region;

        let (sender, results) = mpsc::channel();
        for (index, unit) in units.iter().enumerate() {
            let scope = scoped.then(|| unit_scope(trace, unit, region, &analysis.lane_spans));
            self.pool.submit(unit_job(
                Arc::clone(&shared_trace),
                Arc::clone(&snapshot),
                unit.clone(),
                index,
                self.observer.clone(),
                plan,
                scope,
                sender.clone(),
            ));
        }
        drop(sender);

        let mut slots: Vec<Option<ReplayOutcome>> = (0..units.len()).map(|_| None).collect();
        let mut failures: Vec<GroupFailure> = Vec::new();
        let mut received = 0;
        while received < units.len() {
            match results.recv() {
                Ok((index, Ok(outcome))) => {
                    slots[index] = Some(outcome);
                    received += 1;
                }
                Ok((_, Err(failure))) => {
                    failures.push(failure);
                    received += 1;
                }
                // All senders gone with results outstanding: a job was lost
                // past even its catch_unwind (worker died).  The missing
                // units are synthesised as failures and serially degraded.
                Err(_) => break,
            }
        }
        for (index, slot) in slots.iter().enumerate() {
            if slot.is_none() && !failures.iter().any(|failure| failure.group == index) {
                failures.push(GroupFailure {
                    group: index,
                    kind: GroupFailureKind::Panicked,
                    error: "worker lost before reporting a result".into(),
                    attempts: MAX_GROUP_ATTEMPTS,
                    recovered: false,
                });
            }
        }
        failures.sort_by_key(|failure| failure.group);
        if !failures.is_empty() {
            self.observer
                .counter("replay.group_failures", failures.len() as u64);
        }

        // Graceful degradation, unchanged from the old driver: every unit
        // whose worker gave up replays serially on the driver thread from
        // the *full* shared snapshot (never a partial one — the failure may
        // BE the partial slice), keeping the merged metrics complete.
        self.driver.set_observer(self.observer.clone());
        self.driver.set_observer_track(0);
        for failure in &mut failures {
            let _span = self.observer.span("serial_degradation", 0);
            let outcome =
                self.driver
                    .replay_snapshot_lanes(&snapshot, trace, &units[failure.group])?;
            slots[failure.group] = Some(outcome);
            failure.recovered = true;
            self.observer.counter("replay.serial_degradations", 1);
        }

        let mut outcomes = Vec::with_capacity(units.len());
        for (index, slot) in slots.into_iter().enumerate() {
            outcomes.push(slot.ok_or_else(|| {
                ReplayError::Mismatch(format!("lane group {index} was never replayed"))
            })?);
        }
        if outcomes
            .iter()
            .any(|outcome| outcome.metrics.demand_faults > 0)
        {
            // The analysis proved this impossible; if it fires anyway,
            // favour correctness and eat the extra serial replay.  The
            // report stays honest: the discarded parallel attempt's cost
            // and any worker failures are included.
            return self.run_serial(
                trace,
                snapshot,
                request.lanes.as_deref(),
                ShardDecision::DemandFaultsObserved,
                groups.len(),
                spawned,
                failures,
                start,
            );
        }

        let mut merged = RunMetrics::default();
        let mut clone_wall = Duration::ZERO;
        let mut group_measured_wall = Duration::ZERO;
        for outcome in &outcomes {
            merged.merge(&outcome.metrics);
            clone_wall += outcome.setup_wall;
            group_measured_wall += outcome.measured_wall;
        }
        let Some(first) = outcomes.into_iter().next() else {
            return Err(ReplayError::Mismatch(
                "sharded replay produced no group outcomes".into(),
            ));
        };
        let decision = if failures.is_empty() {
            ShardDecision::Sharded
        } else {
            ShardDecision::ShardedDegraded
        };
        Ok(LaneReplayReport {
            outcome: ReplayOutcome {
                metrics: merged,
                spec: first.spec,
                machine_mismatch: snapshot.machine_mismatch(),
                // Aggregate accounting across the units: what this call
                // paid for preparation (zero on a snapshot-cache hit) plus
                // every unit's clone, vs. total measured-phase worker time.
                setup_wall: prepare_wall + clone_wall,
                measured_wall: group_measured_wall,
                completeness: ReplayCompleteness::Complete,
            },
            lanes: selected.len(),
            groups: groups.len(),
            workers: spawned,
            decision,
            failures,
            wall: start.elapsed(),
            setup_wall: prepare_wall,
            measured_wall: measured_start.elapsed(),
        })
    }

    /// Replays encoded trace `bytes`: intact bytes decode and replay
    /// normally; with [`ReplayRequest::salvage`], a damaged stream is
    /// recovered to its longest checkpoint-attested prefix and that prefix
    /// replays, marked [`ReplayCompleteness::Salvaged`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReplaySession::replay`]; additionally the
    /// decode error of `bytes` when salvage is off (or no
    /// checkpoint-attested prefix survives).
    pub fn replay_bytes(
        &mut self,
        bytes: &[u8],
        request: &ReplayRequest,
    ) -> Result<LaneReplayReport, ReplayError> {
        match Trace::from_bytes(bytes) {
            Ok(trace) => self.replay(&trace, request),
            Err(error) if !request.salvage => Err(error.into()),
            Err(_) => {
                let salvaged = Trace::recover(bytes)?;
                let mut report = self.replay(&salvaged.trace, request)?;
                report.outcome.completeness = ReplayCompleteness::Salvaged {
                    valid_accesses: salvaged.valid_accesses,
                    lost_accesses: salvaged.lost_accesses,
                };
                self.observer.counter("replay.salvaged", 1);
                self.observer
                    .counter("replay.salvaged_lost_accesses", salvaged.lost_accesses);
                Ok(report)
            }
        }
    }

    /// Replays a batch of traces — serially in input order for
    /// [`ReplayMode::Serial`], sharded across the pool otherwise (the
    /// semantics of the old `replay_sequential` / `replay_parallel`).  The
    /// request's lane selection and snapshot mode do not apply (each trace
    /// replays whole, from its own freshly prepared system).
    ///
    /// # Errors
    ///
    /// Fails if any trace does not replay; the first error in input order
    /// is returned.
    ///
    /// # Panics
    ///
    /// Panics if the request asks for [`ReplayMode::Grouped`] with zero
    /// workers.
    pub fn replay_batch(
        &mut self,
        traces: &[Trace],
        request: &ReplayRequest,
    ) -> Result<ReplayReport, ReplayError> {
        let workers = match request.mode {
            ReplayMode::Serial => 1,
            ReplayMode::Grouped { workers } => {
                assert!(workers > 0, "parallel replay needs at least one worker");
                workers
            }
            ReplayMode::Auto => host_parallelism(),
        };
        let workers = workers.min(traces.len()).max(1);
        let options = request.options();
        let start = Instant::now();

        if workers < 2 {
            self.driver.set_observer(self.observer.clone());
            self.driver.set_observer_track(0);
            let results = traces
                .iter()
                .map(|trace| Some(self.driver.replay_full(trace, &self.params, options)))
                .collect();
            return ReplayReport::collect(results, start.elapsed());
        }

        self.pool.ensure_workers(workers);
        let (sender, receiver) = mpsc::channel();
        for (index, trace) in traces.iter().enumerate() {
            // Jobs outlive the borrow of `traces`, so each trace crosses
            // into the pool as its own Arc (one deep copy per trace).
            let trace = Arc::new(trace.clone());
            let params = self.params.clone();
            let observer = self.observer.clone();
            let sender = sender.clone();
            let job: PoolJob = Box::new(move |replayer| {
                replayer.set_observer(observer);
                replayer.set_observer_track(0);
                // A panicking replay is caught at the worker boundary and
                // surfaced as a structured error for its trace; the other
                // traces keep replaying.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    replayer.replay_full(&trace, &params, options)
                }))
                .unwrap_or_else(|payload| Err(ReplayError::Panic(panic_message(payload.as_ref()))));
                let _ = sender.send((index, outcome));
            });
            self.pool.submit(job);
        }
        drop(sender);

        let mut results: Vec<Option<Result<ReplayOutcome, ReplayError>>> =
            (0..traces.len()).map(|_| None).collect();
        while let Ok((index, outcome)) = receiver.recv() {
            results[index] = Some(outcome);
        }
        ReplayReport::collect(results, start.elapsed())
    }

    /// Resolves the prepared snapshot for `trace`: the cached one when the
    /// session has already prepared this exact trace (verified by full
    /// equality — a cache hit is never trusted on shape alone), a fresh
    /// preparation otherwise.
    fn resolve_snapshot(
        &mut self,
        trace: &Trace,
        request: &ReplayRequest,
    ) -> Result<ResolvedSnapshot, ReplayError> {
        if let Some(cache) = &self.cache {
            // A snapshot prepared under force_machine records its mismatch;
            // a later strict request must not ride the downgraded cache
            // entry, so it re-prepares (and errors properly).
            let strict_ok = request.force_machine || cache.snapshot.machine_mismatch().is_none();
            if strict_ok && cache.trace.as_ref() == trace {
                return Ok((
                    Arc::clone(&cache.trace),
                    Arc::clone(&cache.snapshot),
                    Arc::clone(&cache.analysis),
                    true,
                ));
            }
        }
        let snapshot = {
            let _span = self.observer.span("prepare_replay", 0);
            prepare_replay(trace, &self.params, request.options())?
        };
        let shared_trace = Arc::new(trace.clone());
        let snapshot = Arc::new(snapshot);
        let analysis = Arc::new(analyse(trace));
        if self.cache_enabled {
            self.cache = Some(SessionCache {
                trace: Arc::clone(&shared_trace),
                snapshot: Arc::clone(&snapshot),
                analysis: Arc::clone(&analysis),
            });
        }
        Ok((shared_trace, snapshot, analysis, false))
    }

    /// The serial path: all selected lanes on the driver thread, one
    /// system.  When the snapshot is not shared (cache off, nothing else
    /// holding it) it is consumed without a clone — the exact cost model of
    /// the old one-shot entry points; a shared snapshot runs from a clone,
    /// bit-identically.
    #[allow(clippy::too_many_arguments)]
    fn run_serial(
        &mut self,
        trace: &Trace,
        snapshot: Arc<ReplaySnapshot>,
        selection: Option<&[usize]>,
        decision: ShardDecision,
        groups: usize,
        workers: usize,
        failures: Vec<GroupFailure>,
        start: Instant,
    ) -> Result<LaneReplayReport, ReplayError> {
        self.driver.set_observer(self.observer.clone());
        self.driver.set_observer_track(0);
        let outcome = match Arc::try_unwrap(snapshot) {
            Ok(owned) => self.driver.run_lanes(owned, trace, selection)?,
            Err(shared) => match selection {
                Some(lanes) => self.driver.replay_snapshot_lanes(&shared, trace, lanes)?,
                None => self.driver.replay_snapshot(&shared, trace)?,
            },
        };
        let setup_wall = outcome.setup_wall;
        let measured_wall = outcome.measured_wall;
        Ok(LaneReplayReport {
            lanes: selection.map_or(trace.lanes.len(), <[usize]>::len),
            outcome,
            groups,
            workers,
            decision,
            failures,
            wall: start.elapsed(),
            setup_wall,
            measured_wall,
        })
    }
}

/// The host's available parallelism, 1 when unknown.
fn host_parallelism() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Partitions `selection` into per-socket groups: one group per distinct
/// socket, each holding its lanes in selection order, groups ordered by
/// first appearance.  Sized by the trace's machine fingerprint, falling
/// back to the largest lane socket for fingerprint-less v1 traces.
pub(crate) fn socket_groups(trace: &Trace, selection: &[usize]) -> Vec<Vec<usize>> {
    let sockets = (trace.meta.machine.sockets as usize).max(
        selection
            .iter()
            .map(|&index| trace.lanes[index].socket as usize + 1)
            .max()
            .unwrap_or(0),
    );
    let mut group_of_socket: Vec<Option<usize>> = vec![None; sockets];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for &index in selection {
        let socket = trace.lanes[index].socket as usize;
        match group_of_socket[socket] {
            Some(group) => groups[group].push(index),
            None => {
                group_of_socket[socket] = Some(groups.len());
                groups.push(vec![index]);
            }
        }
    }
    groups
}

/// Merges per-socket groups down to at most `target` units: groups are
/// placed largest-first onto the least-loaded unit (LPT scheduling, load =
/// lane count), socket groups are never split, and each unit's lanes are
/// sorted ascending (group replay is order-sensitive).  Deterministic:
/// ties break towards the lower group / unit index, and the returned units
/// are ordered by their first lane.
fn merge_groups(groups: &[Vec<usize>], target: usize) -> Vec<Vec<usize>> {
    if groups.len() <= target {
        return groups.to_vec();
    }
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&group| (std::cmp::Reverse(groups[group].len()), group));
    let mut loads = vec![0usize; target];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); target];
    for group in order {
        let unit = (0..target).min_by_key(|&unit| loads[unit]).unwrap_or(0);
        loads[unit] += groups[group].len();
        members[unit].push(group);
    }
    let mut units: Vec<Vec<usize>> = members
        .into_iter()
        .filter(|member_groups| !member_groups.is_empty())
        .map(|member_groups| {
            let mut lanes: Vec<usize> = member_groups
                .into_iter()
                .flat_map(|group| groups[group].iter().copied())
                .collect();
            lanes.sort_unstable();
            lanes
        })
        .collect();
    units.sort_by_key(|unit| unit.first().copied());
    units
}

/// Computes the shardability facts of `trace` once (cached with the
/// snapshot): premap coverage and per-lane VA spans.
fn analyse(trace: &Trace) -> ShardAnalysis {
    let lane_spans = trace
        .lanes
        .iter()
        .map(|lane| {
            lane.accesses.iter().fold(None, |span, access| {
                // The engine reads the whole 8-byte word at the access.
                let start = access.offset;
                let end = (access.offset | 7) + 1;
                Some(match span {
                    None => (start, end),
                    Some((lo, hi)) => (u64::min(lo, start), u64::max(hi, end)),
                })
            })
        })
        .collect();
    ShardAnalysis {
        fully_premapped: lanes_fully_premapped(trace),
        lane_spans,
    }
}

/// The scope of one unit for a partial snapshot: the distinct sockets its
/// lanes run on, and each lane's VA range (region base + access span).
type UnitScope = (Vec<SocketId>, Vec<(VirtAddr, VirtAddr)>);

/// What [`ReplaySession::resolve_snapshot`] hands back for one replay
/// call: the shared trace, the prepared snapshot, its shardability
/// analysis, and whether all three came from the session cache.
type ResolvedSnapshot = (Arc<Trace>, Arc<ReplaySnapshot>, Arc<ShardAnalysis>, bool);

fn unit_scope(
    trace: &Trace,
    unit: &[usize],
    region: VirtAddr,
    lane_spans: &[Option<(u64, u64)>],
) -> UnitScope {
    let mut sockets = Vec::new();
    let mut ranges = Vec::new();
    for &lane in unit {
        let socket = SocketId::new(trace.lanes[lane].socket);
        if !sockets.contains(&socket) {
            sockets.push(socket);
        }
        if let Some((start, end)) = lane_spans[lane] {
            ranges.push((region.add(start), region.add(end)));
        }
    }
    (sockets, ranges)
}

/// Builds the pool job replaying one unit: fault-injection consultation,
/// bounded retries with backoff, panic isolation — the worker body of the
/// old scoped-thread driver, now dispatched to a persistent worker.
#[allow(clippy::too_many_arguments)]
fn unit_job(
    trace: Arc<Trace>,
    snapshot: Arc<ReplaySnapshot>,
    unit: Vec<usize>,
    index: usize,
    observer: Observer,
    plan: FaultPlan,
    scope: Option<UnitScope>,
    results: mpsc::Sender<(usize, Result<ReplayOutcome, GroupFailure>)>,
) -> PoolJob {
    Box::new(move |replayer| {
        // Track 0 belongs to the driving thread; unit U reports on track
        // U + 1, so concurrent units render as parallel rows.
        let track = index as u64 + 1;
        replayer.set_observer(observer.clone());
        replayer.set_observer_track(track);
        if let Some(delay) = plan.worker_delay(index) {
            observer.counter("fault.worker_slow", 1);
            thread::sleep(delay);
        }
        let mut last_failure: Option<GroupFailure> = None;
        let mut completed = None;
        for attempt in 0..MAX_GROUP_ATTEMPTS {
            if attempt > 0 {
                // Brief exponential backoff before a retry: a transient
                // host condition (the only way a deterministic replay
                // fails intermittently) gets a moment to clear.
                thread::sleep(Duration::from_millis(1 << attempt));
            }
            // A panic anywhere in the unit replay — injected, real, or a
            // partial snapshot whose slice proved too small — is caught at
            // the unit boundary instead of unwinding into the pool worker.
            let result = catch_unwind(AssertUnwindSafe(|| {
                if plan.worker_panics(index, attempt) {
                    observer.counter("fault.worker_panic", 1);
                    panic!("injected worker panic (group {index}, attempt {attempt})");
                }
                let _span = observer.span("group_replay", track);
                match &scope {
                    Some((sockets, ranges)) => {
                        let partial = {
                            let _span = observer.span("snapshot_clone", track);
                            snapshot.clone_scoped(sockets, ranges)
                        }?;
                        replayer.run_lanes(partial, &trace, Some(&unit))
                    }
                    None => replayer.replay_snapshot_lanes(&snapshot, &trace, &unit),
                }
            }));
            match result {
                Ok(Ok(outcome)) => {
                    completed = Some(outcome);
                    break;
                }
                Ok(Err(error)) => {
                    observer.counter("replay.group_attempt_failed", 1);
                    last_failure = Some(GroupFailure {
                        group: index,
                        kind: GroupFailureKind::Errored,
                        error: error.to_string(),
                        attempts: attempt + 1,
                        recovered: false,
                    });
                }
                Err(payload) => {
                    observer.counter("replay.group_attempt_failed", 1);
                    last_failure = Some(GroupFailure {
                        group: index,
                        kind: GroupFailureKind::Panicked,
                        error: panic_message(payload.as_ref()),
                        attempts: attempt + 1,
                        recovered: false,
                    });
                }
            }
        }
        let report = match (completed, last_failure) {
            (Some(outcome), _) => Ok(outcome),
            (None, Some(failure)) => Err(failure),
            // mitosis-lint: allow(panic-hygiene, reason = "MAX_GROUP_ATTEMPTS is a nonzero const, so the attempt loop always sets completed or last_failure before reaching this match")
            (None, None) => unreachable!("MAX_GROUP_ATTEMPTS is nonzero"),
        };
        let _ = results.send((index, report));
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_groups_respects_target_and_sorts_lanes() {
        // 4 socket groups onto 2 units: LPT pairs the largest with the
        // smallest; lanes within each unit come out ascending.
        let groups = vec![vec![0, 4, 5], vec![1], vec![2, 6], vec![3]];
        let units = merge_groups(&groups, 2);
        assert_eq!(units.len(), 2);
        let mut all: Vec<usize> = units.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6]);
        for unit in &units {
            assert!(unit.windows(2).all(|pair| pair[0] < pair[1]));
        }
        // Largest group (3 lanes) sits alone-ish: its unit has 4 lanes,
        // the other 3 — the balanced LPT split.
        let mut sizes: Vec<usize> = units.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 4]);
    }

    #[test]
    fn merge_groups_is_identity_at_or_above_group_count() {
        let groups = vec![vec![0, 2], vec![1, 3]];
        assert_eq!(merge_groups(&groups, 2), groups);
        assert_eq!(merge_groups(&groups, 8), groups);
    }

    #[test]
    fn merge_groups_never_splits_a_socket_group() {
        let groups = vec![vec![0, 3], vec![1, 4], vec![2, 5]];
        let units = merge_groups(&groups, 2);
        for group in &groups {
            let holder = units
                .iter()
                .filter(|unit| group.iter().any(|lane| unit.contains(lane)))
                .count();
            assert_eq!(holder, 1, "group {group:?} split across units");
        }
    }
}
