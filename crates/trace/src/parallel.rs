//! Parallel trace replay: trace-granular and lane-granular sharding.
//!
//! Each trace in a batch describes one captured process (workload), and
//! replaying it is embarrassingly parallel: every replay builds its own
//! fresh [`System`](mitosis_vmm::System) and
//! [`ExecutionEngine`](mitosis_sim::ExecutionEngine) — hence
//! its own per-core MMU models, page tables and allocator — so N traces
//! shard cleanly across worker threads with no shared mutable state.  The
//! per-trace metrics are bit-identical to sequential replay (and to the
//! live runs); only wall-clock time changes.
//!
//! [`replay_parallel_lanes`] shards *within* one trace, at the granularity
//! of **per-socket lane groups**: lanes are partitioned by the socket their
//! thread ran on, each group replays its lanes in lane order against its
//! own clone of a single prepared-system snapshot (the setup events are
//! executed once, not once per group), and the per-group metrics merge
//! deterministically.  Grouping by socket is what makes the merge
//! bit-identical to whole-trace replay — lanes sharing a socket interact
//! through that socket's page-table-line cache and therefore stay
//! together, while lanes on different sockets touch disjoint caches.  The
//! one remaining cross-group channel is the frame allocator: a demand
//! fault allocates, so earlier lanes' faults shape what later lanes see.
//! Rather than replaying first and checking for faults afterwards (paying
//! for a parallel *and* a serial replay on the fallback path), the driver
//! performs an **up-front shardability analysis**: if the setup events
//! premap every page the lanes touch, no demand fault is possible and the
//! groups shard; otherwise the replay goes serial *before* any worker is
//! spawned.  [`LaneReplayReport::decision`] records which way it went and
//! why.

use crate::faultinject::FaultPlan;
use crate::format::{Trace, TraceEvent};
use crate::replay::{
    prepare_replay, replay_trace, ReplayCompleteness, ReplayError, ReplayOptions, ReplayOutcome,
    TraceReplayer,
};
use mitosis_sim::{Observer, RunMetrics, SimParams};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

/// Attempts a failed lane group is given before the driver degrades it to a
/// serial replay: the first run plus two backed-off retries.
const MAX_GROUP_ATTEMPTS: u32 = 3;

/// Extracts a human-readable message from a caught panic payload (panics
/// almost always carry `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Cross-trace aggregate of a batch replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayAggregate {
    /// Number of traces replayed.
    pub traces: usize,
    /// Total accesses replayed across all traces and threads.
    pub accesses: u64,
    /// Sum of per-trace runtimes (total simulated work).
    pub total_cycles_sum: u64,
    /// Slowest per-trace runtime (simulated makespan if the simulated
    /// processes ran concurrently on disjoint machines).
    pub total_cycles_max: u64,
    /// Summed translation cycles.
    pub translation_cycles: u64,
    /// Summed demand faults taken during the measured phases.
    pub demand_faults: u64,
}

impl ReplayAggregate {
    fn absorb(&mut self, metrics: &RunMetrics) {
        self.traces += 1;
        self.accesses += metrics.accesses;
        self.total_cycles_sum += metrics.total_cycles;
        self.total_cycles_max = self.total_cycles_max.max(metrics.total_cycles);
        self.translation_cycles += metrics.translation_cycles;
        self.demand_faults += metrics.demand_faults;
    }
}

/// Result of replaying a batch of traces.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-trace outcomes, in input order.
    pub outcomes: Vec<ReplayOutcome>,
    /// Cross-trace aggregate.
    pub aggregate: ReplayAggregate,
    /// Wall-clock time the batch took on the host, setup included.
    pub wall: Duration,
    /// Summed host time the per-trace setup reconstructions took.  For the
    /// parallel driver the phases of different traces overlap, so this is
    /// aggregate worker time, not elapsed time — it can exceed `wall`.
    pub setup_wall: Duration,
    /// Summed host time of the measured phases alone (same aggregation
    /// caveat as `setup_wall`).
    pub measured_wall: Duration,
}

impl ReplayReport {
    /// Replayed accesses per host second of total elapsed time — the
    /// headline number the parallel driver improves (it includes setup, so
    /// sharding setup across workers shows up here).
    pub fn accesses_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.aggregate.accesses as f64 / self.wall.as_secs_f64()
    }

    /// Measured-phase replay rate: accesses per host second of
    /// measured-phase time, *excluding* setup reconstruction.  This is the
    /// number to compare against live-run engine throughput — folding the
    /// setup in (as the old single `wall` did) understates it.
    pub fn throughput(&self) -> f64 {
        if self.measured_wall.is_zero() {
            return 0.0;
        }
        self.aggregate.accesses as f64 / self.measured_wall.as_secs_f64()
    }

    /// The one-line human-readable summary ([`ReplayReport`] also
    /// implements [`std::fmt::Display`] with the same text).
    pub fn summary(&self) -> String {
        self.to_string()
    }

    fn collect(
        results: Vec<Option<Result<ReplayOutcome, ReplayError>>>,
        wall: Duration,
    ) -> Result<ReplayReport, ReplayError> {
        let mut outcomes = Vec::with_capacity(results.len());
        for (index, result) in results.into_iter().enumerate() {
            outcomes.push(result.ok_or_else(|| {
                ReplayError::Mismatch(format!(
                    "trace {index} was never claimed by a replay worker"
                ))
            })??);
        }
        let mut aggregate = ReplayAggregate::default();
        let mut setup_wall = Duration::ZERO;
        let mut measured_wall = Duration::ZERO;
        for outcome in &outcomes {
            aggregate.absorb(&outcome.metrics);
            setup_wall += outcome.setup_wall;
            measured_wall += outcome.measured_wall;
        }
        Ok(ReplayReport {
            outcomes,
            aggregate,
            wall,
            setup_wall,
            measured_wall,
        })
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} trace(s), {} accesses in {:.1} ms ({:.2} M accesses/s) | \
             setup {:.1} ms, measured {:.1} ms (measured-phase rate {:.2} M accesses/s) | \
             slowest trace {} cycles, {} demand faults",
            self.aggregate.traces,
            self.aggregate.accesses,
            self.wall.as_secs_f64() * 1e3,
            self.accesses_per_second() / 1e6,
            self.setup_wall.as_secs_f64() * 1e3,
            self.measured_wall.as_secs_f64() * 1e3,
            self.throughput() / 1e6,
            self.aggregate.total_cycles_max,
            self.aggregate.demand_faults,
        )
    }
}

/// Replays `traces` one after another on the calling thread.
///
/// # Errors
///
/// Fails on the first trace that does not replay (see
/// [`replay_trace`]).
pub fn replay_sequential(
    traces: &[Trace],
    params: &SimParams,
) -> Result<ReplayReport, ReplayError> {
    let start = Instant::now();
    let results = traces
        .iter()
        .map(|trace| Some(replay_trace(trace, params)))
        .collect();
    ReplayReport::collect(results, start.elapsed())
}

/// Replays `traces` sharded across up to `workers` host threads, merging
/// the metrics at the end.
///
/// Work is distributed dynamically (an atomic cursor over the batch), so a
/// mix of long and short traces still load-balances.  Per-trace results are
/// identical to [`replay_sequential`]; with enough host cores the batch
/// completes in roughly `1/min(workers, len)` of the sequential wall time.
///
/// # Errors
///
/// Fails if any trace does not replay; the first error in input order is
/// returned.
pub fn replay_parallel(
    traces: &[Trace],
    params: &SimParams,
    workers: usize,
) -> Result<ReplayReport, ReplayError> {
    assert!(workers > 0, "parallel replay needs at least one worker");
    let workers = workers.min(traces.len()).max(1);
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<ReplayOutcome, ReplayError>>>> =
        Mutex::new((0..traces.len()).map(|_| None).collect());

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One pooled engine per worker: traces of a batch share the
                // machine, so the engine is reset (not rebuilt) per trace.
                let mut replayer = TraceReplayer::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= traces.len() {
                        break;
                    }
                    // A panicking replay is caught at the worker boundary
                    // and surfaced as a structured error for its trace;
                    // the other traces keep replaying.
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| replayer.replay(&traces[index], params)))
                            .unwrap_or_else(|payload| {
                                Err(ReplayError::Panic(panic_message(payload.as_ref())))
                            });
                    results
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())[index] = Some(outcome);
                }
            });
        }
    });

    let results = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    ReplayReport::collect(results, start.elapsed())
}

/// Why [`replay_parallel_lanes`] did — or did not — shard a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardDecision {
    /// The lanes were partitioned into per-socket groups and replayed in
    /// parallel.
    Sharded,
    /// The lanes sharded, but at least one group's worker failed (panicked
    /// or errored) past its retry budget and was replayed serially on the
    /// driver thread instead — the merged metrics are still bit-identical
    /// to [`replay_trace`]; see [`LaneReplayReport::failures`] for what
    /// went wrong.
    ShardedDegraded,
    /// The trace has a single lane: nothing to shard.
    SingleLane,
    /// Fewer than two workers were requested.
    SingleWorker,
    /// Every lane runs on one socket, so all lanes share page-table-line
    /// cache state and form a single group: no parallelism to win.
    SingleSocketGroup,
    /// The setup events do not premap every page the lanes touch, so
    /// demand faults during the measured phase are possible; faulting
    /// lanes interact through the frame allocator and cannot shard.  The
    /// replay went serial *before* any worker was spawned.
    DemandFaultRisk,
    /// Defensive fallback: a group replay took a demand fault the up-front
    /// analysis did not predict (this indicates an analysis bug and cannot
    /// happen for captured traces); the driver re-ran serially so the
    /// metrics stay bit-identical to [`replay_trace`].
    DemandFaultsObserved,
}

impl ShardDecision {
    /// `true` when the lanes were actually replayed in parallel (including
    /// a degraded shard where some groups fell back to the driver thread).
    pub fn sharded(&self) -> bool {
        matches!(
            self,
            ShardDecision::Sharded | ShardDecision::ShardedDegraded
        )
    }
}

impl fmt::Display for ShardDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            ShardDecision::Sharded => "sharded into per-socket lane groups",
            ShardDecision::ShardedDegraded => {
                "sharded, with failed group(s) degraded to serial replay"
            }
            ShardDecision::SingleLane => "serial: single-lane trace",
            ShardDecision::SingleWorker => "serial: one worker requested",
            ShardDecision::SingleSocketGroup => "serial: all lanes on one socket",
            ShardDecision::DemandFaultRisk => {
                "serial: premapped footprint does not cover the lanes (demand-fault risk)"
            }
            ShardDecision::DemandFaultsObserved => {
                "serial: unpredicted demand faults observed during group replay"
            }
        };
        f.write_str(what)
    }
}

/// How a lane-group worker failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupFailureKind {
    /// The worker panicked; the panic was caught at the group boundary.
    Panicked,
    /// The group replay returned a [`ReplayError`].
    Errored,
}

/// One lane group's worker failure, recorded on
/// [`LaneReplayReport::failures`] instead of unwinding the driver.
#[derive(Debug, Clone)]
pub struct GroupFailure {
    /// Index of the failed lane group (see [`LaneReplayReport::groups`]).
    pub group: usize,
    /// Whether the worker panicked or returned an error.
    pub kind: GroupFailureKind,
    /// The panic message or error text of the *last* failed attempt.
    pub error: String,
    /// Attempts the group was given on its worker before the driver gave
    /// up on it (the first run plus backed-off retries; retries stop early
    /// only on success).
    pub attempts: u32,
    /// `true` when the driver's serial degradation replayed the group
    /// successfully, keeping the merged metrics complete and correct.
    pub recovered: bool,
}

impl fmt::Display for GroupFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "group {} {} after {} attempt(s) ({}){}",
            self.group,
            match self.kind {
                GroupFailureKind::Panicked => "panicked",
                GroupFailureKind::Errored => "errored",
            },
            self.attempts,
            self.error,
            if self.recovered {
                "; recovered by serial replay"
            } else {
                ""
            },
        )
    }
}

/// Result of a lane-granular parallel replay of one trace.
#[derive(Debug, Clone)]
pub struct LaneReplayReport {
    /// The merged outcome — metrics bit-identical to [`replay_trace`] on
    /// the same trace.
    pub outcome: ReplayOutcome,
    /// Number of lanes in the trace.
    pub lanes: usize,
    /// Number of distinct per-socket lane groups the lanes partition into
    /// (informative even when the replay went serial).
    pub groups: usize,
    /// Worker threads actually spawned (1 for a serial replay that never
    /// spawned any).
    pub workers: usize,
    /// Whether the lanes sharded, and if not, why.
    pub decision: ShardDecision,
    /// Worker failures (panics or errors) that were isolated and recovered
    /// from instead of unwinding the driver; empty on a clean replay.  A
    /// failure with `recovered == true` did not affect the merged metrics
    /// — its group was replayed serially on the driver thread.
    pub failures: Vec<GroupFailure>,
    /// Wall-clock time of the replay on the host, setup included.  On a
    /// serial fallback this is the fallback's own cost: the shardability
    /// analysis runs before any replay, so a declined shard never pays for
    /// a discarded parallel attempt.  The one exception is the defensive
    /// [`ShardDecision::DemandFaultsObserved`] path, where a parallel
    /// replay really did run and really was discarded — its cost is
    /// included, because it was paid.
    pub wall: Duration,
    /// Elapsed host time of the one setup-event reconstruction (the shared
    /// snapshot's preparation; on a serial path, the serial replay's own
    /// prepare).  With snapshot-based sharding this is paid **once**, not
    /// once per worker group — the groups clone the prepared system.
    pub setup_wall: Duration,
    /// Elapsed host time from the end of setup to the last worker
    /// finishing (serial path: the measured phase alone).  `throughput()`
    /// divides by this.
    pub measured_wall: Duration,
}

impl LaneReplayReport {
    /// `true` if the lanes were actually sharded across workers.
    pub fn sharded(&self) -> bool {
        self.decision.sharded()
    }

    /// Replayed accesses per host second of total elapsed time (setup
    /// included).
    pub fn accesses_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.outcome.metrics.accesses as f64 / self.wall.as_secs_f64()
    }

    /// Measured-phase replay rate: accesses per host second of
    /// measured-phase elapsed time, excluding the setup reconstruction.
    /// The old single-`wall` rate understated the measured-phase rate by
    /// folding the (now snapshot-amortised) setup cost in.
    pub fn throughput(&self) -> f64 {
        if self.measured_wall.is_zero() {
            return 0.0;
        }
        self.outcome.metrics.accesses as f64 / self.measured_wall.as_secs_f64()
    }

    /// The one-line human-readable summary ([`LaneReplayReport`] also
    /// implements [`std::fmt::Display`] with the same text).
    pub fn summary(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for LaneReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lane(s) in {} group(s) across {} worker(s), {} | \
             {} accesses in {:.1} ms ({:.2} M accesses/s; setup {:.1} ms, \
             measured {:.1} ms) | {} cycles, {} demand faults",
            self.lanes,
            self.groups,
            self.workers,
            self.decision,
            self.outcome.metrics.accesses,
            self.wall.as_secs_f64() * 1e3,
            self.accesses_per_second() / 1e6,
            self.setup_wall.as_secs_f64() * 1e3,
            self.measured_wall.as_secs_f64() * 1e3,
            self.outcome.metrics.total_cycles,
            self.outcome.metrics.demand_faults,
        )?;
        for failure in &self.failures {
            write!(f, " | {failure}")?;
        }
        Ok(())
    }
}

/// Partitions the lanes of `trace` into per-socket groups: one group per
/// distinct socket, each holding its lanes' indices in ascending lane
/// order, groups ordered by first appearance.  Sized by the trace's
/// machine fingerprint (not a hard-coded cap — a lane on socket 3000 of
/// some future rack-scale fingerprint grouping works the same as socket 0),
/// falling back to the maximum lane socket for fingerprint-less v1 traces.
fn lane_groups(trace: &Trace) -> Vec<Vec<usize>> {
    let sockets = (trace.meta.machine.sockets as usize).max(
        trace
            .lanes
            .iter()
            .map(|lane| lane.socket as usize + 1)
            .max()
            .unwrap_or(0),
    );
    let mut group_of_socket: Vec<Option<usize>> = vec![None; sockets];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (index, lane) in trace.lanes.iter().enumerate() {
        let socket = lane.socket as usize;
        match group_of_socket[socket] {
            Some(group) => groups[group].push(index),
            None => {
                group_of_socket[socket] = Some(groups.len());
                groups.push(vec![index]);
            }
        }
    }
    groups
}

/// The number of bytes from the region start that the setup events premap
/// (populate or `MAP_POPULATE`), or `None` when the setup is too unusual to
/// analyse (no single mmap).  Every byte below the returned length is
/// mapped before the measured phase begins — and no mid-lane phase change
/// unmaps (migrations and replica changes remap pages, they never leave a
/// hole) — so accesses within it can never demand-fault.
fn premapped_bytes(trace: &Trace) -> Option<u64> {
    let mut mmaps = 0usize;
    let mut covered = 0u64;
    for event in &trace.setup_events {
        match *event {
            TraceEvent::Mmap { len, populate, .. } => {
                mmaps += 1;
                if populate {
                    covered = covered.max(len);
                }
            }
            TraceEvent::Populate { len, .. } => covered = covered.max(len),
            _ => {}
        }
    }
    (mmaps == 1).then_some(covered)
}

/// Whether the premapped footprint covers every access of every lane — the
/// up-front proof that the measured phase cannot demand-fault, and hence
/// that the frame allocator (the one cross-group channel left after
/// per-socket grouping) evolves identically in every group's reconstructed
/// system.
fn lanes_fully_premapped(trace: &Trace) -> bool {
    let Some(covered) = premapped_bytes(trace) else {
        return false;
    };
    trace.lanes.iter().all(|lane| {
        lane.accesses
            .iter()
            // `| 7` is the last byte of the 8-byte word the engine reads.
            .all(|access| (access.offset | 7) < covered)
    })
}

/// Replays a single trace with its lanes sharded across up to `workers`
/// host threads as **per-socket lane groups**, merging the per-group
/// metrics deterministically.
///
/// The captured system is reconstructed from the setup events **once**, on
/// the calling thread, into a [`ReplaySnapshot`](crate::ReplaySnapshot);
/// every worker then *clones* that snapshot per lane group instead of
/// re-executing the setup events — grouped replay wall time no longer pays
/// setup size × number of groups.  Each group replays whole lanes of one
/// socket, in lane order (and re-applies the mid-lane phase-change
/// schedule at the same boundaries), so multi-thread-per-socket captures
/// still shard, one group per socket.  Sharding is decided *before* the
/// snapshot is taken by a static shardability analysis (see
/// [`ShardDecision`]): the setup events must premap every page the lanes
/// touch, which proves the measured phase cannot demand-fault.  When the
/// analysis declines, the driver transparently replays serially, so the
/// merged metrics are bit-identical to [`replay_trace`] in every case.
///
/// Worker failures are isolated: a lane group whose worker panics or
/// errors is retried with a short backoff and, past its retry budget,
/// replayed serially on the driver thread from the shared snapshot — the
/// merged metrics stay complete and bit-identical, with the failure
/// recorded on [`LaneReplayReport::failures`] and the decision downgraded
/// to [`ShardDecision::ShardedDegraded`].
///
/// # Errors
///
/// Fails if the preparation or the serial whole-trace replay does not
/// replay, or if a lane group fails even its serial degradation replay.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn replay_parallel_lanes(
    trace: &Trace,
    params: &SimParams,
    workers: usize,
) -> Result<LaneReplayReport, ReplayError> {
    replay_parallel_lanes_observed(trace, params, workers, &Observer::none())
}

/// [`replay_parallel_lanes`] reporting to an [`Observer`]: the driver's
/// phases become spans — `prepare_replay` (one per replay, track 0) and,
/// when the trace shards, a `group_replay` span per lane group on the
/// group's own track (group index + 1), with the group's `snapshot_clone`
/// and `replay.measured` spans (and its interval samples, when streaming is
/// enabled) nested on the same track.  The serial paths replay through an
/// observer-carrying [`TraceReplayer`] on track 0 instead.  Observing never
/// changes the replayed metrics.
///
/// # Errors
///
/// Same conditions as [`replay_parallel_lanes`].
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn replay_parallel_lanes_observed(
    trace: &Trace,
    params: &SimParams,
    workers: usize,
    observer: &Observer,
) -> Result<LaneReplayReport, ReplayError> {
    replay_parallel_lanes_faulted(
        trace,
        params,
        workers,
        observer,
        crate::faultinject::env_plan(),
    )
}

/// [`replay_parallel_lanes_observed`] with an explicit [`FaultPlan`]: the
/// plan's worker faults (injected panics, slow workers) are exercised at
/// the group-replay boundary, which is how the resilience tests drive the
/// panic-isolation and serial-degradation machinery deterministically.
/// Production callers go through [`replay_parallel_lanes`], which reads
/// the plan from the `MITOSIS_FAULT_*` environment (disabled by default).
///
/// A failing group — injected or real — is retried on its worker with a
/// short backoff, then replayed serially on the driver thread from the
/// shared snapshot.  Either way the merged metrics stay bit-identical to
/// [`replay_trace`]; what happened is recorded on
/// [`LaneReplayReport::failures`] and [`LaneReplayReport::decision`].
///
/// # Errors
///
/// Same conditions as [`replay_parallel_lanes`]; a worker failure alone is
/// *not* an error (it degrades), but a group whose serial degradation also
/// fails propagates that failure.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn replay_parallel_lanes_faulted(
    trace: &Trace,
    params: &SimParams,
    workers: usize,
    observer: &Observer,
    plan: &FaultPlan,
) -> Result<LaneReplayReport, ReplayError> {
    assert!(
        workers > 0,
        "lane-granular replay needs at least one worker"
    );
    let start = Instant::now();
    let lanes = trace.lanes.len();
    let groups = lane_groups(trace);

    let serial = |decision: ShardDecision,
                  groups: usize,
                  workers: usize,
                  failures: Vec<GroupFailure>,
                  start: Instant|
     -> Result<LaneReplayReport, ReplayError> {
        let mut replayer = TraceReplayer::new();
        replayer.set_observer(observer.clone());
        let outcome = replayer.replay(trace, params)?;
        let setup_wall = outcome.setup_wall;
        let measured_wall = outcome.measured_wall;
        Ok(LaneReplayReport {
            outcome,
            lanes,
            groups,
            workers,
            decision,
            failures,
            wall: start.elapsed(),
            setup_wall,
            measured_wall,
        })
    };

    // Up-front shardability analysis: every reason to go serial is known
    // before the first worker spawns, so the serial path never pays for a
    // discarded parallel replay (nor for an unused snapshot).
    let decision = if lanes < 2 {
        Some(ShardDecision::SingleLane)
    } else if workers < 2 {
        Some(ShardDecision::SingleWorker)
    } else if groups.len() < 2 {
        Some(ShardDecision::SingleSocketGroup)
    } else if !lanes_fully_premapped(trace) {
        Some(ShardDecision::DemandFaultRisk)
    } else {
        None
    };
    if let Some(decision) = decision {
        return serial(decision, groups.len(), 1, Vec::new(), start);
    }

    // One setup execution for the whole replay: every group clones this.
    let snapshot = {
        let _span = observer.span("prepare_replay", 0);
        prepare_replay(trace, params, ReplayOptions::default())?
    };
    let setup_wall = snapshot.setup_wall();
    let measured_start = Instant::now();

    let spawned = workers.min(groups.len());
    let next = AtomicUsize::new(0);
    // Workers store successes here and failure records separately; a
    // panicking attempt is caught before any lock is held, but the locks
    // still recover from poisoning defensively (the data is only written
    // between attempts, never mid-panic).
    let results: Mutex<Vec<Option<ReplayOutcome>>> =
        Mutex::new((0..groups.len()).map(|_| None).collect());
    let failures: Mutex<Vec<GroupFailure>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| {
                let mut replayer = TraceReplayer::new();
                replayer.set_observer(observer.clone());
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= groups.len() {
                        break;
                    }
                    // Track 0 belongs to the driving thread (the
                    // prepare_replay span); lane group G reports on track
                    // G + 1, so concurrent groups render as parallel rows
                    // and their interval streams accumulate separately.
                    let track = index as u64 + 1;
                    replayer.set_observer_track(track);
                    if let Some(delay) = plan.worker_delay(index) {
                        observer.counter("fault.worker_slow", 1);
                        thread::sleep(delay);
                    }
                    let mut last_failure: Option<GroupFailure> = None;
                    let mut completed = None;
                    for attempt in 0..MAX_GROUP_ATTEMPTS {
                        if attempt > 0 {
                            // Brief exponential backoff before a retry: a
                            // transient host condition (the only way a
                            // deterministic replay fails intermittently)
                            // gets a moment to clear.
                            thread::sleep(Duration::from_millis(1 << attempt));
                        }
                        // A panic anywhere in the group replay — injected
                        // or real — is caught here, at the worker's group
                        // boundary, instead of unwinding the scope and
                        // aborting the sibling groups.  Retrying with the
                        // same replayer is safe: every run starts with an
                        // engine reset and a fresh snapshot clone, so no
                        // state of the failed attempt survives.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            if plan.worker_panics(index, attempt) {
                                observer.counter("fault.worker_panic", 1);
                                panic!("injected worker panic (group {index}, attempt {attempt})");
                            }
                            let _span = observer.span("group_replay", track);
                            replayer.replay_snapshot_lanes(&snapshot, trace, &groups[index])
                        }));
                        match result {
                            Ok(Ok(outcome)) => {
                                completed = Some(outcome);
                                break;
                            }
                            Ok(Err(error)) => {
                                observer.counter("replay.group_attempt_failed", 1);
                                last_failure = Some(GroupFailure {
                                    group: index,
                                    kind: GroupFailureKind::Errored,
                                    error: error.to_string(),
                                    attempts: attempt + 1,
                                    recovered: false,
                                });
                            }
                            Err(payload) => {
                                observer.counter("replay.group_attempt_failed", 1);
                                last_failure = Some(GroupFailure {
                                    group: index,
                                    kind: GroupFailureKind::Panicked,
                                    error: panic_message(payload.as_ref()),
                                    attempts: attempt + 1,
                                    recovered: false,
                                });
                            }
                        }
                    }
                    match completed {
                        Some(outcome) => {
                            results
                                .lock()
                                .unwrap_or_else(|poisoned| poisoned.into_inner())[index] =
                                Some(outcome);
                        }
                        None => {
                            if let Some(failure) = last_failure {
                                failures
                                    .lock()
                                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                                    .push(failure);
                            }
                        }
                    }
                }
            });
        }
    });

    let results = results
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut failures = failures
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    failures.sort_by_key(|failure| failure.group);
    if !failures.is_empty() {
        observer.counter("replay.group_failures", failures.len() as u64);
    }

    // Graceful degradation: every group whose worker gave up is replayed
    // serially on the driver thread, from the same shared snapshot the
    // workers cloned — so the merged metrics are still complete and
    // bit-identical to a whole-trace replay.
    let mut slots = results;
    for failure in &mut failures {
        let _span = observer.span("serial_degradation", 0);
        let mut replayer = TraceReplayer::new();
        replayer.set_observer(observer.clone());
        let outcome = replayer.replay_snapshot_lanes(&snapshot, trace, &groups[failure.group])?;
        slots[failure.group] = Some(outcome);
        failure.recovered = true;
        observer.counter("replay.serial_degradations", 1);
    }

    let mut outcomes = Vec::with_capacity(groups.len());
    for (index, slot) in slots.into_iter().enumerate() {
        outcomes.push(slot.ok_or_else(|| {
            ReplayError::Mismatch(format!("lane group {index} was never replayed"))
        })?);
    }
    if outcomes
        .iter()
        .any(|outcome| outcome.metrics.demand_faults > 0)
    {
        // The analysis proved this impossible; if it ever fires anyway,
        // favour correctness and eat the extra serial replay.  The report
        // stays honest: the spawned workers, the discarded parallel
        // attempt's cost, and any worker failures are all included.
        return serial(
            ShardDecision::DemandFaultsObserved,
            groups.len(),
            spawned,
            failures,
            start,
        );
    }
    let mut merged = RunMetrics::default();
    let mut clone_wall = Duration::ZERO;
    let mut group_measured_wall = Duration::ZERO;
    for outcome in &outcomes {
        merged.merge(&outcome.metrics);
        // Per-group snapshot clone + measured-phase costs are aggregate
        // worker time; the report's elapsed phases come from the driver's
        // own clock below.
        clone_wall += outcome.setup_wall;
        group_measured_wall += outcome.measured_wall;
    }
    let Some(first) = outcomes.into_iter().next() else {
        return Err(ReplayError::Mismatch(
            "sharded replay produced no group outcomes".into(),
        ));
    };
    let decision = if failures.is_empty() {
        ShardDecision::Sharded
    } else {
        ShardDecision::ShardedDegraded
    };
    Ok(LaneReplayReport {
        outcome: ReplayOutcome {
            metrics: merged,
            spec: first.spec,
            // Lane-granular replay is always strict (no ReplayOptions
            // plumbing): a fingerprint mismatch errors out before any
            // outcome exists, so there is never a downgrade to record.
            machine_mismatch: None,
            // The merged outcome's own accounting stays aggregate: total
            // clone cost paid across groups vs. total measured-phase
            // worker time.
            setup_wall: setup_wall + clone_wall,
            measured_wall: group_measured_wall,
            completeness: ReplayCompleteness::Complete,
        },
        lanes,
        groups: groups.len(),
        workers: spawned,
        decision,
        failures,
        wall: start.elapsed(),
        setup_wall,
        measured_wall: measured_start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_engine_run;
    use mitosis_numa::SocketId;
    use mitosis_workloads::suite;

    fn small_traces(n: usize) -> (Vec<Trace>, SimParams) {
        let params = SimParams::quick_test().with_accesses(300);
        let traces = (0..n)
            .map(|i| {
                let spec = if i % 2 == 0 {
                    suite::gups()
                } else {
                    suite::btree()
                };
                capture_engine_run(&spec, &params, &[SocketId::new((i % 4) as u16)])
                    .unwrap()
                    .trace
            })
            .collect();
        (traces, params)
    }

    #[test]
    fn parallel_matches_sequential_per_trace() {
        let (traces, params) = small_traces(5);
        let sequential = replay_sequential(&traces, &params).unwrap();
        let parallel = replay_parallel(&traces, &params, 4).unwrap();
        assert_eq!(sequential.outcomes.len(), 5);
        for (s, p) in sequential.outcomes.iter().zip(&parallel.outcomes) {
            assert_eq!(s.metrics, p.metrics);
        }
        assert_eq!(sequential.aggregate, parallel.aggregate);
        assert_eq!(parallel.aggregate.traces, 5);
        assert_eq!(parallel.aggregate.accesses, 5 * 300);
    }

    #[test]
    fn worker_count_is_clamped_to_the_batch() {
        let (traces, params) = small_traces(2);
        let report = replay_parallel(&traces, &params, 64).unwrap();
        assert_eq!(report.aggregate.traces, 2);
        assert!(report.accesses_per_second() > 0.0);
    }

    fn synthetic_trace(fingerprint_sockets: u16, lane_sockets: &[u16]) -> Trace {
        use crate::format::{MachineFingerprint, TraceLane, TraceMeta};
        Trace {
            meta: TraceMeta {
                workload: "GUPS".into(),
                footprint: 1 << 26,
                seed: 1,
                write_fraction: 0.5,
                compute_cycles_per_access: 5,
                bandwidth_intensity: 0.9,
                machine: MachineFingerprint {
                    machine_scale: 1,
                    sockets: fingerprint_sockets,
                    frames_per_socket: 1 << 14,
                },
            },
            setup_events: vec![],
            lanes: lane_sockets
                .iter()
                .map(|&socket| TraceLane::new(socket))
                .collect(),
        }
    }

    #[test]
    fn lane_grouping_is_sized_by_the_machine_fingerprint() {
        // The old driver kept a hard-coded `[bool; 64]` socket table, so a
        // lane on socket >= 64 silently disabled sharding.  Grouping now
        // follows the trace's fingerprint: sockets far beyond 64 partition
        // like any others.
        let trace = synthetic_trace(3000, &[2900, 70, 2900, 70, 0]);
        let groups = lane_groups(&trace);
        assert_eq!(groups, vec![vec![0, 2], vec![1, 3], vec![4]]);

        // Fingerprint-less v1 traces (sockets == 0) size by the lanes
        // themselves instead of panicking.
        let v1 = synthetic_trace(0, &[90, 90, 1]);
        assert_eq!(lane_groups(&v1), vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn premapped_analysis_reads_the_setup_events() {
        use crate::format::TraceEvent;
        use mitosis_workloads::Access;
        let mut trace = synthetic_trace(4, &[0, 1]);
        for lane in &mut trace.lanes {
            lane.accesses.push(Access {
                offset: 512,
                is_write: false,
            });
        }
        // No mmap at all: unanalysable.
        assert_eq!(premapped_bytes(&trace), None);
        assert!(!lanes_fully_premapped(&trace));
        // Lazy mmap without populate: nothing premapped.
        trace.setup_events = vec![TraceEvent::Mmap {
            len: 1 << 26,
            populate: false,
            thp: true,
        }];
        assert_eq!(premapped_bytes(&trace), Some(0));
        assert!(!lanes_fully_premapped(&trace));
        // A populate covers its length.
        trace.setup_events.push(TraceEvent::Populate {
            len: 1 << 20,
            parallel: false,
            sockets: 0b1,
        });
        assert_eq!(premapped_bytes(&trace), Some(1 << 20));
        assert!(lanes_fully_premapped(&trace));
        // MAP_POPULATE covers the whole mapping.
        trace.setup_events[0] = TraceEvent::Mmap {
            len: 1 << 26,
            populate: true,
            thp: true,
        };
        assert_eq!(premapped_bytes(&trace), Some(1 << 26));
        // Two mmaps: conservatively unanalysable.
        trace.setup_events.push(TraceEvent::Mmap {
            len: 1 << 10,
            populate: true,
            thp: true,
        });
        assert_eq!(premapped_bytes(&trace), None);
    }

    #[test]
    fn coverage_check_is_word_granular() {
        use crate::format::TraceEvent;
        use mitosis_workloads::Access;
        let mut trace = synthetic_trace(4, &[0, 1]);
        trace.setup_events = vec![
            TraceEvent::Mmap {
                len: 1 << 26,
                populate: false,
                thp: true,
            },
            TraceEvent::Populate {
                len: 4096,
                parallel: false,
                sockets: 0b1,
            },
        ];
        // Last fully covered word starts at 4088.
        trace.lanes[0].accesses.push(Access {
            offset: 4088,
            is_write: false,
        });
        assert!(lanes_fully_premapped(&trace));
        // An access whose 8-byte word crosses the premapped boundary is
        // not covered.
        trace.lanes[1].accesses.push(Access {
            offset: 4096,
            is_write: false,
        });
        assert!(!lanes_fully_premapped(&trace));
    }
}
